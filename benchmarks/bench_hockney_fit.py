"""Section 3's analytic claim: T = l + b/W fits -- only without contention.

"The similarity between minimum times and average times for this 2x1 case
highlights the extremely small timing variations that occur when network
congestion is eliminated.  When this is the case, message-passing time T
can indeed be closely modelled by the common approximation T = l + b/W."

Asserts: the Hockney fit on the 2x1 eager-regime curve is tight; the same
model applied to a contended configuration misses badly; and min ~= avg at
2x1 but not at 64x1.
"""

from conftest import SMALL_SIZES, write_figure
from repro._tables import format_table, format_time
from repro.models import fit_hockney


def test_hockney_fits_contention_free_curve(benchmark, small_db, out_dir):
    r2 = small_db.result("isend", 2, 1)
    fit = benchmark.pedantic(
        fit_hockney, args=(r2,), kwargs={"use": "min", "max_size": 16384},
        rounds=1, iterations=1,
    )

    rows = [
        ["latency l", format_time(fit.latency)],
        ["bandwidth W", f"{fit.bandwidth * 8 / 1e6:.1f} Mbit/s"],
        ["r_inf", f"{fit.r_inf * 8 / 1e6:.1f} Mbit/s"],
        ["n_half", f"{fit.n_half:.0f} B"],
        ["rms residual", format_time(fit.rms_residual)],
    ]
    write_figure(
        out_dir, "hockney_fit",
        format_table(["parameter", "value"], rows,
                     title="Hockney T = l + b/W fit to the 2x1 min curve"),
    )

    # Tight fit in the contention-free regime: every size within 10%.
    for size in SMALL_SIZES:
        observed = r2.histograms[size].min
        assert abs(fit.relative_error(size, observed)) < 0.10, size


def test_hockney_misses_contended_configuration(benchmark, small_db):
    r2 = small_db.result("isend", 2, 1)
    r64 = small_db.result("isend", 64, 1)
    fit = benchmark.pedantic(
        fit_hockney, args=(r2,), kwargs={"use": "min"}, rounds=1, iterations=1
    )
    # The 2x1 model underestimates the contended averages badly at some
    # size (this is exactly why PEVPM samples distributions instead).
    worst = min(
        fit.relative_error(size, r64.histograms[size].mean)
        for size in SMALL_SIZES
    )
    assert worst < -0.30, f"expected >30% underestimation, got {worst * 100:.0f}%"


def test_min_close_to_avg_only_without_contention(benchmark, small_db):
    def gaps():
        out = {}
        for cfg in ((2, 1), (64, 1)):
            h = small_db.result("isend", *cfg).histograms[1024]
            out[cfg] = (h.mean - h.min) / h.min
        return out

    g = benchmark.pedantic(gaps, rounds=1, iterations=1)
    assert g[(2, 1)] < 0.05  # min ~= avg at 2x1
    assert g[(64, 1)] > 0.20  # far apart under contention
