"""Evaluation cost of the collectives-era workloads and trace replay.

Extends the Section 6 eval-cost study beyond point-to-point Jacobi: the
halo stencil and the AMG-style mix lower their collectives to tree/ring
point-to-point schedules, and an imported trace replays recorded
events.  For each workload this benchmark times the compiled batched
engine (the serving configuration) against the generator interpreter,
reports per-run evaluation cost, and asserts the two stay bit-identical
on the collective-heavy models.
"""

import time

from conftest import write_figure
from repro._tables import format_table, format_time
from repro.apps import amg_model, halo_model
from repro.pevpm import predict, timing_from_db
from repro.trace_import import sample_trace

RUNS = 32
NPROCS = 16


def workloads():
    ring = sample_trace(nprocs=4)
    return [
        ("halo-2d", halo_model(iterations=10, nx=64), NPROCS, None),
        ("halo-3d", halo_model(iterations=5, nx=16, dims=3), NPROCS, None),
        (
            "halo-2d+allreduce",
            halo_model(iterations=10, nx=64, reduce_every=2),
            NPROCS,
            None,
        ),
        ("amg", amg_model(iterations=4, nx=32, coarse_nx=8), NPROCS, None),
        ("imported-ring4", ring.model(), ring.nprocs, None),
    ]


def test_workload_eval_cost(benchmark, fig6_db, out_dir):
    entries = workloads()

    def study():
        out = []
        for name, model, nprocs, params in entries:
            timing = timing_from_db(
                fig6_db, mode="distribution", nprocs=nprocs
            )
            kwargs = {
                "runs": RUNS, "seed": 1, "params": params,
                "vector_runs": True,
            }
            t0 = time.perf_counter()
            compiled = predict(model, nprocs, timing, compiled=True, **kwargs)
            t_compiled = time.perf_counter() - t0
            t0 = time.perf_counter()
            interp = predict(model, nprocs, timing, compiled=False, **kwargs)
            t_interp = time.perf_counter() - t0
            assert interp.times == compiled.times  # engine bit-identity
            out.append((name, nprocs, t_compiled, t_interp))
        return out

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table = [
        [
            name,
            str(nprocs),
            format_time(tc / RUNS),
            format_time(ti / RUNS),
            f"{ti / max(tc, 1e-9):.2f}x",
        ]
        for name, nprocs, tc, ti in rows
    ]
    write_figure(
        out_dir,
        "workload_eval_cost",
        format_table(
            [
                "workload", "procs", "compiled s/run",
                "interpreted s/run", "speedup",
            ],
            table,
            title=f"Collective workloads: evaluation cost ({RUNS} MC runs)",
        ),
    )


def test_trace_import_cost(benchmark, out_dir):
    """Parse + validate + fingerprint cost for a trace of a few
    thousand events -- import must stay interactive."""
    big = sample_trace(nprocs=16, hops=64, nbytes=2048)
    text = big.to_jsonl()

    from repro.trace_import import parse_trace

    program = benchmark(parse_trace, text)
    assert program.fingerprint == big.fingerprint
    write_figure(
        out_dir,
        "trace_import_cost",
        format_table(
            ["metric", "value"],
            [
                ["events", str(program.events)],
                ["messages", str(program.messages)],
                ["wire bytes", str(len(text))],
            ],
            title="Trace import: parse+validate+fingerprint benchmark input",
        ),
    )
