"""Figure 3: sampled performance PDFs, small messages at 64x2.

"...performance distributions ... recorded for 64x2 communicating
processes exchanging messages between 0 and 1024 bytes in size ... the
distributions have a relatively smooth rise from a bounded minimum time,
through a peak which occurs very close to the average time and drop off
fairly quickly to some maximum time."

Asserts those three properties (bounded sharp left edge, peak near the
mean, fast right decay) for every measured size, plus the growth of
dispersion with contention relative to 2x1.
"""

import numpy as np

from conftest import SMALL_SIZES, write_figure
from repro.mpibench.report import pdf_plots


def _hist(db, cfg, size):
    return db.result("isend", *cfg).histograms[size]


def test_fig3_pdf_shapes(benchmark, small_db, out_dir):
    cfg = (64, 2) if (64, 2) in small_db.configs("isend") else (64, 1)
    result = small_db.result("isend", *cfg)

    plots = benchmark.pedantic(
        pdf_plots, args=(result, SMALL_SIZES), kwargs={"width": 64, "height": 7},
        rounds=1, iterations=1,
    )
    write_figure(out_dir, "fig3_pdf_small", plots)

    for size in SMALL_SIZES:
        h = result.histograms[size]

        # Bounded minimum with a sharp left edge: the 5th percentile sits
        # close to the minimum relative to the distribution's width.
        width = h.quantile(0.95) - h.min
        left_edge = h.quantile(0.05) - h.min
        assert left_edge < 0.45 * width, f"size {size}: left edge not sharp"

        # Peak (mode) close to the average: locate the tallest bin.
        centres, density = h.pdf()
        mode = centres[int(np.argmax(density))]
        assert abs(mode - h.mean) < 0.5 * (h.max - h.min + 1e-12), (
            f"size {size}: mode {mode} far from mean {h.mean}"
        )

        # Fast right decay: well under 10% of mass in the top half of the
        # observed range.
        halfway = h.min + 0.5 * (h.max - h.min)
        assert h.tail_mass(halfway) < 0.10, f"size {size}: heavy tail"


def test_fig3_dispersion_vs_2x1(benchmark, small_db, out_dir):
    cfg = (64, 2) if (64, 2) in small_db.configs("isend") else (64, 1)

    def spreads():
        out = {}
        for size in SMALL_SIZES:
            h_base = _hist(small_db, (2, 1), size)
            h_cont = _hist(small_db, cfg, size)
            out[size] = (h_base.std, h_cont.std)
        return out

    s = benchmark.pedantic(spreads, rounds=1, iterations=1)
    lines = [f"Figure 3 companion: distribution spread (std), 2x1 vs {cfg[0]}x{cfg[1]}"]
    for size, (base, cont) in s.items():
        lines.append(f"  {size:>5d} B : {base * 1e6:7.2f} us -> {cont * 1e6:7.2f} us")
    write_figure(out_dir, "fig3_dispersion", "\n".join(lines))

    for size, (base, cont) in s.items():
        assert cont > 2 * base, f"size {size}: contention should widen the PDF"
