"""Serving-stack throughput: the prediction service vs a naive server.

The service's request funnel (micro-batching into
``BatchedVirtualMachine`` chunks, singleflight dedup, LRU/disk caching)
exists to raise served-prediction throughput without changing a single
served number.  This benchmark drives an in-process server with the
closed-loop load generator at increasing concurrency, once with the full
funnel and once in *naive* mode (batching, dedup and caching disabled --
one engine evaluation per request), and asserts:

* the full funnel is at least 2x the naive throughput at concurrency 8
  (the ISSUE acceptance bar), and
* both modes serve ``times`` bit-identical to a direct ``predict(...)``
  call -- throughput features must not move the numbers.
"""

import os

from conftest import write_figure
from repro._tables import format_table
from repro.apps.jacobi import parse_jacobi
from repro.pevpm import predict, timing_from_db
from repro.service import (
    LoadGenerator,
    PredictionService,
    ServiceClient,
    ServiceThread,
    Supervisor,
)

ITERATIONS = 20
NPROCS = 8
RUNS = 8
DISTINCT_SEEDS = 16
CONCURRENCY = [2, 8]
DURATION = 1.5  # seconds per (mode, concurrency) level


def _request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % DISTINCT_SEEDS,
    }


def _drive(db, spec, *, naive: bool) -> dict[int, dict]:
    flags = dict(batching=False, dedup=False, caching=False) if naive else {}
    service = PredictionService(db, spec=spec, max_wait=0.002, **flags)
    summaries = {}
    with ServiceThread(service) as thread:
        host, port = thread.address
        for concurrency in CONCURRENCY:
            gen = LoadGenerator(host, port, _request, concurrency=concurrency)
            summaries[concurrency] = gen.run(duration=DURATION).summary()
        # Spot-check the contract while the server is still up.
        client = ServiceClient(host, port)
        record = client.predict(**_request(3))
        client.close()
    summaries["record"] = record
    return summaries


def test_service_throughput(spec, fig6_db, out_dir):
    naive = _drive(fig6_db, spec, naive=True)
    full = _drive(fig6_db, spec, naive=False)

    # Both modes serve bit-identical numbers to a direct predict() call.
    direct = predict(
        parse_jacobi(),
        NPROCS,
        timing_from_db(fig6_db, mode="distribution", nprocs=NPROCS),
        runs=RUNS,
        seed=3,
        params={
            "iterations": ITERATIONS,
            "xsize": 256,
            "serial_time": spec.jacobi_serial_time,
        },
        vector_runs=True,
    )
    assert naive["record"]["times"] == direct.times
    assert full["record"]["times"] == direct.times

    rows = []
    for concurrency in CONCURRENCY:
        n, f = naive[concurrency], full[concurrency]
        speedup = f["throughput_rps"] / max(n["throughput_rps"], 1e-9)
        rows.append([
            str(concurrency),
            f"{n['throughput_rps']:.0f}", f"{n['p99_ms']:.2f}",
            f"{f['throughput_rps']:.0f}", f"{f['p99_ms']:.2f}",
            f"{speedup:.1f}x",
        ])
    table = format_table(
        ["clients", "naive rps", "naive p99 ms", "full rps", "full p99 ms",
         "speedup"],
        rows,
        title=(
            f"service throughput: jacobi {ITERATIONS} iters x{NPROCS}, "
            f"{RUNS} MC runs, {DISTINCT_SEEDS} distinct keys, "
            f"{DURATION:g}s closed loop per level"
        ),
    )
    write_figure(out_dir, "service", table)

    for concurrency in CONCURRENCY:
        assert naive[concurrency]["errors"] == 0
        assert full[concurrency]["errors"] == 0
        assert naive[concurrency]["status_counts"].get("200", 0) > 0
        assert full[concurrency]["status_counts"].get("200", 0) > 0

    # The acceptance bar: batching + singleflight + LRU must at least
    # double served throughput once there is real concurrency.
    high = CONCURRENCY[-1]
    assert (
        full[high]["throughput_rps"] >= 2.0 * naive[high]["throughput_rps"]
    ), (full[high], naive[high])


SHARD_COUNTS = [1, 4]
SHARD_SEEDS = 4096  # engine-bound: the cache tiers cannot flatten scaling


def _shard_request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % SHARD_SEEDS,
    }


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def test_sharded_service_throughput(spec, fig6_db, out_dir):
    """Scale-out measurement: 1-shard vs 4-shard closed-loop throughput,
    driven direct-to-shard with client-side hash routing, plus the
    bit-identity contract through the router itself."""
    results: dict[int, dict] = {}
    for shards in SHARD_COUNTS:
        with Supervisor(
            fig6_db, shards, router=False, tracing=False, drain_grace=3.0
        ) as supervisor:
            endpoints = [
                supervisor.shard_address(i) for i in range(shards)
            ]
            gen = LoadGenerator(
                request_factory=_shard_request,
                concurrency=8,
                endpoints=endpoints,
            )
            results[shards] = gen.run(duration=DURATION).summary()

    direct = predict(
        parse_jacobi(),
        NPROCS,
        timing_from_db(fig6_db, mode="distribution", nprocs=NPROCS),
        runs=RUNS,
        seed=3,
        params={
            "iterations": ITERATIONS,
            "xsize": 256,
            "serial_time": spec.jacobi_serial_time,
        },
        vector_runs=True,
    )
    # Identity through the router and through every individual shard.
    with Supervisor(fig6_db, 2, tracing=False, drain_grace=3.0) as supervisor:
        client = ServiceClient(*supervisor.address)
        assert client.predict(**_shard_request(3))["times"] == direct.times
        client.close()
        for shard in range(2):
            client = ServiceClient(*supervisor.shard_address(shard))
            assert (
                client.predict(**_shard_request(3))["times"] == direct.times
            )
            client.close()

    cpus = _host_cpus()
    ratio = results[4]["throughput_rps"] / max(
        results[1]["throughput_rps"], 1e-9
    )
    rows = [
        [
            str(shards),
            str(results[shards]["requests"]),
            str(results[shards]["errors"]),
            f"{results[shards]['throughput_rps']:.0f}",
            f"{results[shards]['p99_ms']:.2f}",
        ]
        for shards in SHARD_COUNTS
    ]
    table = format_table(
        ["shards", "requests", "errors", "rps", "p99 ms"],
        rows,
        title=(
            f"sharded serving tier: jacobi {ITERATIONS} iters x{NPROCS}, "
            f"{RUNS} MC runs, {SHARD_SEEDS} distinct keys, "
            f"{cpus} host cpu(s), 4-vs-1 scaling {ratio:.2f}x"
        ),
    )
    write_figure(out_dir, "service_sharded", table)

    for shards in SHARD_COUNTS:
        assert results[shards]["errors"] == 0, results[shards]
        assert results[shards]["status_counts"].get("200", 0) > 0
    # Scaling is hardware-conditioned: near-linear on >= 4 cores, no
    # worse than 0.75x on a single-core host (N CPU-bound processes
    # cannot outrun one core; the tier must not cost >25% either).
    floor = min(2.5, max(0.75, 0.7 * min(cpus, 4)))
    assert ratio >= floor, (results, cpus, floor)
