"""Section 5's proposed extension: symbolic performance models.

"...there is potential for the PEVPM methodology to be enhanced so that
it produces entirely symbolic performance models rather than empirical
ones, which would allow for even lower evaluation cost..."

Extract a closed-form T(P) from a few anchored PEVPM evaluations of the
Jacobi model, sweep it across many machine sizes, and compare accuracy
and cost against the full Monte Carlo evaluation at held-out sizes.
"""

import time

from conftest import write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import parse_jacobi
from repro.pevpm import extract_symbolic_model, predict, timing_from_db

ANCHORS = [2, 8, 32]
HOLDOUTS = [4, 16, 64]
ITERATIONS = 60


def test_symbolic_extraction(benchmark, spec, fig6_db, out_dir):
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    model = parse_jacobi()
    timing = timing_from_db(fig6_db, mode="distribution")

    # 6 MC runs per point: the faster prediction engine makes tighter
    # estimates affordable, and 3-run means left the 64-proc holdout
    # comparison dominated by Monte Carlo noise.
    sym = benchmark.pedantic(
        extract_symbolic_model,
        args=(model, timing, ANCHORS),
        kwargs={"params": params, "runs": 6, "seed": 1},
        rounds=1,
        iterations=1,
    )

    rows = []
    worst = 0.0
    mc_cost = sym_cost = 0.0
    for nprocs in HOLDOUTS:
        t0 = time.perf_counter()
        mc = predict(model, nprocs, timing, runs=6, seed=1, params=params)
        mc_cost += time.perf_counter() - t0
        t0 = time.perf_counter()
        closed = sym.time(nprocs)
        sym_cost += time.perf_counter() - t0
        err = (closed - mc.mean_time) / mc.mean_time
        worst = max(worst, abs(err))
        rows.append([
            str(nprocs), format_time(mc.mean_time), format_time(closed),
            f"{err * 100:+.1f}%",
        ])
    rows.append(["", "", "query cost",
                 f"{mc_cost / max(sym_cost, 1e-9):.0f}x cheaper symbolically"])
    write_figure(
        out_dir, "symbolic_model",
        format_table(
            ["procs (held out)", "Monte Carlo PEVPM", "symbolic T(P)", "error"],
            rows,
            title=(
                f"Symbolic model extracted from anchors {ANCHORS} "
                f"(alpha={format_time(sym.alpha)}, beta={format_time(sym.beta)}/recv)"
            ),
        ),
    )

    assert sym.rms_relative_error < 0.10  # anchors reproduced
    assert worst < 0.20, f"symbolic holdout error {worst * 100:.0f}%"
    assert sym_cost < mc_cost / 3  # "even lower evaluation cost"
