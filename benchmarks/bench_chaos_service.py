"""Chaos benchmark: the serving stack under injected faults.

Fault tolerance is only worth its complexity if the recovery paths hold
up under sustained load *and* keep the reproducibility contract.  This
benchmark runs the closed-loop load generator against a chaos-mode
server three times -- healthy baseline, faulted without client retries,
faulted with retries -- while a seeded :class:`FaultPlan` worth of
worker kills, cache corruptions and evaluator stalls is re-armed
throughout the run, and asserts the acceptance bar:

* zero malformed responses (transport errors) in every mode -- a fault
  may surface as a well-formed 429/503/504, never as a hang or a reset;
* with client retries, every logical request ends in a 200;
* a prediction served mid-chaos is bit-identical to the direct
  ``predict(...)`` call.
"""

import threading
import time

from conftest import write_figure
from repro._tables import format_table
from repro.apps.jacobi import parse_jacobi
from repro.pevpm import predict, timing_from_db
from repro.service import (
    FaultInjector,
    FaultPlan,
    LoadGenerator,
    PredictionService,
    RetryPolicy,
    ServiceClient,
    ServiceThread,
)

ITERATIONS = 20
NPROCS = 8
RUNS = 8
DISTINCT_SEEDS = 8
CONCURRENCY = 4
DURATION = 2.0  # seconds per mode
CHAOS_SEED = 7


def _request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % DISTINCT_SEEDS,
    }


def _drive(db, spec, tmp_dir, *, chaos: bool, retries: int) -> dict:
    injector = FaultInjector(seed=CHAOS_SEED) if chaos else None
    service = PredictionService(
        db, spec=spec, workers=2, cache_dir=tmp_dir,
        queue_limit=8, deadline_s=5.0, breaker_cooldown=0.2,
        fault_injector=injector,
    )
    retry = (
        RetryPolicy(retries=retries, base=0.02, cap=0.5, seed=CHAOS_SEED)
        if retries
        else None
    )
    stop = threading.Event()

    def keep_arming():
        # Re-arm the same seeded plan for the whole run so faults keep
        # firing as their site events accrue.
        while not stop.wait(0.25):
            injector.arm_plan(FaultPlan.seeded(CHAOS_SEED, length=4))

    arm_thread = threading.Thread(target=keep_arming, daemon=True)
    with ServiceThread(service) as thread:
        host, port = thread.address
        if chaos:
            injector.arm_plan(FaultPlan.seeded(CHAOS_SEED, length=4))
            arm_thread.start()
        gen = LoadGenerator(
            host, port, _request, concurrency=CONCURRENCY, retry=retry
        )
        result = gen.run(duration=DURATION)
        stop.set()
        if arm_thread.is_alive():
            arm_thread.join(timeout=5)
        time.sleep(0.05)  # let any armed stall fire before the probe
        client = ServiceClient(
            host, port, retry=RetryPolicy(retries=5, base=0.05)
        )
        record = client.predict(**_request(3))
        client.close()
    summary = result.summary()
    summary["record"] = record
    summary["injected"] = injector.snapshot()["injected"] if chaos else {}
    summary["pool_rebuilds"] = service.metrics.counter(
        "repro_pool_rebuilds_total"
    )
    summary["cache_corrupt"] = service.metrics.counter(
        "repro_cache_corrupt_total"
    )
    return summary


def test_service_under_chaos(spec, fig6_db, out_dir, tmp_path):
    healthy = _drive(
        fig6_db, spec, tmp_path / "healthy", chaos=False, retries=0
    )
    chaotic = _drive(fig6_db, spec, tmp_path / "chaos", chaos=True, retries=0)
    masked = _drive(fig6_db, spec, tmp_path / "masked", chaos=True, retries=4)

    # Reproducibility under fire: the mid-chaos spot checks all match a
    # direct predict() call bit for bit.
    direct = predict(
        parse_jacobi(),
        NPROCS,
        timing_from_db(fig6_db, mode="distribution", nprocs=NPROCS),
        runs=RUNS,
        seed=3,
        params={
            "iterations": ITERATIONS,
            "xsize": 256,
            "serial_time": spec.jacobi_serial_time,
        },
        vector_runs=True,
    )
    for mode in (healthy, chaotic, masked):
        assert mode["record"]["times"] == direct.times

    rows = []
    for name, mode in (
        ("healthy", healthy), ("chaos", chaotic), ("chaos+retry", masked)
    ):
        shed = sum(
            count
            for code, count in mode["status_counts"].items()
            if code != "200"
        )
        rows.append([
            name, str(mode["requests"]), str(mode["ok"]), str(shed),
            str(mode["errors"]), str(mode["retries"]),
            f"{mode['throughput_rps']:.0f}", f"{mode['p99_ms']:.1f}",
        ])
    table = format_table(
        ["mode", "requests", "200s", "shed", "malformed", "retries", "rps",
         "p99 ms"],
        rows,
        title=(
            f"chaos: jacobi {ITERATIONS} iters x{NPROCS}, {RUNS} MC runs, "
            f"{CONCURRENCY} clients, plan seed {CHAOS_SEED} "
            f"(kill/corrupt/delay/stall), {DURATION:g}s per mode"
        ),
    )
    write_figure(out_dir, "chaos_service", table)

    # The acceptance bar: zero malformed responses in every mode.  A
    # fault shows up as a well-formed 429/503/504 at worst.
    for mode in (healthy, chaotic, masked):
        assert mode["errors"] == 0, mode
        assert mode["ok"] > 0, mode
    # Client-side retries mask the shedding completely.
    assert masked["status_counts"].keys() == {"200"}, masked
