"""Figure 4: performance PDFs under network saturation (64x1, large).

"Severe performance degradation due to network saturation can be clearly
seen in the long tails of the performance distributions ... Severe
contention on an Ethernet network, however, sometimes leads to lost
messages and thus retransmissions, which leads to outliers in the
distribution at values related to the network's retransmission timeout
parameters."

Asserts: saturated configurations show RTO-scale outliers; unsaturated
ones do not; the outliers cluster near the RTO value; and the tails carry
far more relative mass than the contention-free distributions.
"""

import numpy as np

from conftest import LARGE_SIZES, write_figure
from repro.mpibench.report import pdf_plots, tail_report


def test_fig4_saturation_tails(benchmark, large_db, out_dir, spec):
    result = large_db.result("isend", 64, 1)

    out = benchmark.pedantic(
        lambda: (pdf_plots(result, LARGE_SIZES[-2:], width=64, height=7),
                 tail_report(result, rto=spec.tcp.rto)),
        rounds=1, iterations=1,
    )
    write_figure(out_dir, "fig4_pdf_saturation", out[0] + "\n\n" + out[1])

    # RTO-scale outliers exist in the saturated regime (>= 16 KB).
    saturated_sizes = [s for s in LARGE_SIZES if s >= 16384]
    outlier_mass = sum(
        result.histograms[s].tail_mass(spec.tcp.rto / 2) for s in saturated_sizes
    )
    assert outlier_mass > 0, "expected retransmission outliers at 64x1"

    # And the worst observation sits near (at or above) the RTO.
    worst = max(result.histograms[s].max for s in saturated_sizes)
    assert worst >= spec.tcp.rto, (
        f"worst time {worst * 1e3:.1f} ms below the {spec.tcp.rto * 1e3:.0f} ms RTO"
    )


def test_fig4_no_outliers_without_saturation(benchmark, large_db, spec):
    def masses():
        r2 = large_db.result("isend", 2, 1)
        return {s: r2.histograms[s].tail_mass(spec.tcp.rto / 2) for s in LARGE_SIZES}

    m = benchmark.pedantic(masses, rounds=1, iterations=1)
    assert all(v == 0.0 for v in m.values()), (
        f"contention-free runs must not stall on retransmissions: {m}"
    )


def test_fig4_relative_tail_mass(benchmark, large_db, out_dir):
    """Tail mass beyond 2x the median: saturated config >> contention-free."""

    def relative_tails(cfg):
        r = large_db.result("isend", *cfg)
        out = {}
        for s in LARGE_SIZES:
            h = r.histograms[s]
            out[s] = h.tail_mass(2 * h.quantile(0.5))
        return out

    tails = benchmark.pedantic(
        lambda: (relative_tails((2, 1)), relative_tails((64, 1))),
        rounds=1, iterations=1,
    )
    free, sat = tails
    lines = ["Figure 4 companion: mass beyond 2x median"]
    for s in LARGE_SIZES:
        lines.append(f"  {s:>7d} B : 2x1 {free[s] * 100:5.2f}%  64x1 {sat[s] * 100:5.2f}%")
    write_figure(out_dir, "fig4_tail_mass", "\n".join(lines))

    assert sum(sat.values()) > sum(free.values())
