"""Ablations of the design decisions called out in DESIGN.md section 5.

* protocol threshold: moving the eager/rendezvous switch moves the
  Figure 2 knee (the knee is a protocol artefact, not a network one);
* TCP loss/RTO: disabling retransmission removes the Figure 4 outliers
  (they are a TCP artefact, not queueing);
* PEVPM NIC-occupancy tracking: turning it off degrades prediction
  accuracy for programs with back-to-back sends (why the model tracks
  "messages currently being passed through the network").
"""

import numpy as np

from conftest import BENCH_REPS, SEED, write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.simnet import perseus
from repro.simnet.topology import TcpModel
from repro.smpi import run_program


def test_ablation_protocol_threshold(benchmark, out_dir):
    """Halving the eager threshold moves the knee from 16 KB to 8 KB."""

    def study():
        out = {}
        for threshold in (8192, 16384):
            spec = perseus(4).with_(eager_threshold=threshold)
            bench = MPIBench(spec, seed=SEED, settings=BenchSettings(reps=25, warmup=3))
            r = bench.run_isend(2, 1, sizes=[threshold - 1024, threshold + 1024])
            below = r.histograms[threshold - 1024].mean
            above = r.histograms[threshold + 1024].mean
            out[threshold] = above - below
        return out

    jumps = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        [f"{thr} B", format_time(jump)] for thr, jump in jumps.items()
    ]
    write_figure(
        out_dir, "ablation_protocol",
        format_table(["eager threshold", "cost of crossing it (+2 KB)"], rows,
                     title="Ablation: the knee follows the protocol threshold"),
    )
    # Crossing either configured threshold costs well beyond 2 KB of
    # bandwidth (~165 us): the RTS/CTS round trip follows the knob.
    for thr, jump in jumps.items():
        assert jump > 250e-6, f"no knee at configured threshold {thr}"


def test_ablation_tcp_loss(benchmark, out_dir):
    """With retransmission disabled, the saturation outliers vanish."""

    def study():
        out = {}
        for label, loss in (("with RTO", None), ("lossless", 0.0)):
            spec = perseus(64)
            if loss is not None:
                spec = spec.with_(tcp=TcpModel(loss_max_probability=loss))
            bench = MPIBench(spec, seed=SEED, settings=BenchSettings(reps=25, warmup=3))
            r = bench.run_isend(64, 1, sizes=[16384])
            h = r.histograms[16384]
            out[label] = (h.max, h.tail_mass(0.1))
        return out

    res = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        [label, format_time(mx), f"{mass * 100:.2f}%"]
        for label, (mx, mass) in res.items()
    ]
    write_figure(
        out_dir, "ablation_loss",
        format_table(["TCP model", "max time", "mass beyond 100 ms"], rows,
                     title="Ablation: Figure 4 outliers are RTO stalls"),
    )
    assert res["with RTO"][0] > 0.15  # an RTO-scale outlier exists
    assert res["lossless"][0] < 0.05  # and vanishes without loss
    assert res["lossless"][1] == 0.0


def test_ablation_nic_occupancy(benchmark, spec, fig6_db, out_dir):
    """PEVPM accuracy with and without NIC-occupancy tracking."""
    iters = 80
    params = {"iterations": iters, "xsize": 256, "serial_time": spec.jacobi_serial_time}
    timing = timing_from_db(fig6_db, mode="distribution")

    def study():
        measured = run_program(
            spec, jacobi_smpi, nprocs=16, ppn=1, seed=42, args=(iters,)
        ).elapsed
        errs = {}
        for mode in ("off", "tx", "txrx"):
            pred = predict(
                parse_jacobi(), 16, timing, runs=4, seed=7, params=params,
                nic_serialisation=mode,
            )
            errs[mode] = (pred.mean_time - measured) / measured
        return errs

    errs = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [[mode, f"{err * 100:+.1f}%"] for mode, err in errs.items()]
    write_figure(
        out_dir, "ablation_nic",
        format_table(["NIC tracking", "Jacobi prediction error (16 procs)"], rows,
                     title="Ablation: PEVPM NIC-occupancy tracking"),
    )
    # The default 'tx' tracking must beat no tracking at all.
    assert abs(errs["tx"]) < abs(errs["off"]), errs


def test_ablation_bin_granularity(benchmark, spec, fig6_db, out_dir):
    """The paper's granularity claim: "the small prediction errors ...
    were mainly due to the granularity (i.e. histogram bin size) of the
    benchmark results ... these errors could be reduced even further by
    using smaller bin sizes"."""
    from repro.mpibench import BenchmarkResult, DistributionDB

    iters = 80
    params = {"iterations": iters, "xsize": 256, "serial_time": spec.jacobi_serial_time}

    def rebinned_db(bins):
        db = DistributionDB(cluster=fig6_db.cluster)
        for op in fig6_db.ops():
            for nodes, ppn in fig6_db.configs(op):
                r = fig6_db.result(op, nodes, ppn)
                db.add(
                    BenchmarkResult(
                        op=op, nodes=nodes, ppn=ppn, cluster=r.cluster,
                        histograms={
                            # Re-bin and DROP the raw samples, so sampling
                            # really happens at the stated granularity.
                            s: type(h).from_dict(h.rebinned(bins).to_dict())
                            for s, h in r.histograms.items()
                        },
                    )
                )
        return db

    def study():
        measured = run_program(
            spec, jacobi_smpi, nprocs=16, ppn=1, seed=42, args=(iters,)
        ).elapsed
        errs = {}
        for bins in (2, 6, 60):
            db = rebinned_db(bins)
            pred = predict(
                parse_jacobi(), 16, timing_from_db(db, "distribution"),
                runs=4, seed=7, params=params,
            )
            errs[bins] = abs(pred.mean_time - measured) / measured
        return errs

    errs = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [[str(b), f"{e * 100:.2f}%"] for b, e in errs.items()]
    write_figure(
        out_dir, "ablation_bins",
        format_table(["histogram bins", "|prediction error|"], rows,
                     title="Ablation: PEVPM error vs histogram granularity"),
    )
    # Coarse binning must not beat fine binning; 60 bins within the usual
    # accuracy, 2 bins measurably worse than 60.
    assert errs[60] <= errs[2] + 0.02
