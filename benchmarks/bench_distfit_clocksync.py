"""Section 2's instrumentation claims: parametrised PDFs and the clock.

Two benches:

* parametric fits -- "It is also possible to use parametrised functions to
  model the PDFs, based on fits to the histograms using standard
  functions": fit gamma/lognormal to the measured distributions, check
  fit quality, and verify the fitted functions can *replace* histograms
  as a PEVPM sampling source with similar predictions;
* clock synchronisation -- one-way times need the globally synchronised
  clock: quantify the error of raw local clocks vs. the synchronised one
  against the simulator's ground truth.
"""

import numpy as np

from conftest import write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import parse_jacobi
from repro.mpibench import fit_histogram
from repro.mpibench.clocksync import sync_clocks
from repro.pevpm import predict, timing_from_db
from repro.smpi import run_program


def test_parametric_fits(benchmark, small_db, out_dir):
    def fits():
        out = {}
        for cfg in ((2, 1), (64, 1)):
            h = small_db.result("isend", *cfg).histograms[1024]
            out[cfg] = (h, fit_histogram(h))
        return out

    results = benchmark.pedantic(fits, rounds=1, iterations=1)
    rows = []
    for cfg, (h, fit) in results.items():
        rows.append([
            f"{cfg[0]}x{cfg[1]}",
            fit.family,
            f"{fit.ks:.3f}",
            format_time(h.mean),
            format_time(fit.mean),
        ])
    write_figure(
        out_dir, "distfit",
        format_table(
            ["config", "family", "KS distance", "data mean", "fit mean"],
            rows,
            title="Parametrised fits to 1 KB isend distributions",
        ),
    )
    for cfg, (h, fit) in results.items():
        assert fit.ks < 0.30, f"{cfg}: poor fit (KS {fit.ks:.2f})"
        assert abs(fit.mean - h.mean) / h.mean < 0.10, cfg


def test_parametric_timing_backend(benchmark, spec, fig6_db):
    """Predictions from fitted functions track histogram predictions."""
    params = {"iterations": 60, "xsize": 256, "serial_time": spec.jacobi_serial_time}

    def both():
        hist_pred = predict(
            parse_jacobi(), 16, timing_from_db(fig6_db, "distribution"),
            runs=3, seed=4, params=params,
        )
        par_pred = predict(
            parse_jacobi(), 16, timing_from_db(fig6_db, "parametric"),
            runs=3, seed=4, params=params,
        )
        return hist_pred.mean_time, par_pred.mean_time

    hist_t, par_t = benchmark.pedantic(both, rounds=1, iterations=1)
    assert abs(par_t - hist_t) / hist_t < 0.10


def test_clock_sync_error(benchmark, spec, out_dir):
    """Synchronised-clock error vs raw-clock error, against ground truth."""

    def program(comm):
        corr = yield from sync_clocks(comm, rounds=8, drift_gap=0.3)
        yield from comm.compute(2.0)  # let drift build up
        yield from comm.barrier()
        return comm.clock(), corr.to_global(comm.clock()), comm.true_time()

    def study():
        r = run_program(spec, program, nprocs=8, ppn=1, seed=6)
        raw, synced, truth = zip(*r.returns)
        base_r, base_s, base_t = raw[0], synced[0], truth[0]
        raw_err = max(
            abs(v - (base_r + (t - base_t))) for v, t in zip(raw, truth)
        )
        sync_err = max(
            abs(v - (base_s + (t - base_t))) for v, t in zip(synced, truth)
        )
        return raw_err, sync_err

    raw_err, sync_err = benchmark.pedantic(study, rounds=1, iterations=1)
    write_figure(
        out_dir, "clocksync",
        format_table(
            ["clock", "max cross-node error"],
            [["raw local clocks", format_time(raw_err)],
             ["MPIBench synchronised clock", format_time(sync_err)]],
            title="Clock error after 2 s of drift (vs simulator ground truth)",
        ),
    )
    assert sync_err < 10e-6, "synchronised clock must be microsecond-accurate"
    assert raw_err > 100 * sync_err, "raw clocks should be orders worse"
