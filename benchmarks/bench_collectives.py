"""Section 2-3: MPIBench measures collectives at *every* process.

"...the globally synchronised clock enables it to measure the
communication performance characteristics of all of the processes in an
MPI program, instead of ... measuring completion times of collective
operations at just a single process."

Regenerates bcast and barrier scaling tables (per-rank completion-time
distributions) and asserts the tree-algorithm shapes:

* bcast completion time grows ~log2(P), far slower than linearly;
* per-rank completion spread exists (leaves finish after early children)
  -- the thing single-process timing cannot see;
* barrier time grows with P and is bounded below by the network latency.
"""

import numpy as np

from conftest import BENCH_REPS, SEED, write_figure
from repro._tables import format_table, format_time
from repro.mpibench import BenchSettings, MPIBench
from repro.simnet import perseus


def _campaign():
    bench = MPIBench(
        perseus(64), seed=SEED, settings=BenchSettings(reps=25, warmup=3)
    )
    bcast = {
        n: bench.run_bcast(nodes=n, ppn=1, sizes=[1024]) for n in (2, 8, 32)
    }
    barrier = {
        n: bench.run_barrier(nodes=n, ppn=1) for n in (2, 8, 32)
    }
    return bcast, barrier


def test_collective_scaling(benchmark, out_dir, spec):
    bcast, barrier = benchmark.pedantic(_campaign, rounds=1, iterations=1)

    rows = []
    for n in (2, 8, 32):
        hb = bcast[n].histograms[1024]
        hr = barrier[n].histograms[0]
        rows.append([
            str(n),
            format_time(hb.mean),
            format_time(hb.quantile(0.95) - hb.quantile(0.05)),
            format_time(hr.mean),
        ])
    write_figure(
        out_dir, "collectives",
        format_table(
            ["nodes", "bcast 1KB mean", "bcast per-rank spread (p5-p95)",
             "barrier mean"],
            rows,
            title="Collective scaling (binomial bcast, dissemination barrier)",
        ),
    )

    # Log-tree scaling: 32 ranks need ~5 rounds vs 1 round at 2 ranks;
    # a linear algorithm would be ~31x slower, the tree far less.
    b2 = bcast[2].histograms[1024].mean
    b32 = bcast[32].histograms[1024].mean
    assert b32 < 12 * b2, "bcast should scale ~log P, not linearly"
    assert b32 > b2, "more ranks must cost something"

    # Per-rank completion spread at 32 ranks: the tree delivers leaves
    # later than first-level children.
    h32 = bcast[32].histograms[1024]
    assert h32.quantile(0.9) > 1.5 * h32.quantile(0.1)

    # Barrier grows with machine size and is latency-bounded.
    r2 = barrier[2].histograms[0].mean
    r32 = barrier[32].histograms[0].mean
    assert r32 > r2
    assert barrier[2].histograms[0].min > 0
