"""Section 6's other two application classes: regular-global and irregular.

"We have also tested the PEVPM using applications that are standard
examples of the two other general classes of communication patterns in
parallel programs: a Fast Fourier Transform ... and a bag of tasks ...
the PEVPM provides similarly good performance predictions in those cases."

Predicted vs. measured for the parallel FFT (alltoall transpose) and the
task farm (dynamic master/worker), at two machine sizes each.
"""

import numpy as np

from conftest import write_figure
from repro._tables import format_table, format_time
from repro.apps.fft import distribute_input, fft_model, fft_smpi
from repro.apps.taskfarm import make_tasks, taskfarm_model, taskfarm_smpi
from repro.pevpm import predict, timing_from_db
from repro.smpi import run_program

FFT_POINTS = 8192
N_TASKS = 120


def _fft_measured(spec, nprocs):
    rng = np.random.default_rng(1)
    x = rng.normal(size=FFT_POINTS) + 1j * rng.normal(size=FFT_POINTS)
    chunks = distribute_input(x, nprocs)

    def prog(comm):
        _out, t = yield from fft_smpi(comm, chunks[comm.rank], FFT_POINTS)
        return t

    return run_program(spec, prog, nprocs=nprocs, seed=42).elapsed


def test_fft_prediction(benchmark, spec, fig6_db, out_dir):
    timing = timing_from_db(fig6_db, mode="distribution")

    def study():
        out = {}
        for nprocs in (8, 16):
            measured = _fft_measured(spec, nprocs)
            pred = predict(fft_model(FFT_POINTS), nprocs, timing, runs=4, seed=3)
            out[nprocs] = (measured, pred.mean_time)
        return out

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table_rows = [
        [str(n), format_time(m), format_time(p), f"{(p - m) / m * 100:+.1f}%"]
        for n, (m, p) in rows.items()
    ]
    write_figure(
        out_dir, "fft_prediction",
        format_table(
            ["procs", "measured", "PEVPM predicted", "error"],
            table_rows,
            title=f"Parallel FFT ({FFT_POINTS} points): predicted vs measured",
        ),
    )
    for n, (measured, predicted) in rows.items():
        err = abs(predicted - measured) / measured
        assert err < 0.25, f"FFT at {n} procs: {err * 100:.0f}% off"


def test_taskfarm_prediction(benchmark, spec, fig6_db, out_dir):
    timing = timing_from_db(fig6_db, mode="distribution")
    tasks = make_tasks(N_TASKS, mean=5e-3, cv=0.6, seed=9)

    def study():
        out = {}
        for nprocs in (4, 16):
            measured = run_program(
                spec, taskfarm_smpi, nprocs=nprocs, seed=1, args=(tasks,)
            ).elapsed
            pred = predict(taskfarm_model(tasks), nprocs, timing, runs=4, seed=3)
            out[nprocs] = (measured, pred.mean_time)
        return out

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table_rows = [
        [str(n), format_time(m), format_time(p), f"{(p - m) / m * 100:+.1f}%"]
        for n, (m, p) in rows.items()
    ]
    write_figure(
        out_dir, "taskfarm_prediction",
        format_table(
            ["procs", "measured", "PEVPM predicted", "error"],
            table_rows,
            title=f"Task farm ({N_TASKS} tasks): predicted vs measured",
        ),
    )
    for n, (measured, predicted) in rows.items():
        err = abs(predicted - measured) / measured
        assert err < 0.15, f"task farm at {n} procs: {err * 100:.0f}% off"
