"""Section 5's diagnostic claims: loss attribution and deadlock discovery.

"PEVPM is capable of automatically determining and highlighting the
location and extent of performance loss due to any source.  In addition,
it can also automatically discover program deadlock..."

Benches: (a) the Jacobi loss breakdown -- the waiting share of total
processor time grows with the machine size; (b) deadlock detection on an
intentionally broken model names the blocked processes.
"""

import pytest

from conftest import write_figure
from repro._tables import format_table
from repro.apps.jacobi import parse_jacobi
from repro.pevpm import ModelDeadlock, VirtualMachine, predict, timing_from_db


def test_loss_attribution_grows_with_scale(benchmark, spec, fig6_db, out_dir):
    params = {"iterations": 60, "xsize": 256, "serial_time": spec.jacobi_serial_time}
    timing = timing_from_db(fig6_db, mode="distribution")

    def study():
        out = {}
        for nprocs in (4, 16, 64):
            pred = predict(
                parse_jacobi(), nprocs, timing, runs=2, seed=3,
                params=params, trace_last=True,
            )
            out[nprocs] = pred.loss_report()
        return out

    reports = benchmark.pedantic(study, rounds=1, iterations=1)

    rows = []
    fractions = {}
    for nprocs, report in reports.items():
        frac = report.total_loss_fraction()
        fractions[nprocs] = frac
        hot = report.hotspots(top=1)[0]
        rows.append([str(nprocs), f"{frac * 100:.1f}%", f"{hot[0]} {hot[1]}"])
    write_figure(
        out_dir, "loss_attribution",
        format_table(
            ["procs", "loss fraction", "top loss site"],
            rows,
            title="Jacobi performance-loss attribution (PEVPM trace)",
        ),
    )

    # Communication/wait losses grow with scale for a fixed problem.
    assert fractions[4] < fractions[16] < fractions[64]
    # And the dominant loss site is a receive (waiting), not a send.
    for report in reports.values():
        assert report.hotspots(top=1)[0][0] == "recv"


def test_deadlock_discovery(benchmark, fig6_db):
    timing = timing_from_db(fig6_db, mode="distribution")

    def broken(ctx):
        # Everyone receives from the right neighbour; nobody ever sends.
        yield ctx.recv((ctx.procnum + 1) % ctx.numprocs)

    def run():
        vm = VirtualMachine(4, timing, seed=0)
        with pytest.raises(ModelDeadlock) as exc:
            vm.run(broken)
        return exc.value

    err = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(err.blocked) == {0, 1, 2, 3}
    assert err.orphans == []


def test_orphan_message_reporting(benchmark, fig6_db):
    """A send with no matching receive surfaces as an orphan -- the hook
    for the paper's race-condition tracing."""
    timing = timing_from_db(fig6_db, mode="distribution")

    def leaky(ctx):
        if ctx.procnum == 0:
            yield ctx.send(1, 1024)  # never received
        yield ctx.serial(1e-3)

    def run():
        vm = VirtualMachine(2, timing, seed=0)
        return vm.run(leaky)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.orphans) == 1
    assert result.orphans[0].dst == 1
