"""Figure 2: average MPI_Isend times for large messages, by n x p.

Regenerates the large-message sweep and asserts:

* the 16 KB protocol knee: per-byte cost jumps when crossing the eager ->
  rendezvous switch ("there are actually two distinct segments to the
  data, with a knee occurring at 16 Kbytes");
* saturation: for the 64-node configurations, times at and beyond 16 KB
  sit far above a bandwidth extrapolation of the 2x1 curve (the onset of
  inter-switch saturation);
* contention matters relatively *less* at large sizes (until saturation):
  the 64x1 / 2x1 ratio at 4 KB is below the ratio at 0-1 KB.
"""

from conftest import CURVE_CONFIGS, LARGE_SIZES, write_figure
from repro.mpibench.report import average_times_table


def _mean(db, cfg, size):
    return db.result("isend", *cfg).histograms[size].mean


def test_fig2_large_messages(benchmark, large_db, out_dir):
    table = benchmark.pedantic(
        average_times_table,
        args=(large_db, "isend", LARGE_SIZES, CURVE_CONFIGS),
        kwargs={"title": "Figure 2: average MPI_Isend times, large messages (perseus)"},
        rounds=1,
        iterations=1,
    )
    write_figure(out_dir, "fig2_large_msgs", table)

    # Rendezvous sizes cost more per byte overall: the average slope above
    # 16 KB exceeds the eager-regime slope.
    t1k = _mean(large_db, (2, 1), 1024)
    t16k = _mean(large_db, (2, 1), 16384)
    t64k = _mean(large_db, (2, 1), 65536)
    slope_eager = (t16k - t1k) / (16384 - 1024)
    slope_rndv = (t64k - t16k) / (65536 - 16384)
    assert slope_rndv > slope_eager


def test_fig2_knee_at_protocol_threshold(benchmark, spec, out_dir):
    """The knee itself, measured by straddling the 16 KB threshold: one
    extra KB of payload costs far more than bandwidth alone because the
    protocol switches to rendezvous (RTS/CTS round trip)."""
    from repro.mpibench import BenchSettings, MPIBench

    def straddle():
        bench = MPIBench(spec, seed=2, settings=BenchSettings(reps=30, warmup=3))
        r = bench.run_isend(nodes=2, ppn=1, sizes=[15360, 16384, 17408])
        return {s: r.histograms[s].mean for s in (15360, 16384, 17408)}

    t = benchmark.pedantic(straddle, rounds=1, iterations=1)
    below = t[16384] - t[15360]  # +1 KB inside the eager regime
    across = t[17408] - t[16384]  # +1 KB crossing into rendezvous
    lines = [
        "Figure 2 knee: cost of +1 KB around the 16 KB protocol threshold",
        f"  15360 -> 16384 B (eager)      : +{below * 1e6:7.1f} us",
        f"  16384 -> 17408 B (rendezvous) : +{across * 1e6:7.1f} us",
    ]
    write_figure(out_dir, "fig2_knee", "\n".join(lines))
    assert across > below + 100e-6, (
        f"expected an RTS/CTS jump at the knee (got +{across * 1e6:.0f} us "
        f"vs +{below * 1e6:.0f} us in the eager regime)"
    )


def test_fig2_saturation_of_64_node_configs(benchmark, large_db, out_dir):
    def ratios():
        return {
            size: _mean(large_db, (64, 1), size) / _mean(large_db, (2, 1), size)
            for size in LARGE_SIZES
        }

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    lines = ["Figure 2 companion: 64x1 / 2x1 mean-time ratio by size"]
    for size, ratio in r.items():
        lines.append(f"  {size:>7d} B : {ratio:5.2f}x")
    write_figure(out_dir, "fig2_saturation_ratio", "\n".join(lines))

    # Saturation: at/beyond 16 KB the 64-node config degrades well beyond
    # the contention-free curve ("this degradation starts to become
    # significant for the 64x1 process case when message sizes reach about
    # 16 Kbytes").
    assert r[16384] > 1.3
    assert r[65536] > 1.3

    # Relative contention effect shrinks from small to mid sizes before
    # saturation: 4 KB ratio below the 1 KB ratio.
    if 4096 in r:
        assert r[4096] <= r[1024] * 1.15
