"""Shared fixtures for the figure-regeneration benchmarks.

Each ``bench_*.py`` regenerates one table/figure of the paper (see
DESIGN.md section 4), asserts its qualitative shape, and writes the
rendered table to ``benchmarks/out/`` so EXPERIMENTS.md can cite it.

Benchmark campaigns are expensive, so the distribution databases are
session-scoped and cached to JSON under ``benchmarks/out/cache`` -- a
re-run of the suite reuses them (delete the directory to force fresh
measurements).  Set ``REPRO_BENCH_FAST=1`` for a reduced sweep.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.mpibench import BenchSettings, DistributionDB, MPIBench
from repro.simnet import perseus

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

OUT_DIR = Path(__file__).parent / "out"
CACHE_DIR = OUT_DIR / "cache"

#: the paper's Figure 1 message sizes (small)
SMALL_SIZES = [0, 64, 256, 512, 1024] if not FAST else [0, 256, 1024]
#: the paper's Figure 2 message sizes (large)
LARGE_SIZES = (
    [1024, 4096, 16384, 32768, 65536] if not FAST else [1024, 16384, 65536]
)
#: n x p curves measured for Figures 1-2
CURVE_CONFIGS = (
    [(2, 1), (8, 1), (32, 1), (64, 1), (16, 2), (64, 2)]
    if not FAST
    else [(2, 1), (8, 1), (64, 1)]
)
#: configurations feeding the Figure 6 prediction study (includes the
#: single-node config for intra-node message distributions)
FIG6_CONFIGS = (
    [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1), (64, 1), (32, 2), (64, 2)]
    if not FAST
    else [(1, 2), (2, 1), (8, 1), (16, 1)]
)
FIG6_SIZES = [0, 512, 1024, 2048]

BENCH_REPS = 40 if not FAST else 20
SEED = 1


def _cached_sweep(name: str, configs, sizes) -> DistributionDB:
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    path = CACHE_DIR / f"{name}.json"
    if path.exists():
        return DistributionDB.load(path)
    bench = MPIBench(
        perseus(64), seed=SEED, settings=BenchSettings(reps=BENCH_REPS, warmup=5)
    )
    db = bench.sweep_isend(configs, sizes=sizes)
    db.save(path)
    return db


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def spec():
    return perseus(64)


@pytest.fixture(scope="session")
def small_db() -> DistributionDB:
    """Figure 1 sweep: small messages across the n x p curves."""
    return _cached_sweep("small", CURVE_CONFIGS, SMALL_SIZES)


@pytest.fixture(scope="session")
def large_db() -> DistributionDB:
    """Figure 2 sweep: large messages across the n x p curves."""
    return _cached_sweep("large", CURVE_CONFIGS, LARGE_SIZES)


@pytest.fixture(scope="session")
def fig6_db() -> DistributionDB:
    """The PEVPM input database for the Figure 6 prediction study."""
    return _cached_sweep("fig6", FIG6_CONFIGS, FIG6_SIZES)


def write_figure(out_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it to the bench log."""
    path = out_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
