"""Figure 6: PEVPM-predicted vs measured Jacobi speedups, 2-64 x 1-2.

The paper's headline experiment.  For each machine size we

* execute the Jacobi iteration on the simulated Perseus (the "measured"
  solid lines of Figure 6),
* predict it with PEVPM under the four timing sources (the dashed and
  dotted lines): full distributions (contention-conditioned), average and
  minimum 2x1 ping-pong times, and average n x p times,

then assert the paper's findings in shape:

1. distribution-based predictions track the measurement at every size
   (the paper reports <= 5%, usually 1%; our simulated-substrate
   tolerance is 20% -- see EXPERIMENTS.md for actual values);
2. min/avg ping-pong predictions *always overestimate performance*
   (predict less time than measured) once contention matters;
3. their error grows with the processor count;
4. the distribution source is the most accurate of the four at scale.
"""

import numpy as np

from conftest import FAST, write_figure
from repro._tables import ascii_curve, format_table
from repro.apps.jacobi import jacobi_serial_time, jacobi_smpi, parse_jacobi
from repro.pevpm import compare_timing_modes
from repro.smpi import run_program

ITERATIONS = 60 if FAST else 120
MACHINES = (
    [(4, 1), (16, 1)] if FAST else [(4, 1), (16, 1), (32, 1), (64, 1), (128, 2)]
)
MODES = ["distribution-nxp", "average-2x1", "minimum-2x1", "average-nxp"]


def _study(spec, db):
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    model = parse_jacobi()
    rows = {}
    for nprocs, ppn in MACHINES:
        measured = run_program(
            spec, jacobi_smpi, nprocs=nprocs, ppn=ppn, seed=42, args=(ITERATIONS,)
        ).elapsed
        preds = compare_timing_modes(
            model, nprocs, db, runs=4, seed=7, params=params, ppn=ppn
        )
        rows[(nprocs, ppn)] = (measured, {k: p.mean_time for k, p in preds.items()})
    return rows


def test_fig6_jacobi_speedups(benchmark, spec, fig6_db, out_dir):
    rows = benchmark.pedantic(_study, args=(spec, fig6_db), rounds=1, iterations=1)
    serial = jacobi_serial_time(spec, ITERATIONS)

    # Render the Figure 6 table and curves.
    table_rows = []
    xs, curves = [], {"measured": []}
    for (nprocs, ppn), (measured, preds) in rows.items():
        xs.append(nprocs)
        curves["measured"].append(serial / measured)
        row = [f"{nprocs} ({ppn}/node)", f"{serial / measured:.2f}"]
        for mode in MODES:
            t = preds[mode]
            curves.setdefault(mode, []).append(serial / t)
            row.append(f"{serial / t:.2f} ({(t - measured) / measured * 100:+.0f}%)")
        table_rows.append(row)
    table = format_table(
        ["procs", "measured"] + MODES, table_rows,
        title=(
            "Figure 6: Jacobi speedups, measured vs PEVPM predictions "
            f"({ITERATIONS} iterations; % = predicted-time error)"
        ),
    )
    plot = ascii_curve(xs, curves, width=64, height=14)
    write_figure(out_dir, "fig6_jacobi_speedup", table + "\n\n" + plot)

    # -- the paper's findings, as assertions ------------------------------
    errors = {
        mode: {
            cfg: (preds[mode] - measured) / measured
            for cfg, (measured, preds) in rows.items()
        }
        for mode in MODES
    }

    # 1. Distribution-based prediction is accurate at every machine size.
    #    (The paper reports <=5%; against our simulated substrate the
    #    observed range is ~0-20% -- see EXPERIMENTS.md -- so the guard is
    #    set at 25% to fail on regressions, not on seed noise.)
    for cfg, err in errors["distribution-nxp"].items():
        assert abs(err) < 0.25, f"dist prediction at {cfg}: {err * 100:+.1f}%"

    # 2. Ping-pong (2x1) sources overestimate performance under
    #    contention (>= 64 communicating processes on this fabric).
    big = [cfg for cfg in rows if cfg[0] >= 64]
    for cfg in big:
        assert errors["minimum-2x1"][cfg] < -0.10, cfg
        assert errors["average-2x1"][cfg] < -0.10, cfg
        # And minimum is at least as optimistic as average.
        assert errors["minimum-2x1"][cfg] <= errors["average-2x1"][cfg] + 1e-9

    # 3. The flawed sources' error grows with the processor count.
    if len(MACHINES) >= 3:
        sizes = sorted(rows)
        first, last = sizes[0], sizes[-1]
        assert abs(errors["minimum-2x1"][last]) > abs(errors["minimum-2x1"][first])

    # 4. At the largest machine, distribution sampling beats every
    #    alternative.
    largest = sorted(rows)[-1]
    dist_err = abs(errors["distribution-nxp"][largest])
    for mode in MODES[1:]:
        assert dist_err <= abs(errors[mode][largest]) + 1e-9, (
            f"{mode} beat distribution sampling at {largest}"
        )
