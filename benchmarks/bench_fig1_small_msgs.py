"""Figure 1: average MPI_Isend times for small messages, by n x p.

Regenerates the paper's Figure 1 data series (average one-way time vs.
message size, one curve per configuration, plus the contention-free
``min`` curve) and asserts its qualitative shape:

* average time rises with the number of communicating nodes and with the
  number of processes per node;
* the min curve lower-bounds everything;
* a 1 KB message at 64x1 takes substantially longer (the paper: ~70%)
  than at 2x1.
"""

import numpy as np

from conftest import CURVE_CONFIGS, SMALL_SIZES, write_figure
from repro.mpibench.report import average_times_table, contention_ratio


def _series(db):
    return {
        f"{n}x{p}": [db.result("isend", n, p).histograms[s].mean for s in SMALL_SIZES]
        for n, p in CURVE_CONFIGS
    }


def test_fig1_small_messages(benchmark, small_db, out_dir):
    series = benchmark.pedantic(_series, args=(small_db,), rounds=1, iterations=1)

    table = average_times_table(
        small_db, "isend", SMALL_SIZES, CURVE_CONFIGS,
        title="Figure 1: average MPI_Isend times, small messages (perseus)",
    )
    write_figure(out_dir, "fig1_small_msgs", table)

    # Shape 1: every curve increases with message size -- within noise:
    # at heavy contention (64x2) the per-message congestion dominates and
    # the curve is nearly flat, so allow small sampled dips.
    for label, curve in series.items():
        assert all(
            b >= a * 0.95 for a, b in zip(curve, curve[1:])
        ), f"{label} not (noise-tolerantly) monotone in size"
        assert curve[-1] >= curve[0], f"{label} does not rise overall"

    # Shape 2: more communicating nodes -> slower, at every size.
    by_nodes = [series[f"{n}x1"] for n, p in CURVE_CONFIGS if p == 1]
    for i, size in enumerate(SMALL_SIZES):
        col = [curve[i] for curve in by_nodes]
        assert col == sorted(col), f"node ordering violated at {size} B"

    # Shape 3: p=2 is slower than p=1 at the same node count (NIC sharing).
    if ("64x2" in series) and ("64x1" in series):
        assert all(
            a > b for a, b in zip(series["64x2"], series["64x1"])
        ), "SMP contention should slow every size"

    # Shape 4: the min curve bounds all averages.
    smallest = min(CURVE_CONFIGS, key=lambda c: c[0] * c[1])
    mins = [
        small_db.result("isend", *smallest).histograms[s].min for s in SMALL_SIZES
    ]
    for label, curve in series.items():
        assert all(m <= v * 1.001 for m, v in zip(mins, curve)), label

    # Shape 5: the paper's 1 KB observation -- 64x1 well above 2x1
    # (the paper reports ~1.7x; accept a generous band around it).
    ratio = contention_ratio(small_db, "isend", 1024, big=(64, 1), small=(2, 1))
    assert 1.3 < ratio < 2.5, f"1KB 64x1/2x1 ratio {ratio:.2f} out of band"


def test_fig1_dispersion_grows_with_contention(benchmark, small_db):
    """Companion check: not just means -- the distributions disperse."""

    def spread(cfg):
        h = small_db.result("isend", *cfg).histograms[1024]
        return h.std / h.mean

    result = benchmark.pedantic(
        lambda: (spread((2, 1)), spread((64, 1))), rounds=1, iterations=1
    )
    cv_2x1, cv_64x1 = result
    assert cv_64x1 > 2 * cv_2x1
