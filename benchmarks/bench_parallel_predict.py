"""The parallel prediction engine's two guarantees, measured.

Section 6's cost claim is about evaluation throughput; the engine in
:mod:`repro.pevpm.parallel` raises that throughput by fanning Monte
Carlo runs over host cores.  This bench verifies the contract on the
Jacobi workload:

* ``workers=N`` produces **bit-identical** ``Prediction.times`` to
  ``workers=1`` for the same seed (per-run ``SeedSequence`` streams);
* on a multi-core host the wall time drops (>= 2x with 4 workers and 8
  runs -- asserted only when the host has >= 4 cores, since a pool on a
  single core can only add overhead);
* a second evaluation with identical arguments is served from the
  on-disk prediction cache without re-simulation;
* ``vector_runs=True`` (the batched lockstep engine) multiplies
  single-worker throughput (``simulated_per_wall``) by >= 3x on the
  jacobi-100it-32p workload while keeping the mean within 1% of the
  per-run engine's and staying bit-identical across worker counts.
"""

import os
import time

from conftest import CACHE_DIR, write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import parse_jacobi
from repro.pevpm import predict, timing_from_db

ITERATIONS = 100
NPROCS = 16
RUNS = 8
WORKERS = 4

VECTOR_NPROCS = 32
VECTOR_RUNS = 64


def test_parallel_predict(spec, fig6_db, out_dir):
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(fig6_db, mode="distribution")
    model = parse_jacobi()
    kwargs = dict(runs=RUNS, seed=1, params=params)

    t0 = time.perf_counter()
    serial = predict(model, NPROCS, timing, workers=1, **kwargs)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = predict(model, NPROCS, timing, workers=WORKERS, **kwargs)
    parallel_wall = time.perf_counter() - t0

    # Reproducibility: the speed-up must not change the numbers.
    assert parallel.times == serial.times

    # Cache: the same arguments re-evaluate for free.
    cache_dir = CACHE_DIR / "predictions"
    first = predict(model, NPROCS, timing, cache_dir=cache_dir, **kwargs)
    second = predict(model, NPROCS, timing, cache_dir=cache_dir, **kwargs)
    assert second.cached
    assert second.times == first.times

    cores = os.cpu_count() or 1
    speedup = serial_wall / max(parallel_wall, 1e-9)
    rows = [
        ["workload", f"Jacobi {ITERATIONS} iters on {NPROCS} procs, {RUNS} MC runs"],
        ["host cores", str(cores)],
        ["workers=1 wall", format_time(serial_wall)],
        [f"workers={WORKERS} wall", format_time(parallel_wall)],
        ["parallel speedup", f"{speedup:.2f}x"],
        ["bit-identical times", str(parallel.times == serial.times)],
        ["slowest single run", format_time(serial.max_run_wall)],
        ["cache hit on 2nd call", str(second.cached)],
    ]
    write_figure(
        out_dir, "parallel_predict",
        format_table(["quantity", "value"], rows,
                     title="Parallel prediction engine"),
    )

    if cores >= 4:
        assert speedup >= 2.0, f"only {speedup:.2f}x with {WORKERS} workers"
    elif cores >= 2:
        assert speedup >= 1.2, f"only {speedup:.2f}x with {WORKERS} workers"


def test_vector_predict(spec, fig6_db, out_dir):
    """The batched engine's throughput and parity on jacobi-100it-32p."""
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(fig6_db, mode="distribution")
    model = parse_jacobi()
    kwargs = dict(runs=VECTOR_RUNS, seed=1, params=params)

    t0 = time.perf_counter()
    serial = predict(model, VECTOR_NPROCS, timing, workers=1, **kwargs)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    vector = predict(model, VECTOR_NPROCS, timing, workers=1,
                     vector_runs=True, **kwargs)
    vector_wall = time.perf_counter() - t0

    # Statistical parity: batch draws follow their own stream convention
    # but must land on the same distribution.
    rel = abs(vector.mean_time - serial.mean_time) / serial.mean_time
    # Determinism: repeats and worker counts do not change batch output.
    repeat = predict(model, VECTOR_NPROCS, timing, workers=1,
                     vector_runs=True, **kwargs)
    pooled = predict(model, VECTOR_NPROCS, timing, workers=WORKERS,
                     vector_runs=True, **kwargs)
    assert repeat.times == vector.times
    assert pooled.times == vector.times

    gain = vector.simulated_per_wall / serial.simulated_per_wall
    rows = [
        ["workload", f"Jacobi {ITERATIONS} iters on {VECTOR_NPROCS} procs, "
                     f"{VECTOR_RUNS} MC runs"],
        ["per-run engine wall", format_time(serial_wall)],
        ["batched engine wall", format_time(vector_wall)],
        ["per-run simulated/wall", f"{serial.simulated_per_wall:.1f}x"],
        ["batched simulated/wall", f"{vector.simulated_per_wall:.1f}x"],
        ["throughput gain", f"{gain:.2f}x"],
        ["mean gap vs per-run", f"{rel:.4%}"],
        ["bit-identical repeats", str(repeat.times == vector.times)],
        ["bit-identical across workers", str(pooled.times == vector.times)],
    ]
    write_figure(
        out_dir, "vector_predict",
        format_table(["quantity", "value"], rows,
                     title="Batched vectorised prediction engine"),
    )

    assert rel < 0.01, f"batch mean drifted {rel:.2%} from the per-run engine"
    assert gain >= 3.0, f"batched engine only {gain:.2f}x per-run throughput"
