"""Section 6's evaluation-cost claim.

"...the 11 hours and 15 minutes of processor time consumed by actually
running the Jacobi Iteration program on Perseus were simulated in just
under 10 minutes by our prototype ... PEVPM simulated the Jacobi program
on Perseus at about 67.5 times its actual execution speed."

Our analogue compares, for the same Jacobi workload:

* the *simulated processor time* PEVPM evaluates per host wall second
  (the paper's 67.5x metric), and
* PEVPM evaluation wall time vs. the discrete-event execution wall time
  (PEVPM must be the cheaper way to obtain the number).
"""

import time

from conftest import write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import jacobi_smpi, parse_jacobi
from repro.pevpm import predict, timing_from_db
from repro.smpi import run_program

ITERATIONS = 100
NPROCS = 32
#: one full vector chunk -- the batched engine's natural work unit
BATCHED_RUNS = 64


def test_eval_cost(benchmark, spec, fig6_db, out_dir):
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(fig6_db, mode="distribution")

    # PEVPM evaluation, timed by pytest-benchmark.
    pred = benchmark.pedantic(
        predict,
        args=(parse_jacobi(), NPROCS, timing),
        kwargs={"runs": 3, "seed": 1, "params": params},
        rounds=1,
        iterations=1,
    )

    # The execution-driven simulation of the same workload, hand-timed.
    t0 = time.perf_counter()
    measured = run_program(
        spec, jacobi_smpi, nprocs=NPROCS, ppn=1, seed=42, args=(ITERATIONS,)
    )
    exec_wall = time.perf_counter() - t0

    proc_seconds = measured.elapsed * NPROCS
    rows = [
        ["workload", f"Jacobi {ITERATIONS} iters on {NPROCS} procs"],
        ["simulated processor time", format_time(proc_seconds)],
        ["PEVPM wall time (3 MC runs)", format_time(pred.wall_time)],
        ["PEVPM speed vs execution",
         f"{proc_seconds * 3 / max(pred.wall_time, 1e-9):.1f}x processor-time/wall"
         " (paper: 67.5x)"],
        ["event-simulator wall time", format_time(exec_wall)],
        ["PEVPM wall per MC run", format_time(pred.wall_time / 3)],
        ["PEVPM mean/max single-run wall",
         f"{format_time(pred.mean_run_wall)} / {format_time(pred.max_run_wall)}"],
    ]
    write_figure(
        out_dir, "eval_cost",
        format_table(["quantity", "value"], rows, title="PEVPM evaluation cost"),
    )

    # The claims in shape: PEVPM evaluates more processor-time per wall
    # second than real-time execution would take...
    assert pred.simulated_per_wall > 1.0
    # ...and one PEVPM Monte Carlo run is cheaper than one execution-driven
    # simulation of the same program (the reason to have a model at all).
    assert pred.wall_time / 3 < exec_wall


def test_eval_cost_batched_compiled(benchmark, spec, fig6_db, out_dir):
    """The production configuration: batched engine on compiled static
    schedules with table-driven sampling -- the row the CI eval-cost
    ratchet (``scripts/track_eval_cost.py --check``) enforces a floor on.
    """
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(fig6_db, mode="distribution")

    pred = benchmark.pedantic(
        predict,
        args=(parse_jacobi(), NPROCS, timing),
        kwargs={
            "runs": BATCHED_RUNS, "seed": 1, "params": params,
            "vector_runs": True, "compiled": True, "workers": 1,
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        ["workload", f"Jacobi {ITERATIONS} iters on {NPROCS} procs"],
        ["engine", f"batched+compiled ({BATCHED_RUNS} MC runs, 1 worker)"],
        ["PEVPM wall time", format_time(pred.wall_time)],
        ["PEVPM wall per MC run", format_time(pred.wall_time / BATCHED_RUNS)],
        ["simulated/wall",
         f"{pred.simulated_per_wall:.1f}x processor-time/wall (paper: 67.5x)"],
    ]
    write_figure(
        out_dir, "eval_cost_batched_compiled",
        format_table(
            ["quantity", "value"], rows,
            title="PEVPM evaluation cost (batched + compiled)",
        ),
    )

    # Shape only -- the calibrated floor lives in the ratchet script,
    # where the measurement conditions are pinned.
    assert pred.simulated_per_wall > 1.0
