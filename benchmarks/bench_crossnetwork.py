"""The thesis-level cross-network claim.

"Experiments with a variety of parallel programs with different
communication patterns have demonstrated that PEVPM gives accurate
performance predictions on a variety of cluster computers with different
communication networks [9, 10]."

Runs the whole pipeline (benchmark -> model -> predict -> measure) on a
*second* simulated machine -- a Gigabit-Ethernet cluster -- and asserts:
PEVPM stays accurate there; and the two networks' contention profiles
differ the way the hardware says they should (milder on Gigabit).
"""

from conftest import SEED, write_figure
from repro._tables import format_table, format_time
from repro.apps.jacobi import jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench, compare_configs
from repro.pevpm import predict, timing_from_db
from repro.simnet import gigabit_cluster, perseus
from repro.smpi import run_program

ITERATIONS = 100
SIZES = [0, 512, 1024, 2048]
CONFIGS = [(1, 2), (2, 1), (8, 1), (16, 1)]


def _pipeline(spec):
    bench = MPIBench(spec, seed=SEED, settings=BenchSettings(reps=30, warmup=3))
    db = bench.sweep_isend(CONFIGS, sizes=SIZES)
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    measured = run_program(
        spec, jacobi_smpi, nprocs=16, ppn=1, seed=42, args=(ITERATIONS,)
    ).elapsed
    pred = predict(
        parse_jacobi(), 16, timing_from_db(db, "distribution"),
        runs=4, seed=7, params=params,
    )
    return db, measured, pred.mean_time


def test_crossnetwork_prediction(benchmark, out_dir):
    results = benchmark.pedantic(
        lambda: {
            "perseus (Fast Ethernet)": _pipeline(perseus(16)),
            "gigabit": _pipeline(gigabit_cluster(16)),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, (_db, measured, predicted) in results.items():
        err = (predicted - measured) / measured
        rows.append([name, format_time(measured), format_time(predicted),
                     f"{err * 100:+.1f}%"])
    write_figure(
        out_dir, "crossnetwork",
        format_table(
            ["cluster", "measured (Jacobi 16p)", "PEVPM predicted", "error"],
            rows,
            title="PEVPM accuracy across communication networks",
        ),
    )

    for name, (_db, measured, predicted) in results.items():
        err = abs(predicted - measured) / measured
        assert err < 0.15, f"{name}: {err * 100:.0f}% off"

    # The gigabit machine is simply faster for the same program.
    t_fast = results["perseus (Fast Ethernet)"][1]
    t_giga = results["gigabit"][1]
    assert t_giga < t_fast

    # And its small-message latency profile dominates at every size.
    db_fast = results["perseus (Fast Ethernet)"][0]
    db_giga = results["gigabit"][0]
    for comp in compare_configs(db_fast, db_giga, "isend", (2, 1)):
        assert comp.mean_ratio < 1.0
