"""Integration tests: MPIBench measuring the simulated cluster.

These run real (small) benchmark campaigns and assert the qualitative
shapes the paper reports; the full-size sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.mpibench.drivers import pairwise_partner
from repro.simnet import ideal_cluster, perseus


@pytest.fixture(scope="module")
def small_db():
    """A small sweep shared by several tests (module-scoped for speed)."""
    bench = MPIBench(perseus(16), seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend([(2, 1), (8, 1), (8, 2)], sizes=[0, 1024, 4096])


class TestPairing:
    def test_partner_is_symmetric(self):
        for nprocs in (2, 4, 8, 64):
            for rank in range(nprocs):
                partner = pairwise_partner(rank, nprocs)
                assert pairwise_partner(partner, nprocs) == rank
                assert partner != rank

    def test_odd_process_count_rejected(self):
        with pytest.raises(ValueError):
            pairwise_partner(0, 3)


class TestIsendBench:
    def test_sample_counts(self, small_db):
        r = small_db.result("isend", 8, 1)
        for size in (0, 1024, 4096):
            # reps per rank x nprocs ranks pooled together
            assert r.histograms[size].n == 30 * 8

    def test_mean_grows_with_size(self, small_db):
        for cfg in [(2, 1), (8, 1), (8, 2)]:
            r = small_db.result("isend", *cfg)
            means = [r.histograms[s].mean for s in (0, 1024, 4096)]
            assert means == sorted(means)

    def test_contention_orders_configs(self, small_db):
        """More communicating processes -> slower average (Figure 1)."""
        m2 = small_db.result("isend", 2, 1).histograms[1024].mean
        m8 = small_db.result("isend", 8, 1).histograms[1024].mean
        m8x2 = small_db.result("isend", 8, 2).histograms[1024].mean
        assert m2 < m8 < m8x2

    def test_min_bounded_by_contention_free(self, small_db):
        """Every distribution's minimum is at or above the 2x1 minimum
        (the contention-free bound)."""
        base = small_db.result("isend", 2, 1).histograms[1024].min
        for cfg in [(8, 1), (8, 2)]:
            h = small_db.result("isend", *cfg).histograms[1024]
            assert h.min >= base * 0.9  # jitter-free floor, small tolerance

    def test_2x1_min_close_to_mean(self, small_db):
        """The paper: without contention, min and average nearly coincide."""
        h = small_db.result("isend", 2, 1).histograms[1024]
        assert h.mean < h.min * 1.1

    def test_dispersion_grows_with_contention(self, small_db):
        s2 = small_db.result("isend", 2, 1).histograms[1024].std
        s8x2 = small_db.result("isend", 8, 2).histograms[1024].std
        assert s8x2 > s2

    def test_one_way_times_positive_and_sane(self, small_db):
        for cfg in [(2, 1), (8, 1), (8, 2)]:
            r = small_db.result("isend", *cfg)
            for size, h in r.histograms.items():
                assert h.min > 0
                assert h.max < 1.0  # no absurd values in a lossless regime

    def test_metadata_recorded(self, small_db):
        r = small_db.result("isend", 2, 1)
        assert r.reps == 30
        assert r.cluster == "perseus"
        assert r.label == "2x1"
        assert r.metadata["elapsed_simulated_s"] > 0


class TestProtocolKnee:
    def test_knee_at_eager_threshold(self):
        """Normalised cost jumps when crossing 16 KB (Figure 2's knee)."""
        bench = MPIBench(
            ideal_cluster(2), seed=1, settings=BenchSettings(reps=10, warmup=2)
        )
        r = bench.run_isend(nodes=2, ppn=1, sizes=[16384, 16640])
        below = r.histograms[16384].mean
        above = r.histograms[16640].mean
        # 256 extra bytes of bandwidth is ~20 us; the RTS/CTS round trip
        # costs far more.
        assert above - below > 100e-6


class TestBcastBarrier:
    def test_bcast_times_scale_with_ranks(self):
        bench = MPIBench(perseus(16), seed=5, settings=BenchSettings(reps=20, warmup=2))
        r4 = bench.run_bcast(nodes=4, ppn=1, sizes=[1024])
        r16 = bench.run_bcast(nodes=16, ppn=1, sizes=[1024])
        assert r16.histograms[1024].mean > r4.histograms[1024].mean

    def test_barrier_produces_samples(self):
        bench = MPIBench(perseus(8), seed=5, settings=BenchSettings(reps=15, warmup=2))
        r = bench.run_barrier(nodes=4, ppn=1)
        h = r.histograms[0]
        assert h.n == 15 * 4
        assert h.min > 0


class TestValidation:
    def test_too_many_nodes(self):
        bench = MPIBench(perseus(4), seed=0)
        with pytest.raises(ValueError):
            bench.run_isend(nodes=8, ppn=1, sizes=[0])

    def test_bad_settings(self):
        with pytest.raises(ValueError):
            BenchSettings(reps=0).validate()
        with pytest.raises(ValueError):
            BenchSettings(warmup=-1).validate()
        with pytest.raises(ValueError):
            BenchSettings(bins=0).validate()

    def test_reproducible_campaign(self):
        settings = BenchSettings(reps=10, warmup=2)
        a = MPIBench(perseus(4), seed=9, settings=settings).run_isend(2, 1, [256])
        b = MPIBench(perseus(4), seed=9, settings=settings).run_isend(2, 1, [256])
        assert np.allclose(a.histograms[256].samples, b.histograms[256].samples)
