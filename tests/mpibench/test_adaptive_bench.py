"""Auto-reps benchmarking and the histogram statistics bugfixes."""

import numpy as np
import pytest

from repro.mpibench import BenchSettings, Histogram, MPIBench
from repro.simnet import perseus


class TestZeroTotalGuards:
    """Satellite 2: zero-mass histograms fail loudly, not with NaN curves."""

    def _zeroed(self):
        h = Histogram.from_samples([1.0, 2.0, 3.0], bins=3)
        # Emptied after construction (in-place mutation / a hand-rolled
        # __setstate__ payload) -- the case the guard exists for.
        h.counts[:] = 0.0
        h._cum[:] = 0.0
        return h

    def test_pdf_raises(self):
        with pytest.raises(ValueError, match="zero total mass"):
            self._zeroed().pdf()

    def test_cdf_raises(self):
        with pytest.raises(ValueError, match="zero total mass"):
            self._zeroed().cdf()

    def test_ks_distance_raises_either_side(self):
        good = Histogram.from_samples([1.0, 2.0, 3.0], bins=3)
        with pytest.raises(ValueError, match="zero total mass"):
            self._zeroed().ks_distance(good)
        with pytest.raises(ValueError, match="zero total mass"):
            good.ks_distance(self._zeroed())

    def test_intact_histogram_unaffected(self):
        h = Histogram.from_samples([1.0, 2.0, 3.0], bins=3)
        _, density = h.pdf()
        assert np.all(np.isfinite(density))


class TestSampleStd:
    """Satellite 3: explicit population (std) vs sample (sample_std)."""

    def test_exact_from_retained_samples(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        h = Histogram.from_samples(data, bins=5, keep_samples=True)
        assert h.sample_std == pytest.approx(np.std(data, ddof=1))
        assert h.std == pytest.approx(np.std(data, ddof=0))
        assert h.sample_std > h.std

    def test_binned_fallback_scales_population_estimate(self):
        data = np.random.default_rng(0).gamma(3.0, 1.0, size=500)
        h = Histogram.from_samples(data, bins=50, keep_samples=True)
        binned = Histogram.from_dict(h.to_dict())  # drops samples
        assert binned.samples is None
        expected = binned.std * np.sqrt(binned.n / (binned.n - 1))
        assert binned.sample_std == pytest.approx(expected)

    def test_single_sample_inestimable(self):
        h = Histogram.from_samples([7.0])
        assert h.sample_std == 0.0


class TestAutoReps:
    """BenchSettings.target_rse: sequential stopping for the benchmark."""

    CFG = dict(nodes=2, ppn=1, sizes=[256])

    def test_loose_target_single_pass_identical_to_plain(self):
        """Round 0 uses the root seed exactly, so a converged-at-once
        campaign is byte-identical to a plain run of the same settings."""
        plain = MPIBench(
            perseus(4), seed=6, settings=BenchSettings(reps=20, warmup=2)
        ).run_isend(**self.CFG)
        adaptive = MPIBench(
            perseus(4), seed=6,
            settings=BenchSettings(reps=20, warmup=2, target_rse=0.8),
        ).run_isend(**self.CFG)
        hp, ha = plain.histograms[256], adaptive.histograms[256]
        assert ha.n == hp.n
        assert ha.mean == hp.mean
        assert np.array_equal(ha.counts, hp.counts)
        meta = adaptive.metadata["auto_reps"]
        assert meta["rounds"] == 1 and meta["converged"]

    def test_tight_target_adds_doubling_rounds(self):
        bench = MPIBench(
            perseus(4), seed=6,
            settings=BenchSettings(
                reps=10, warmup=2, target_rse=1e-3, max_reps=80
            ),
        )
        result = bench.run_isend(**self.CFG)
        meta = result.metadata["auto_reps"]
        assert meta["rounds"] > 1
        assert meta["reps"] > 10
        assert meta["reps"] <= 80
        # Raw samples pooled before binning: n tracks the spent reps.
        assert result.histograms[256].n == meta["reps"] * 2  # 2 send ranks
        assert result.reps == meta["reps"]

    def test_cap_reports_nonconvergence(self):
        bench = MPIBench(
            perseus(4), seed=6,
            settings=BenchSettings(
                reps=10, warmup=2, target_rse=1e-9, max_reps=40
            ),
        )
        meta = bench.run_isend(**self.CFG).metadata["auto_reps"]
        assert meta["reps"] == 40
        assert not meta["converged"]

    def test_plain_run_has_no_auto_reps_metadata(self):
        bench = MPIBench(
            perseus(4), seed=6, settings=BenchSettings(reps=10, warmup=2)
        )
        assert "auto_reps" not in bench.run_isend(**self.CFG).metadata

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            BenchSettings(reps=10, target_rse=0.0).validate()
        with pytest.raises(ValueError):
            BenchSettings(reps=10, target_rse=-0.1).validate()
        with pytest.raises(ValueError):
            BenchSettings(reps=10, max_reps=5).validate()

    def test_barrier_auto_reps(self):
        """reps sits at a different driver-args index for barrier."""
        bench = MPIBench(
            perseus(4), seed=6,
            settings=BenchSettings(
                reps=10, warmup=2, target_rse=1e-3, max_reps=40
            ),
        )
        result = bench.run_barrier(nodes=2, ppn=1)
        meta = result.metadata.get("auto_reps")
        assert meta is not None
        assert meta["reps"] >= 10
