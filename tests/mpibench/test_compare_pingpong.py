"""Tests for the ping-pong driver, campaign comparison and data export."""

import numpy as np
import pytest

from repro.mpibench import (
    BenchSettings,
    MPIBench,
    compare_configs,
    compare_databases,
    export_series,
)
from repro.simnet import gigabit_cluster, perseus


@pytest.fixture(scope="module")
def dbs():
    settings = BenchSettings(reps=25, warmup=3)
    fast = MPIBench(perseus(16), seed=4, settings=settings).sweep_isend(
        [(2, 1), (16, 1)], sizes=[0, 1024, 4096]
    )
    giga = MPIBench(gigabit_cluster(16), seed=4, settings=settings).sweep_isend(
        [(2, 1), (16, 1)], sizes=[0, 1024, 4096]
    )
    return fast, giga


class TestPingpongDriver:
    def test_rtt_half_close_to_one_way_without_contention(self):
        """At 2x1 the network is symmetric and idle, so RTT/2 ~ one-way."""
        bench = MPIBench(perseus(4), seed=2, settings=BenchSettings(reps=30, warmup=3))
        oneway = bench.run_isend(2, 1, sizes=[1024]).histograms[1024]
        half = bench.run_pingpong(2, 1, sizes=[1024]).histograms[1024]
        assert half.mean == pytest.approx(oneway.mean, rel=0.15)

    def test_rtt_half_hides_contention_dispersion(self):
        """The paper's criticism: under contention the one-way distribution
        disperses far more than the averaged RTT/2 reveals."""
        bench = MPIBench(perseus(16), seed=2, settings=BenchSettings(reps=30, warmup=3))
        oneway = bench.run_isend(16, 1, sizes=[1024]).histograms[1024]
        half = bench.run_pingpong(16, 1, sizes=[1024]).histograms[1024]
        # Relative spread of individual one-way times exceeds that of the
        # round-trip halves (which average the two directions).
        assert oneway.std / oneway.mean > half.std / half.mean

    def test_only_initiators_record(self):
        bench = MPIBench(perseus(8), seed=2, settings=BenchSettings(reps=10, warmup=2))
        r = bench.run_pingpong(8, 1, sizes=[256])
        # 4 initiator ranks x 10 reps.
        assert r.histograms[256].n == 40

    def test_driver_validation(self):
        from repro.mpibench.drivers import pingpong_driver
        from repro.smpi import run_program

        def prog(comm):
            with pytest.raises(ValueError):
                yield from pingpong_driver(comm, [64], reps=0)
            yield from comm.barrier()
            return True

        r = run_program(perseus(4), prog, nprocs=2)
        assert r.returns == [True, True]


class TestGigabitCluster:
    def test_factory_properties(self):
        spec = gigabit_cluster(32)
        assert spec.name == "gigabit"
        assert spec.link_bandwidth == pytest.approx(125e6)
        assert spec.n_switches == 1
        with pytest.raises(ValueError):
            gigabit_cluster(0)

    def test_faster_than_perseus(self, dbs):
        fast, giga = dbs
        for size in (0, 1024, 4096):
            tf = fast.result("isend", 2, 1).histograms[size].mean
            tg = giga.result("isend", 2, 1).histograms[size].mean
            assert tg < tf, f"gigabit should beat fast ethernet at {size} B"

    def test_milder_contention_than_perseus(self, dbs):
        """Cross-network claim: contention effects depend on the network."""
        fast, giga = dbs

        def ratio(db):
            a = db.result("isend", 16, 1).histograms[1024].mean
            b = db.result("isend", 2, 1).histograms[1024].mean
            return a / b

        assert ratio(giga) < ratio(fast)


class TestCompare:
    def test_compare_configs(self, dbs):
        fast, giga = dbs
        comps = compare_configs(fast, giga, "isend", (2, 1))
        assert [c.size for c in comps] == [0, 1024, 4096]
        for c in comps:
            assert c.mean_ratio < 1.0  # gigabit faster
            assert c.tail_ratio > 0.0

    def test_compare_within_one_db(self, dbs):
        fast, _ = dbs
        comps = compare_configs(fast, fast, "isend", (2, 1), (16, 1))
        assert all(c.mean_ratio > 1.0 for c in comps)  # contention slower

    def test_compare_databases(self, dbs):
        fast, giga = dbs
        diff = compare_databases(fast, giga)
        assert set(diff) == {(2, 1), (16, 1)}

    def test_no_common_sizes_rejected(self, dbs):
        fast, _ = dbs
        lonely = MPIBench(
            perseus(2), seed=1, settings=BenchSettings(reps=5, warmup=1)
        ).sweep_isend([(2, 1)], sizes=[128])
        with pytest.raises(ValueError):
            compare_configs(fast, lonely, "isend", (2, 1))

    def test_zero_division_guards(self):
        from repro.mpibench.compare import ConfigComparison

        c = ConfigComparison("isend", 0, 0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ZeroDivisionError):
            c.mean_ratio
        with pytest.raises(ZeroDivisionError):
            c.tail_ratio


class TestExport:
    def test_export_mean_series(self, dbs, tmp_path):
        fast, _ = dbs
        out = export_series(fast, "isend", tmp_path / "fig.dat")
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "# size 2x1 16x1"
        assert len(lines) == 1 + 3  # header + three sizes
        size, a, b = lines[2].split()
        assert int(size) == 1024
        assert float(b) > float(a)  # 16x1 slower than 2x1

    def test_export_quantile_series(self, dbs, tmp_path):
        fast, _ = dbs
        out = export_series(fast, "isend", tmp_path / "p99.dat", statistic="0.99")
        assert "nan" not in out.read_text()

    def test_export_unknown_op(self, dbs, tmp_path):
        fast, _ = dbs
        with pytest.raises(KeyError):
            export_series(fast, "warp", tmp_path / "x.dat")


class TestKsDistance:
    def test_identical_distributions_have_zero_distance(self):
        import numpy as np

        from repro.mpibench import Histogram

        rng = np.random.default_rng(0)
        data = rng.gamma(3, 1e-5, 400)
        h = Histogram.from_samples(data, bins=30)
        assert h.ks_distance(h) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_distributions_have_large_distance(self):
        import numpy as np

        from repro.mpibench import Histogram

        rng = np.random.default_rng(1)
        a = Histogram.from_samples(1e-4 + rng.gamma(3, 1e-6, 400), bins=30)
        b = Histogram.from_samples(5e-4 + rng.gamma(3, 1e-6, 400), bins=30)
        assert a.ks_distance(b) > 0.95

    def test_symmetry(self):
        import numpy as np

        from repro.mpibench import Histogram

        rng = np.random.default_rng(2)
        a = Histogram.from_samples(rng.gamma(2, 1.0, 300), bins=25)
        b = Histogram.from_samples(rng.gamma(4, 1.0, 300), bins=25)
        assert a.ks_distance(b) == pytest.approx(b.ks_distance(a))
        assert 0.0 < a.ks_distance(b) <= 1.0

    def test_comparisons_carry_ks(self, dbs):
        fast, giga = dbs
        comps = compare_configs(fast, giga, "isend", (2, 1))
        # Entirely different time scales: distributions barely overlap.
        assert all(c.ks > 0.9 for c in comps)
