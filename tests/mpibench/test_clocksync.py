"""Tests for global clock synchronisation.

The simulator knows true time, so we can check that the ping-pong
synchronisation recovers it -- and that *without* synchronisation, one-way
times computed from raw local clocks are garbage (the paper's motivation
for building a synchronised clock in the first place).
"""

import numpy as np
import pytest

from repro.mpibench.clocksync import ClockCorrection, sync_clocks
from repro.simnet import perseus
from repro.smpi import run_program


def _sync_errors(nprocs=4, seed=2, rounds=8, drift_gap=0.3, settle=0.0):
    """Run sync, optionally wait, then have every rank map one common true
    instant to the global timebase; return the cross-rank spread."""

    def program(comm):
        corr = yield from sync_clocks(comm, rounds=rounds, drift_gap=drift_gap)
        if settle:
            yield from comm.compute(settle)
        yield from comm.barrier()
        # Sample local clock and truth at (nearly) the same instant.
        return corr.to_global(comm.clock()), comm.true_time()

    r = run_program(perseus(8), program, nprocs=nprocs, seed=seed)
    globals_, truths = zip(*r.returns)
    # Ranks exit the barrier at slightly different true instants; align on
    # truth before comparing the global readings.
    base_g, base_t = globals_[0], truths[0]
    return [abs(g - (base_g + (t - base_t))) for g, t in zip(globals_, truths)]


class TestClockCorrection:
    def test_identity(self):
        corr = ClockCorrection()
        assert corr.to_global(123.0) == 123.0

    def test_offset_removal(self):
        corr = ClockCorrection(offset=5.0)
        assert corr.to_global(10.0) == pytest.approx(5.0)

    def test_drift_removal(self):
        corr = ClockCorrection(offset=0.0, drift=1e-3, ref_local=100.0)
        # 10 seconds after the reference, a 1e-3 drift has built up 10 ms.
        assert corr.to_global(110.0) == pytest.approx(110.0 - 0.01)

    def test_invalid_drift(self):
        with pytest.raises(ValueError):
            ClockCorrection(drift=-1.0)


class TestSyncAccuracy:
    def test_recovers_truth_to_microseconds(self):
        errs = _sync_errors()
        assert max(errs) < 5e-6

    def test_unsynchronised_clocks_are_far_worse(self):
        """Raw local clocks disagree by ~ms; sync must beat them by orders
        of magnitude."""

        def program(comm):
            yield from comm.barrier()
            return comm.clock(), comm.true_time()

        r = run_program(perseus(8), program, nprocs=4, seed=2)
        locals_, truths = zip(*r.returns)
        base_l, base_t = locals_[0], truths[0]
        raw_errs = [abs(l - (base_l + (t - base_t))) for l, t in zip(locals_, truths)]
        sync_errs = _sync_errors(seed=2)
        assert max(raw_errs) > 100 * max(sync_errs)

    def test_drift_correction_survives_long_runs(self):
        """After 20 simulated seconds, drift-corrected clocks stay tight
        while offset-only correction would have drifted by ~hundreds of us."""
        errs = _sync_errors(settle=20.0, drift_gap=0.5)
        # 30 ppm drift over 20 s is 600 us; corrected should be far tighter.
        assert max(errs) < 100e-6

    def test_single_rank_is_identity(self):
        def program(comm):
            corr = yield from sync_clocks(comm)
            return corr.offset, corr.drift

        r = run_program(perseus(2), program, nprocs=1)
        assert r.returns == [(0.0, 0.0)]

    def test_rank0_is_reference(self):
        def program(comm):
            corr = yield from sync_clocks(comm, rounds=4, drift_gap=0.1)
            return corr.offset, corr.drift

        r = run_program(perseus(4), program, nprocs=3, seed=1)
        assert r.returns[0] == (0.0, 0.0)
        assert any(off != 0.0 for off, _d in r.returns[1:])

    def test_invalid_rounds(self):
        def program(comm):
            with pytest.raises(ValueError):
                yield from sync_clocks(comm, rounds=0)
            yield from comm.send(0, dest=1 - comm.rank, tag=1)
            yield from comm.recv(source=1 - comm.rank, tag=1)
            return True

        r = run_program(perseus(4), program, nprocs=2)
        assert r.returns == [True, True]

    def test_more_rounds_do_not_hurt(self):
        # Both stay at sub-5us accuracy; exact values differ by which
        # random exchange wins the min-RTT filter.
        assert max(_sync_errors(rounds=2, seed=7)) < 5e-6
        assert max(_sync_errors(rounds=16, seed=7)) < 5e-6
