"""Tests for the Histogram distribution type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpibench import Histogram


def _h(samples, **kw):
    return Histogram.from_samples(samples, **kw)


class TestConstruction:
    def test_from_samples_basic(self):
        h = _h([1.0, 2.0, 3.0, 4.0], bins=4)
        assert h.n == 4
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _h([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            _h([1.0, float("nan")])
        with pytest.raises(ValueError):
            _h([1.0, float("inf")])

    def test_degenerate_identical_samples(self):
        h = _h([5.0] * 10)
        assert h.n == 10
        assert h.mean == pytest.approx(5.0)
        rng = np.random.default_rng(0)
        draws = h.sample(rng, 100)
        assert np.allclose(draws, 5.0, atol=1e-9)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            _h([1.0, 2.0], bins=0)

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError):
            Histogram(np.array([0.0, 1.0]), np.array([1.0, 2.0]))  # len mismatch
        with pytest.raises(ValueError):
            Histogram(np.array([1.0, 0.0]), np.array([1.0]))  # decreasing edges
        with pytest.raises(ValueError):
            Histogram(np.array([0.0, 1.0]), np.array([-1.0]))  # negative count
        with pytest.raises(ValueError):
            Histogram(np.array([0.0, 1.0]), np.array([0.0]))  # zero mass


class TestStatistics:
    def test_pdf_integrates_to_one(self):
        rng = np.random.default_rng(1)
        h = _h(rng.gamma(3.0, 2.0, size=5000), bins=50)
        centres, density = h.pdf()
        widths = np.diff(h.edges)
        assert float(np.sum(density * widths)) == pytest.approx(1.0)

    def test_cdf_monotone_ending_at_one(self):
        rng = np.random.default_rng(2)
        h = _h(rng.exponential(1.0, size=1000), bins=30)
        _, cum = h.cdf()
        assert np.all(np.diff(cum) >= -1e-12)
        assert cum[-1] == pytest.approx(1.0)

    def test_quantiles(self):
        h = _h(np.arange(1, 101, dtype=float), bins=100)
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.quantile(0.5) == pytest.approx(50.5, rel=0.05)

    def test_quantile_bounds_checked(self):
        h = _h([1.0, 2.0])
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_tail_mass(self):
        h = _h(np.concatenate([np.full(90, 1.0), np.full(10, 100.0)]), bins=50)
        assert h.tail_mass(50.0) == pytest.approx(0.1)
        assert h.tail_mass(0.0) == pytest.approx(1.0)
        assert h.tail_mass(1000.0) == 0.0

    def test_tail_mass_binned_only(self):
        h0 = _h(np.concatenate([np.full(90, 1.0), np.full(10, 100.0)]), bins=50)
        h = Histogram.from_dict(h0.to_dict())  # drops samples
        assert h.tail_mass(50.0) == pytest.approx(0.1, abs=0.02)


class TestSampling:
    def test_samples_within_support(self):
        rng = np.random.default_rng(3)
        data = rng.normal(10.0, 1.0, size=2000)
        h = _h(data, bins=40)
        draws = h.sample(rng, 5000)
        assert draws.min() >= h.min - 1e-9
        assert draws.max() <= h.max + 1e-9

    def test_sample_mean_matches(self):
        rng = np.random.default_rng(4)
        data = rng.gamma(4.0, 1.0, size=4000)
        h = _h(data, bins=60)
        draws = h.sample(rng, 20000)
        assert float(draws.mean()) == pytest.approx(h.mean, rel=0.03)

    def test_scalar_sample(self):
        rng = np.random.default_rng(5)
        h = _h([1.0, 2.0, 3.0])
        v = h.sample(rng)
        assert isinstance(v, float)

    def test_coarse_bins_add_quantisation_error(self):
        """The paper's granularity claim: coarser bins distort sampling."""
        rng = np.random.default_rng(6)
        data = rng.gamma(2.0, 1.0, size=4000)
        fine = _h(data, bins=200)
        coarse = _h(data, bins=3)
        dfine = fine.sample(rng, 20000)
        dcoarse = coarse.sample(rng, 20000)
        err_fine = abs(np.quantile(dfine, 0.9) - np.quantile(data, 0.9))
        err_coarse = abs(np.quantile(dcoarse, 0.9) - np.quantile(data, 0.9))
        assert err_coarse > err_fine


class TestMergeAndPersistence:
    def test_merge_pools_samples(self):
        a = _h([1.0, 2.0], bins=10)
        b = _h([3.0, 4.0], bins=20)
        m = a.merge(b)
        assert m.n == 4
        assert m.min == 1.0 and m.max == 4.0
        assert m.nbins == 20

    def test_merge_requires_samples(self):
        a = _h([1.0, 2.0])
        b = Histogram.from_dict(_h([3.0, 4.0]).to_dict())
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dict_roundtrip_without_samples(self):
        h = _h(np.linspace(0, 1, 100), bins=10)
        h2 = Histogram.from_dict(h.to_dict())
        assert np.allclose(h2.edges, h.edges)
        assert np.allclose(h2.counts, h.counts)
        assert h2.mean == pytest.approx(h.mean)
        assert h2.min == pytest.approx(h.min)
        assert h2.samples is None

    def test_dict_roundtrip_with_samples(self):
        h = _h([1.0, 5.0, 9.0])
        h2 = Histogram.from_dict(h.to_dict(include_samples=True))
        assert np.allclose(h2.samples, [1.0, 5.0, 9.0])

    def test_rebinned(self):
        h = _h(np.linspace(0, 1, 1000), bins=100)
        h2 = h.rebinned(10)
        assert h2.nbins == 10
        assert h2.n == h.n

    def test_rebin_requires_samples(self):
        h = Histogram.from_dict(_h([1.0, 2.0]).to_dict())
        with pytest.raises(ValueError):
            h.rebinned(5)


# -- property-based ----------------------------------------------------------------


@given(
    data=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=300,
    ),
    bins=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=80, deadline=None)
def test_histogram_invariants(data, bins):
    """Mass conservation, support bounds and moment consistency hold for
    arbitrary sample sets."""
    h = Histogram.from_samples(data, bins=bins)
    assert h.n == len(data)
    assert h.counts.sum() == pytest.approx(len(data))
    assert h.min == pytest.approx(min(data))
    assert h.max == pytest.approx(max(data))
    assert h.min - 1e-9 <= h.mean <= h.max + 1e-9
    # Quantiles are monotone in q.
    qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))


@given(
    data=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=100,
    )
)
@settings(max_examples=40, deadline=None)
def test_sampling_stays_in_support(data):
    h = Histogram.from_samples(data, bins=16)
    rng = np.random.default_rng(0)
    draws = h.sample(rng, 256)
    assert np.all(draws >= h.min - 1e-9)
    assert np.all(draws <= h.max + 1e-9)


class TestScalarVectorSampleParity:
    """The scalar ``sample()`` is the n=1 case of the vectorised draw --
    one shared inverse-CDF implementation, one shared stream contract."""

    def test_scalar_matches_vector_stream(self):
        h = _h(list(np.random.default_rng(3).gamma(3.0, 10.0, size=500)), bins=32)
        scalar_rng = np.random.default_rng(42)
        vector_rng = np.random.default_rng(42)
        scalars = [h.sample(scalar_rng) for _ in range(5)]
        vectors = [float(h.sample(vector_rng, 1)[0]) for _ in range(5)]
        assert scalars == vectors

    def test_scalar_sample_is_float(self):
        h = _h([1.0, 2.0, 3.0], bins=3)
        value = h.sample(np.random.default_rng(0))
        assert isinstance(value, float)

    def test_vector_sample_shape(self):
        h = _h([1.0, 2.0, 3.0], bins=3)
        draws = h.sample(np.random.default_rng(0), 17)
        assert draws.shape == (17,)


class TestVectorSampleEdgeCases:
    """Edge cases of the batched ``sample(size=...)`` draw, which PEVPM's
    vectorised engine leans on for whole-batch timing vectors."""

    def test_empty_histogram_unconstructible(self):
        # There is no "empty histogram" to sample from: both construction
        # paths refuse, so every histogram the batch engine sees has mass.
        with pytest.raises(ValueError):
            Histogram.from_samples([])
        with pytest.raises(ValueError):
            Histogram(np.array([0.0, 1.0]), np.array([0.0]))

    def test_size_zero_draw(self):
        h = _h([1.0, 2.0, 3.0], bins=3)
        draws = h.sample(np.random.default_rng(0), 0)
        assert draws.shape == (0,)

    def test_single_bin_draws_span_bin(self):
        h = _h([1.0, 2.0, 3.0, 4.0], bins=1)
        assert h.nbins == 1
        draws = h.sample(np.random.default_rng(7), 512)
        assert np.all(draws >= h.edges[0])
        assert np.all(draws <= h.edges[-1])
        # Uniform within the single bin: the mean sits near the centre.
        assert float(np.mean(draws)) == pytest.approx(2.5, rel=0.05)

    def test_degenerate_sub_epsilon_span(self):
        # Samples closer together than the bin resolution collapse to one
        # eps-widened bin; vector draws must stay finite and on-value.
        # A ~2-ulp span at 1.0: real (lo < hi), but linspace cannot cut
        # it into 50 strictly increasing edges.
        base = 1.0
        h = _h([base, base + 5e-16], bins=50)
        assert h.nbins == 1
        draws = h.sample(np.random.default_rng(1), 256)
        assert np.all(np.isfinite(draws))
        assert np.allclose(draws, base, rtol=1e-9)
        # Scalar and vector paths agree on the degenerate histogram too.
        s_rng, v_rng = np.random.default_rng(5), np.random.default_rng(5)
        assert h.sample(s_rng) == pytest.approx(float(h.sample(v_rng, 1)[0]), abs=0.0)

    def test_quantiles_match_quantile_loop(self):
        h = _h(list(np.random.default_rng(9).gamma(2.0, 5.0, size=400)), bins=24)
        qs = np.linspace(0.0, 1.0, 11)
        vec = h.quantiles(qs)
        assert vec == pytest.approx([h.quantile(float(q)) for q in qs])


class TestInverseCdfTable:
    """The compiled icdf() table and its edge cases.

    Contract: quantiles(), the cached icdf() closure, and the scalar
    quantile() loop agree bitwise; an empty retained-sample array is
    treated as no samples; single-bin and zero-length draws behave in
    every mode; the compiled table never rides through pickle.
    """

    def test_icdf_is_cached_and_bitwise_equal(self):
        h = _h(list(np.random.default_rng(3).lognormal(size=300)), bins=30)
        qs = np.linspace(0.0, 1.0, 257)
        f = h.icdf()
        assert h.icdf() is f
        assert np.array_equal(f(qs), h.quantiles(qs))
        assert [float(v) for v in f(qs)] == [h.quantile(float(q)) for q in qs]

    def test_binned_icdf_matches_quantile(self):
        h = _h(list(np.random.default_rng(4).gamma(2.0, 3.0, size=200)),
               bins=16, keep_samples=False)
        assert h.samples is None
        qs = np.linspace(0.0, 1.0, 33)
        assert [float(v) for v in h.icdf()(qs)] == [
            h.quantile(float(q)) for q in qs
        ]

    def test_empty_samples_array_treated_as_absent(self):
        # A document persisted with "samples": [] must not poison the
        # sample-backed quantile path with an empty sorted array.
        h = Histogram(np.array([0.0, 2.0]), np.array([4.0]),
                      samples=np.array([]))
        assert h.samples is None
        qs = np.array([0.0, 0.25, 1.0])
        expected = np.array([0.0, 0.5, 2.0])
        assert np.array_equal(h.quantiles(qs), expected)
        assert np.array_equal(h.icdf()(qs), expected)
        assert h.quantile(0.25) == 0.5
        d = Histogram.from_dict({"edges": [0.0, 2.0], "counts": [4.0],
                                 "samples": []})
        assert d.samples is None

    def test_single_bin_histogram_all_modes_agree(self):
        h = _h([3.0, 3.0, 3.0], bins=10)
        assert h.nbins == 1
        qs = np.array([0.0, 0.5, 1.0])
        assert np.array_equal(h.quantiles(qs), h.icdf()(qs))
        assert np.all(np.isfinite(h.quantiles(qs)))
        scalar = h.sample(np.random.default_rng(2))
        vector = h.sample(np.random.default_rng(2), 1)
        assert scalar == float(vector[0])

    def test_zero_length_draws(self):
        h = _h(list(np.random.default_rng(5).normal(10.0, 1.0, size=50)))
        empty = np.empty(0)
        assert h.quantiles(empty).shape == (0,)
        assert h.icdf()(empty).shape == (0,)
        assert h.sample(np.random.default_rng(0), 0).shape == (0,)

    def test_pickle_drops_compiled_table_and_rebuilds(self):
        import pickle

        h = _h(list(np.random.default_rng(6).exponential(size=120)), bins=20)
        qs = np.linspace(0.0, 1.0, 65)
        before = h.quantiles(qs)  # populates the cached closure
        clone = pickle.loads(pickle.dumps(h))
        assert clone._icdf is None
        assert np.array_equal(clone.quantiles(qs), before)


class TestDegenerateExactConstant:
    """A degenerate cell (all mass on one point) must reproduce the
    constant *exactly* -- not within floating-point noise of it.  The
    eps-widened internal edges exist only to keep binning well-formed;
    they must never leak into returned values."""

    CONST = 3.0000000000000004  # an awkward, non-round float

    def test_sample_returns_the_constant_bit_for_bit(self):
        h = _h([self.CONST] * 8)
        assert h.degenerate
        rng = np.random.default_rng(11)
        assert h.sample(rng) == self.CONST
        draws = h.sample(rng, 64)
        assert np.all(draws == self.CONST)

    def test_quantile_and_icdf_exact(self):
        h = _h([self.CONST] * 3)
        for q in (0.0, 0.25, 0.5, 1.0):
            assert h.quantile(q) == self.CONST
        qs = np.linspace(0.0, 1.0, 33)
        assert np.all(h.icdf()(qs) == self.CONST)
        assert h.icdf()(qs).shape == qs.shape

    def test_rng_stream_alignment_with_nondegenerate_path(self):
        # The degenerate fast path must consume exactly the draws the
        # general path would, so mixed degenerate/non-degenerate cells
        # in one timing model keep downstream sampling reproducible.
        h = _h([self.CONST] * 4)
        a = np.random.default_rng(7)
        h.sample(a, 10)
        b = np.random.default_rng(7)
        b.random(10)
        b.random(10)
        assert a.random() == b.random()
        # scalar draw consumes the size-1 pair
        a2 = np.random.default_rng(8)
        h.sample(a2)
        b2 = np.random.default_rng(8)
        b2.random(1)
        b2.random(1)
        assert a2.random() == b2.random()

    def test_survives_serialisation(self):
        import pickle

        h = _h([self.CONST] * 5)
        binned = Histogram.from_dict(h.to_dict())  # drops raw samples
        assert binned.degenerate
        assert binned.sample(np.random.default_rng(0)) == self.CONST
        clone = pickle.loads(pickle.dumps(h))
        assert clone.sample(np.random.default_rng(0)) == self.CONST

    def test_near_degenerate_is_not_degenerate(self):
        h = _h([1.0, 1.0 + 1e-9])
        assert not h.degenerate
