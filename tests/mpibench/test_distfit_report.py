"""Tests for parametric distribution fits and report formatting."""

import numpy as np
import pytest

from repro._tables import ascii_curve, ascii_pdf, format_table, format_time
from repro.mpibench import (
    BenchmarkResult,
    DistributionDB,
    Histogram,
    fit_histogram,
    fit_samples,
)
from repro.mpibench.distfit import ParametricFit
from repro.mpibench.report import (
    average_times_table,
    contention_ratio,
    goodput_table,
    pdf_plots,
    pdf_table,
    summary_stats,
    tail_report,
)


def _gamma_samples(n=2000, loc=100e-6, seed=0):
    rng = np.random.default_rng(seed)
    return loc + rng.gamma(3.0, 15e-6, size=n)


class TestDistFit:
    def test_fit_recovers_gamma_mean(self):
        data = _gamma_samples()
        fit = fit_samples(data)
        assert fit.mean == pytest.approx(float(np.mean(data)), rel=0.05)
        assert fit.ks < 0.1

    def test_support_min_below_data_min(self):
        data = _gamma_samples()
        fit = fit_samples(data)
        assert fit.support_min <= data.min()

    def test_sampling_from_fit(self):
        data = _gamma_samples()
        fit = fit_samples(data)
        rng = np.random.default_rng(1)
        draws = fit.sample(rng, 5000)
        assert float(np.mean(draws)) == pytest.approx(float(np.mean(data)), rel=0.1)
        scalar = fit.sample(rng)
        assert isinstance(scalar, float)

    def test_lognormal_data_prefers_lognorm(self):
        rng = np.random.default_rng(2)
        data = 50e-6 + rng.lognormal(mean=-9.0, sigma=0.8, size=3000)
        fit = fit_samples(data)
        assert fit.family == "lognorm"

    def test_degenerate_point_mass(self):
        fit = fit_samples(np.full(100, 3.0))
        assert fit.ks == 0.0
        rng = np.random.default_rng(0)
        assert fit.sample(rng) == pytest.approx(3.0, abs=1e-6)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_samples(np.array([1.0, 2.0]))

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_samples(np.array([-1.0] * 20))

    def test_fit_histogram_requires_samples(self):
        h = Histogram.from_dict(
            Histogram.from_samples(_gamma_samples(200)).to_dict()
        )
        with pytest.raises(ValueError):
            fit_histogram(h)

    def test_dict_roundtrip(self):
        fit = fit_samples(_gamma_samples())
        fit2 = ParametricFit.from_dict(fit.to_dict())
        assert fit2.family == fit.family
        assert fit2.mean == pytest.approx(fit.mean)

    def test_pdf_evaluates(self):
        fit = fit_samples(_gamma_samples())
        xs = np.linspace(fit.support_min, fit.support_min + 1e-3, 50)
        ys = fit.pdf(xs)
        assert np.all(ys >= 0)
        assert ys.max() > 0


def _tiny_db():
    rng = np.random.default_rng(3)
    db = DistributionDB()
    for nodes, scale in [(2, 1.0), (16, 1.6)]:
        hists = {
            size: Histogram.from_samples(
                scale * (100e-6 + size * 1e-8) + rng.gamma(2.0, 5e-6, size=150),
                bins=20,
            )
            for size in (0, 1024)
        }
        db.add(
            BenchmarkResult(
                op="isend", nodes=nodes, ppn=1, cluster="perseus", histograms=hists
            )
        )
    return db


class TestReport:
    def test_average_times_table_contains_all_series(self):
        db = _tiny_db()
        table = average_times_table(db, "isend", [0, 1024])
        assert "2x1" in table and "16x1" in table and "min" in table
        assert "1024" in table

    def test_contention_ratio(self):
        db = _tiny_db()
        ratio = contention_ratio(db, "isend", 1024, big=(16, 1), small=(2, 1))
        assert ratio == pytest.approx(1.6, rel=0.05)

    def test_pdf_table_and_plots(self):
        db = _tiny_db()
        r = db.result("isend", 16, 1)
        table = pdf_table(r, 1024, bins=8)
        assert "density" in table
        plots = pdf_plots(r, sizes=[0, 1024])
        assert "size=1024B" in plots
        assert "#" in plots

    def test_goodput_table(self):
        db = _tiny_db()
        table = goodput_table(db.result("isend", 2, 1))
        assert "goodput" in table
        assert "-" in table  # the size-0 row has no goodput

    def test_tail_report(self):
        db = _tiny_db()
        out = tail_report(db.result("isend", 2, 1))
        assert "outlier" in out

    def test_summary_stats(self):
        db = _tiny_db()
        stats = summary_stats(db.result("isend", 2, 1))
        assert set(stats) == {0, 1024}
        assert stats[1024]["p99"] >= stats[1024]["p50"]


class TestTables:
    def test_format_time_scales(self):
        assert format_time(2.5) == "2.5s"
        assert format_time(2.5e-3) == "2.5ms"
        assert format_time(2.5e-6) == "2.5us"
        assert format_time(2.5e-9) == "2.5ns"
        assert format_time(float("nan")) == "nan"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len({len(l) for l in lines[1:2]}) == 1

    def test_ascii_pdf_validation(self):
        with pytest.raises(ValueError):
            ascii_pdf(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            ascii_pdf(np.array([1.0]), np.array([1.0]), width=1)

    def test_ascii_pdf_renders(self):
        xs = np.linspace(0, 1e-3, 50)
        ys = np.exp(-((xs - 4e-4) ** 2) / 1e-8)
        out = ascii_pdf(xs, ys, width=40, height=6, label="L")
        assert out.startswith("L")
        assert "#" in out

    def test_ascii_curve_renders_series(self):
        xs = [1, 2, 4, 8]
        out = ascii_curve(
            xs, {"measured": [1, 2, 3, 4], "predicted": [1, 2, 2.5, 3]}, width=30, height=8
        )
        assert "m=measured" in out
        assert "p=predicted" in out

    def test_ascii_curve_validation(self):
        with pytest.raises(ValueError):
            ascii_curve([], {})
