"""Details of the benchmark runner and DB lookup corner cases."""

import numpy as np
import pytest

from repro.mpibench import BenchSettings, BenchmarkResult, DistributionDB, Histogram, MPIBench
from repro.simnet import perseus


@pytest.fixture(scope="module")
def all_results():
    bench = MPIBench(perseus(4), seed=6, settings=BenchSettings(reps=15, warmup=2))
    return bench.run_isend_all(nodes=2, ppn=1, sizes=[256, 1024])


class TestIsendAll:
    def test_both_ops_produced(self, all_results):
        assert set(all_results) == {"isend", "isend_local"}

    def test_local_times_below_one_way(self, all_results):
        """The sender is occupied for far less than the full one-way time
        for eager messages."""
        for size in (256, 1024):
            local = all_results["isend_local"].histograms[size].mean
            oneway = all_results["isend"].histograms[size].mean
            assert local < 0.5 * oneway

    def test_local_times_grow_with_size(self, all_results):
        h = all_results["isend_local"].histograms
        assert h[1024].mean > h[256].mean

    def test_sample_counts_match(self, all_results):
        for op in ("isend", "isend_local"):
            assert all_results[op].histograms[256].n == 15 * 2


class TestDbCornerCases:
    def _db_without_intra(self):
        rng = np.random.default_rng(0)
        db = DistributionDB()
        hists = {
            64: Histogram.from_samples(1e-4 + rng.gamma(2, 1e-5, 100), bins=10)
        }
        db.add(BenchmarkResult(op="isend", nodes=4, ppn=1, cluster="c",
                               histograms=hists))
        return db

    def test_intra_lookup_falls_back_to_inter_configs(self):
        """Without a single-node benchmark, intra lookups reuse what exists
        rather than failing."""
        db = self._db_without_intra()
        assert db.nearest_config("isend", 2, intra=True) == (4, 1)

    def test_inter_lookup_ignores_single_node_configs_when_possible(self):
        rng = np.random.default_rng(1)
        db = self._db_without_intra()
        db.add(
            BenchmarkResult(
                op="isend", nodes=1, ppn=2, cluster="c",
                histograms={
                    64: Histogram.from_samples(1e-5 + rng.gamma(2, 1e-6, 50))
                },
            )
        )
        assert db.nearest_config("isend", 2, intra=False) == (4, 1)
        assert db.nearest_config("isend", 2, intra=True) == (1, 2)

    def test_caches_invalidate_on_add(self):
        db = self._db_without_intra()
        assert db.nearest_config("isend", 2) == (4, 1)
        rng = np.random.default_rng(2)
        db.add(
            BenchmarkResult(
                op="isend", nodes=2, ppn=1, cluster="c",
                histograms={
                    64: Histogram.from_samples(1e-4 + rng.gamma(2, 1e-5, 50))
                },
            )
        )
        assert db.nearest_config("isend", 2) == (2, 1)

    def test_vectorised_sample_times(self):
        db = self._db_without_intra()
        rng = np.random.default_rng(3)
        values = db.sample_times("isend", 64, contention=4, rng=rng, n=500)
        h = db.histogram("isend", 64, 4, 1)
        assert values.shape == (500,)
        assert values.min() >= h.min - 1e-12
        assert values.max() <= h.max + 1e-12
        assert np.mean(values) == pytest.approx(h.mean, rel=0.05)

    def test_vectorised_interpolation(self):
        rng = np.random.default_rng(4)
        db = DistributionDB()
        hists = {
            0: Histogram.from_samples(1e-4 + rng.gamma(2, 1e-6, 200), bins=20),
            2048: Histogram.from_samples(3e-4 + rng.gamma(2, 1e-6, 200), bins=20),
        }
        db.add(BenchmarkResult(op="isend", nodes=2, ppn=1, cluster="c",
                               histograms=hists))
        values = db.sample_times("isend", 1024, contention=2, rng=rng, n=400)
        assert hists[0].mean < np.mean(values) < hists[2048].mean


class TestHistogramVectorisedQuantiles:
    def test_quantiles_match_scalar(self):
        rng = np.random.default_rng(5)
        h = Histogram.from_samples(rng.gamma(3, 1.0, 500), bins=40)
        qs = np.linspace(0, 1, 21)
        vec = h.quantiles(qs)
        scalar = np.array([h.quantile(float(q)) for q in qs])
        assert np.allclose(vec, scalar)

    def test_binned_quantiles_match_scalar(self):
        rng = np.random.default_rng(6)
        h0 = Histogram.from_samples(rng.gamma(3, 1.0, 500), bins=40)
        h = Histogram.from_dict(h0.to_dict())  # samples dropped
        qs = np.linspace(0, 1, 11)
        vec = h.quantiles(qs)
        scalar = np.array([h.quantile(float(q)) for q in qs])
        assert np.allclose(vec, scalar)
