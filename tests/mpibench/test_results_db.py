"""Tests for BenchmarkResult / DistributionDB (persistence and lookup)."""

import numpy as np
import pytest

from repro.mpibench import BenchmarkResult, DistributionDB, Histogram


def _result(op="isend", nodes=4, ppn=1, sizes=(0, 1024), centre=100e-6, cluster="perseus"):
    rng = np.random.default_rng(nodes * 1000 + ppn)
    hists = {}
    for size in sizes:
        loc = centre * (1 + size / 1024) * (nodes * ppn) ** 0.25
        hists[size] = Histogram.from_samples(
            loc + rng.gamma(3.0, loc / 10, size=200), bins=30
        )
    return BenchmarkResult(
        op=op, nodes=nodes, ppn=ppn, cluster=cluster, histograms=hists, reps=200
    )


@pytest.fixture()
def db():
    d = DistributionDB()
    for nodes, ppn in [(2, 1), (8, 1), (32, 1), (32, 2)]:
        d.add(_result(nodes=nodes, ppn=ppn))
    return d


class TestBenchmarkResult:
    def test_properties(self):
        r = _result(nodes=8, ppn=2)
        assert r.nprocs == 16
        assert r.label == "8x2"
        assert r.sizes == [0, 1024]

    def test_curves(self):
        r = _result()
        mean_curve = r.mean_curve()
        assert [s for s, _ in mean_curve] == [0, 1024]
        assert all(t > 0 for _, t in mean_curve)
        assert all(
            mn <= mean for (_, mn), (_, mean) in zip(r.min_curve(), mean_curve)
        )

    def test_dict_roundtrip(self):
        r = _result()
        r2 = BenchmarkResult.from_dict(r.to_dict(include_samples=True))
        assert r2.label == r.label
        assert r2.sizes == r.sizes
        assert r2.histograms[1024].mean == pytest.approx(r.histograms[1024].mean)


class TestDbPopulation:
    def test_add_and_query(self, db):
        assert db.ops() == ["isend"]
        assert db.configs("isend") == [(2, 1), (8, 1), (32, 1), (32, 2)]
        assert db.result("isend", 8, 1).nprocs == 8

    def test_cluster_consistency_enforced(self, db):
        with pytest.raises(ValueError):
            db.add(_result(cluster="other"))

    def test_empty_result_rejected(self):
        d = DistributionDB()
        empty = BenchmarkResult(
            op="isend", nodes=2, ppn=1, cluster="x", histograms={}
        )
        with pytest.raises(ValueError):
            d.add(empty)

    def test_missing_lookup_raises(self, db):
        with pytest.raises(KeyError):
            db.result("isend", 64, 1)
        with pytest.raises(KeyError):
            db.result("bcast", 2, 1)

    def test_len(self, db):
        assert len(db) == 4


class TestFreeze:
    def test_freeze_makes_add_raise(self, db):
        assert not db.frozen
        db.freeze()
        assert db.frozen
        with pytest.raises(RuntimeError, match="frozen"):
            db.add(_result(nodes=64))
        # Nothing slipped in.
        assert len(db) == 4

    def test_freeze_is_idempotent_and_chains(self, db):
        assert db.freeze() is db
        db.freeze()
        assert db.frozen

    def test_frozen_db_still_serves_lookups(self, db):
        fingerprint = db.fingerprint()
        db.freeze()
        assert db.result("isend", 8, 1).nprocs == 8
        assert db.fingerprint() == fingerprint

    def test_doc_roundtrip_preserves_content_not_frozen_flag(self, db):
        db.freeze()
        copy = DistributionDB.from_doc(db.to_doc(include_samples=True))
        assert copy.fingerprint() == db.fingerprint()
        # The flag is runtime state, not content.
        assert not copy.frozen


class TestLookup:
    def test_nearest_config_log_space(self, db):
        assert db.nearest_config("isend", 2) == (2, 1)
        assert db.nearest_config("isend", 7) == (8, 1)
        assert db.nearest_config("isend", 1000) == (32, 2)
        assert db.nearest_config("isend", 1) == (2, 1)

    def test_histogram_nearest_size(self, db):
        h_exact = db.histogram("isend", 1024, 8, 1)
        h_near = db.histogram("isend", 900, 8, 1)
        assert h_near is h_exact

    def test_bracketing_sizes(self, db):
        assert db.bracketing_sizes("isend", 512, 8, 1) == (0, 1024)
        assert db.bracketing_sizes("isend", 0, 8, 1) == (0, 0)
        assert db.bracketing_sizes("isend", 4096, 8, 1) == (1024, 1024)

    def test_sample_time_within_support(self, db):
        rng = np.random.default_rng(0)
        h = db.histogram("isend", 1024, 32, 2)
        for _ in range(100):
            t = db.sample_time("isend", 1024, contention=64, rng=rng, interpolate=False)
            assert h.min - 1e-12 <= t <= h.max + 1e-12

    def test_sample_time_interpolation_between_sizes(self, db):
        """Interpolated samples for a mid-size land between the bracketing
        distributions' supports."""
        rng = np.random.default_rng(1)
        lo = db.histogram("isend", 0, 8, 1)
        hi = db.histogram("isend", 1024, 8, 1)
        draws = [
            db.sample_time("isend", 512, contention=8, rng=rng, interpolate=True)
            for _ in range(300)
        ]
        assert min(draws) >= lo.min - 1e-12
        assert max(draws) <= hi.max + 1e-12
        mid_mean = np.mean(draws)
        assert lo.mean < mid_mean < hi.mean

    def test_mean_and_min_lookups(self, db):
        m = db.mean_time("isend", 1024, contention=8)
        mn = db.min_time("isend", 1024, contention=8)
        assert mn < m
        assert m == pytest.approx(db.histogram("isend", 1024, 8, 1).mean)

    def test_contention_selects_config(self, db):
        """Higher contention levels pull samples from bigger configs,
        which are slower on average."""
        low = db.mean_time("isend", 1024, contention=2)
        high = db.mean_time("isend", 1024, contention=64)
        assert high > low

    def test_empty_db_raises(self):
        with pytest.raises(KeyError):
            DistributionDB().nearest_config("isend", 4)


class TestPersistence:
    def test_save_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.json"
        db.save(path)
        loaded = DistributionDB.load(path)
        assert len(loaded) == len(db)
        assert loaded.configs("isend") == db.configs("isend")
        a = db.histogram("isend", 1024, 8, 1)
        b = loaded.histogram("isend", 1024, 8, 1)
        assert b.mean == pytest.approx(a.mean)
        assert np.allclose(b.counts, a.counts)

    def test_save_without_samples_is_smaller_but_usable(self, db, tmp_path):
        full = tmp_path / "full.json"
        lean = tmp_path / "lean.json"
        db.save(full, include_samples=True)
        db.save(lean, include_samples=False)
        assert lean.stat().st_size < full.stat().st_size
        loaded = DistributionDB.load(lean)
        rng = np.random.default_rng(0)
        t = loaded.sample_time("isend", 1024, contention=8, rng=rng)
        assert t > 0


class TestFingerprint:
    """The content hash keying the PEVPM on-disk prediction cache."""

    def test_stable_across_save_load(self, db, tmp_path):
        path = tmp_path / "db.json"
        db.save(path)
        assert DistributionDB.load(path).fingerprint() == db.fingerprint()

    def test_changes_when_results_added(self, db):
        before = db.fingerprint()
        db.add(_result(nodes=16, ppn=1))
        assert db.fingerprint() != before

    def test_differs_between_different_data(self, db):
        other = DistributionDB()
        for nodes, ppn in [(2, 1), (8, 1), (32, 1), (32, 2)]:
            other.add(_result(nodes=nodes, ppn=ppn, centre=200e-6))
        assert other.fingerprint() != db.fingerprint()


class TestStatCache:
    def test_mean_min_cached_lookups_match_direct(self, db):
        direct_mean = db.histogram("isend", 1024, 8, 1).mean
        direct_min = db.histogram("isend", 1024, 8, 1).min
        # contention 8 resolves to the 8x1 config for this fixture
        assert db.mean_time("isend", 1024, contention=8) == direct_mean
        assert db.min_time("isend", 1024, contention=8) == direct_min
        # second call served from the stat cache
        assert db.mean_time("isend", 1024, contention=8) == direct_mean
        assert ("mean", "isend", 1024, 8, False) in db._stat_cache


class TestSampleTimesContentionBracketing:
    """The vectorised ``sample_times`` must pick the same benchmark
    configuration (by contention -> nearest process count) and consume
    the random stream the same way as the scalar ``sample_time``."""

    def test_contention_selects_nearest_config(self, db):
        # Configs hold 2, 8, 32 and 64 total processes; contention picks
        # the log-space nearest (floored at 2, the smallest benchmark).
        assert db.nearest_config("isend", 2) == (2, 1)
        assert db.nearest_config("isend", 5) == (8, 1)
        assert db.nearest_config("isend", 20) == (32, 1)
        assert db.nearest_config("isend", 500) == (32, 2)

    def test_contention_moves_the_distribution(self, db):
        # The fixture's times grow with the config's process count, so a
        # higher contention level must shift the sampled mean up.
        rng = np.random.default_rng(0)
        low = db.sample_times("isend", 1024, 2, rng, 4000)
        high = db.sample_times("isend", 1024, 60, rng, 4000)
        assert float(np.mean(high)) > float(np.mean(low)) * 1.2

    def test_scalar_vector_stream_parity_interpolated(self, db):
        # At a size strictly between two measured sizes both paths draw
        # one uniform per sample and interpolate in quantile space, so n
        # scalar calls replay exactly as one n-vector call.
        s_rng, v_rng = np.random.default_rng(11), np.random.default_rng(11)
        scalars = [db.sample_time("isend", 512, 8, s_rng) for _ in range(6)]
        vector = db.sample_times("isend", 512, 8, v_rng, 6)
        assert scalars == pytest.approx(list(vector), abs=0.0)

    def test_vector_draws_at_measured_size_bracket(self, db):
        # At an exactly-measured size lo == hi: no interpolation, and the
        # draws stay inside that size's histogram support.
        hist = db.result("isend", 8, 1).histograms[1024]
        draws = db.sample_times("isend", 1024, 8, np.random.default_rng(2), 256)
        assert np.all(draws >= hist.min - 1e-12)
        assert np.all(draws <= hist.max + 1e-12)

    def test_vector_draw_deterministic(self, db):
        a = db.sample_times("isend", 512, 8, np.random.default_rng(3), 32)
        b = db.sample_times("isend", 512, 8, np.random.default_rng(3), 32)
        assert np.array_equal(a, b)


class TestDescribe:
    """``describe()`` is the service's /distributions query path: it must
    report exactly what a ``sample_time`` lookup would resolve to."""

    def test_reports_lookup_resolution(self, db):
        doc = db.describe("isend", 700, contention=8)
        assert doc["op"] == "isend"
        assert doc["cluster"] == "perseus"
        assert doc["requested_size"] == 700
        assert doc["config"] == "8x1"  # contention=8 resolves to 8x1
        assert (doc["nodes"], doc["ppn"]) == (8, 1)
        assert doc["bracketing_sizes"] == [0, 1024]
        assert doc["nearest_size"] == 1024
        assert doc["samples"] == 200
        assert 0 < doc["min"] <= doc["mean"] <= doc["max"]
        assert doc["db_fingerprint"] == db.fingerprint()

    def test_quantiles_are_monotone(self, db):
        doc = db.describe("isend", 1024, contention=8)
        values = [doc["quantiles"][f"{q:g}"] for q in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)]
        assert values == sorted(values)
        assert doc["min"] <= values[0] and values[-1] <= doc["max"]

    def test_exact_size_brackets_to_itself(self, db):
        doc = db.describe("isend", 1024, contention=8)
        assert doc["bracketing_sizes"] == [1024, 1024]
        assert doc["nearest_size"] == 1024
        assert doc["mean"] == pytest.approx(db.mean_time("isend", 1024, contention=8))

    def test_unknown_op_raises(self, db):
        with pytest.raises(KeyError):
            db.describe("bcast", 1024, contention=8)
