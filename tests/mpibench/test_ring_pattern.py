"""Tests for the ring (neighbour) benchmark pattern."""

import numpy as np
import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm.timing import DistributionTiming
from repro.simnet import perseus


@pytest.fixture(scope="module")
def ring_db():
    bench = MPIBench(perseus(16), seed=7, settings=BenchSettings(reps=25, warmup=3))
    db = bench.sweep_isend([(2, 1), (8, 1)], sizes=[0, 1024])
    return bench.sweep_isend([(8, 1), (16, 1)], sizes=[0, 1024], db=db, pattern="ring")


class TestRingDriver:
    def test_ops_are_suffixed(self, ring_db):
        assert "isend:ring" in ring_db.ops()
        assert "isend_local:ring" in ring_db.ops()
        assert ring_db.configs("isend:ring") == [(8, 1), (16, 1)]

    def test_sample_counts(self, ring_db):
        # Every rank receives two messages per rep: 25 reps x 8 ranks x 2.
        h = ring_db.result("isend:ring", 8, 1).histograms[1024]
        assert h.n == 25 * 8 * 2

    def test_ring_needs_three_ranks(self):
        bench = MPIBench(perseus(4), seed=1, settings=BenchSettings(reps=5, warmup=1))
        with pytest.raises(Exception):
            bench.run_isend_all(2, 1, [64], pattern="ring")

    def test_unknown_pattern_rejected(self):
        bench = MPIBench(perseus(4), seed=1)
        with pytest.raises(ValueError):
            bench.run_isend_all(4, 1, [64], pattern="spiral")

    def test_ring_load_exceeds_pairs_load(self, ring_db):
        """Every rank keeps two messages in flight under the ring pattern,
        so at the same machine size its distributions sit above the
        pairwise ones."""
        ring = ring_db.result("isend:ring", 8, 1).histograms[1024]
        pairs = ring_db.result("isend", 8, 1).histograms[1024]
        assert ring.mean > pairs.mean


class TestPatternTiming:
    def test_pattern_selects_ring_ops(self, ring_db):
        t = DistributionTiming(ring_db, pattern="ring")
        assert t._oneway_op == "isend:ring"
        assert "ring" in t.name

    def test_missing_pattern_falls_back_to_pairs(self, ring_db):
        t = DistributionTiming(ring_db, pattern="torus")
        assert t._oneway_op == "isend"

    def test_ring_sampling_draws_from_ring_data(self, ring_db):
        rng = np.random.default_rng(0)
        t_ring = DistributionTiming(ring_db, pattern="ring")
        t_pairs = DistributionTiming(ring_db)
        ring_mean = np.mean(
            [t_ring.one_way_time(1024, 8, rng) for _ in range(300)]
        )
        pairs_mean = np.mean(
            [t_pairs.one_way_time(1024, 8, rng) for _ in range(300)]
        )
        assert ring_mean > pairs_mean
