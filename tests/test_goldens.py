"""Golden-model regression suite.

One canonical prediction document is pinned under ``tests/goldens/``
for every registered workload x NIC serialisation mode, produced from a
fixed-seed benchmark campaign with a tiny run count.  Each test
evaluates the workload on all three engines -- the scalar interpreter,
the batched (vectorised) virtual machine, and the compiled static
schedules -- asserts the three agree bit-for-bit, and byte-compares the
resulting document against the pinned golden.

Any change to the predicted numbers -- an engine regression, a timing
model edit, a collective lowering tweak -- fails here first, with a
diffable JSON document.  Intentional changes are re-pinned with::

    python scripts/regen_goldens.py
    # or: pytest tests/test_goldens.py --regen-goldens
"""

import json
from pathlib import Path

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.service.records import MODELS
from repro.simnet import perseus
from repro.trace_import import sample_trace

GOLDEN_DIR = Path(__file__).parent / "goldens"

SPEC = perseus(16)

#: model name -> (nprocs, parameter overrides on the registry defaults)
WORKLOADS = {
    "jacobi": (8, {"iterations": 5, "xsize": 64}),
    "fft": (8, {"n_points": 256}),
    "taskfarm": (8, {"n_tasks": 8}),
    "halo": (8, {"iterations": 2, "nx": 8}),
    "amg": (8, {"iterations": 1, "nx": 8, "coarse_nx": 4}),
    "imported": (4, {}),
}

NIC_MODES = ["off", "tx", "txrx"]

RUNS = 2
SEED = 7

#: Engine lanes.  Within a lane the interpreter and the compiled static
#: schedules must agree bit-for-bit; *across* lanes (per-run scalar vs
#: lockstep batched) results are statistically equivalent, not
#: bit-identical, so each lane is pinned separately.
LANES = {
    "scalar": False,  # vector_runs
    "batched": True,
}


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def build_workload(name):
    """(model, vm_params, params, nprocs) for one golden workload."""
    nprocs, overrides = WORKLOADS[name]
    if name == "imported":
        program = sample_trace(nprocs=nprocs)
        return program.model(), None, {"program": program.fingerprint}, nprocs
    defaults, builder = MODELS[name]
    params = dict(defaults, **overrides)
    model, vm_params = builder(SPEC, params)
    return model, vm_params, params, nprocs


def golden_doc(db, name, nic):
    """The canonical document for one workload x NIC mode, evaluated on
    every engine (asserting cross-engine bit-identity on the way)."""
    model, vm_params, params, nprocs = build_workload(name)
    timing = timing_from_db(db, mode="distribution", nprocs=nprocs)
    lanes = {}
    for lane, vector_runs in LANES.items():
        times = None
        for compiled in (False, True):
            pred = predict(
                model,
                nprocs,
                timing,
                runs=RUNS,
                seed=SEED,
                params=vm_params,
                nic_serialisation=nic,
                vector_runs=vector_runs,
                compiled=compiled,
            )
            if times is None:
                times = list(pred.times)
            else:
                assert list(pred.times) == times, (
                    f"{name}/{nic}/{lane}: compiled schedules diverge "
                    f"from the interpreter"
                )
        lanes[lane] = times
    return {
        "model": name,
        "model_params": params,
        "nprocs": nprocs,
        "runs": RUNS,
        "seed": SEED,
        "nic_serialisation": nic,
        "db_fingerprint": db.fingerprint(),
        "times": lanes["scalar"],
        "vector_times": lanes["batched"],
        "mean_time": sum(lanes["scalar"]) / len(lanes["scalar"]),
    }


def render(doc) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("nic", NIC_MODES)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_golden(db, name, nic, request):
    doc = golden_doc(db, name, nic)
    path = GOLDEN_DIR / f"{name}-{nic}.json"
    if request.config.getoption("--regen-goldens"):
        path.write_text(render(doc))
        return
    assert path.exists(), (
        f"missing golden {path.name}; regenerate with "
        f"'python scripts/regen_goldens.py'"
    )
    assert render(doc) == path.read_text(), (
        f"{path.name} drifted from the current prediction; if the "
        f"change is intentional, re-pin with "
        f"'python scripts/regen_goldens.py'"
    )


def test_no_stale_goldens():
    """Every pinned document corresponds to a registered workload/NIC
    pair -- renames must clean up after themselves."""
    expected = {
        f"{name}-{nic}.json" for name in WORKLOADS for nic in NIC_MODES
    }
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected
