"""Property-based tests for sub-communicator isolation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import ideal_cluster
from repro.smpi import run_program


@given(
    nprocs=st.integers(min_value=2, max_value=8),
    colors=st.lists(st.integers(0, 2), min_size=8, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_split_partitions_world(nprocs, colors):
    """Property: split() partitions the world -- every rank lands in
    exactly one group, group members agree on membership, and sub-rank
    order follows world rank for equal keys."""

    def program(comm):
        sub = yield from comm.split(color=colors[comm.rank])
        return colors[comm.rank], sub.rank, sub.world_ranks

    r = run_program(ideal_cluster(8), program, nprocs=nprocs)
    by_color: dict[int, list[int]] = {}
    for world_rank in range(nprocs):
        color, sub_rank, members = r.returns[world_rank]
        # Everyone in the group reports identical membership.
        expected = [w for w in range(nprocs) if colors[w] == color]
        assert members == expected
        assert members[sub_rank] == world_rank


@given(
    nprocs=st.integers(min_value=4, max_value=8),
    payload_seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_group_allreduce_isolation(nprocs, payload_seed):
    """Property: an allreduce inside each colour group sums exactly that
    group's contributions, for any machine size."""

    def program(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        value = payload_seed + comm.rank
        total = yield from sub.allreduce(8, payload=value, op=lambda a, b: a + b)
        return total

    r = run_program(ideal_cluster(8), program, nprocs=nprocs)
    for w in range(nprocs):
        group = [x for x in range(nprocs) if x % 2 == w % 2]
        expected = sum(payload_seed + x for x in group)
        assert r.returns[w] == expected
