"""Tests for point-to-point MPI semantics on the simulated cluster."""

import pytest

from repro.simnet import ideal_cluster, perseus
from repro.smpi import (
    ANY_SOURCE,
    ANY_TAG,
    CommAbort,
    RankError,
    TagError,
    run_program,
)


def run2(program, spec=None, nprocs=2, **kw):
    return run_program(spec or ideal_cluster(max(4, nprocs)), program, nprocs=nprocs, **kw)


class TestBasicSendRecv:
    def test_payload_and_status_roundtrip(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(512, dest=1, tag=9, payload={"k": 1})
                return None
            payload, st = yield from comm.recv(source=0, tag=9)
            return payload, st

        r = run2(program)
        payload, st = r.returns[1]
        assert payload == {"k": 1}
        assert st.source == 0 and st.tag == 9 and st.size == 512

    def test_zero_byte_message(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(0, dest=1)
                return None
            _, st = yield from comm.recv(source=0)
            return st.size

        assert run2(program).returns[1] == 0

    def test_any_source_any_tag(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(16, dest=1, tag=42, payload="x")
                return None
            payload, st = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return payload, st.source, st.tag

        assert run2(program).returns[1] == ("x", 0, 42)

    def test_send_takes_positive_time(self):
        def program(comm):
            t0 = comm.true_time()
            if comm.rank == 0:
                yield from comm.send(1024, dest=1)
            else:
                yield from comm.recv(source=0)
            return comm.true_time() - t0

        r = run2(program)
        assert r.returns[0] > 0
        assert r.returns[1] > r.returns[0]  # receiver finishes after sender

    def test_tag_selectivity(self):
        """A receive for tag 2 must not match a tag-1 message even if that
        message arrived first."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(8, dest=1, tag=1, payload="one")
                yield from comm.send(8, dest=1, tag=2, payload="two")
                return None
            p2, _ = yield from comm.recv(source=0, tag=2)
            p1, _ = yield from comm.recv(source=0, tag=1)
            return (p1, p2)

        assert run2(program).returns[1] == ("one", "two")

    def test_message_order_preserved_same_tag(self):
        """Non-overtaking: same source, same tag arrive in send order."""

        def program(comm):
            if comm.rank == 0:
                for i in range(10):
                    yield from comm.send(8, dest=1, tag=0, payload=i)
                return None
            seen = []
            for _ in range(10):
                p, _ = yield from comm.recv(source=0, tag=0)
                seen.append(p)
            return seen

        # Run on perseus (with jitter) to exercise the pair-FIFO clamp.
        r = run2(program, spec=perseus(4), seed=11)
        assert r.returns[1] == list(range(10))


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def program(comm):
            if comm.rank == 0:
                req = yield from comm.isend(256, dest=1, payload="hi")
                yield from comm.wait(req)
                return None
            req = yield from comm.irecv(source=0)
            payload, st = yield from comm.wait(req)
            return payload

        assert run2(program).returns[1] == "hi"

    def test_eager_isend_completes_locally(self):
        """An eager isend's request is complete before any receive is
        posted (the message is buffered)."""

        def program(comm):
            if comm.rank == 0:
                req = yield from comm.isend(1024, dest=1)
                complete = comm.test(req)
                yield from comm.wait(req)
                return complete
            yield from comm.compute(1.0)  # post the recv very late
            yield from comm.recv(source=0)
            return None

        assert run2(program).returns[0] is True

    def test_rendezvous_isend_waits_for_receiver(self):
        """A rendezvous send cannot complete until the receiver posts."""

        def program(comm):
            if comm.rank == 0:
                req = yield from comm.isend(65536, dest=1)
                early = comm.test(req)
                yield from comm.wait(req)
                return early, comm.true_time()
            yield from comm.compute(0.5)
            yield from comm.recv(source=0)
            return None

        r = run2(program)
        early, finish = r.returns[0]
        assert early is False
        assert finish > 0.5  # sender blocked past the receiver's delay

    def test_waitall_orders_results(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(3):
                    yield from comm.send(8, dest=1, tag=i, payload=i * 100)
                return None
            reqs = []
            for i in range(3):
                req = yield from comm.irecv(source=0, tag=i)
                reqs.append(req)
            results = yield from comm.waitall(reqs)
            return [p for p, _st in results]

        assert run2(program).returns[1] == [0, 100, 200]

    def test_double_wait_rejected(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(8, dest=1)
                return None
            req = yield from comm.irecv(source=0)
            yield from comm.wait(req)
            with pytest.raises(ValueError):
                yield from comm.wait(req)
            return True

        assert run2(program).returns[1] is True

    def test_iprobe_sees_buffered_message(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(128, dest=1, tag=4)
                return None
            yield from comm.compute(0.1)  # let the message arrive
            st = comm.iprobe(source=0, tag=4)
            missing = comm.iprobe(source=0, tag=5)
            yield from comm.recv(source=0, tag=4)
            return (st.size if st else None, missing)

        assert run2(program).returns[1] == (128, None)


class TestSendrecvAndExchange:
    def test_sendrecv_no_deadlock_head_to_head(self):
        def program(comm):
            other = 1 - comm.rank
            payload, st = yield from comm.sendrecv(
                1024, dest=other, source=other, payload=f"from{comm.rank}"
            )
            return payload

        r = run2(program)
        assert r.returns == ["from1", "from0"]

    def test_large_sendrecv_no_deadlock(self):
        """Rendezvous-sized head-to-head exchange must not deadlock (both
        sides post the receive before blocking in the send)."""

        def program(comm):
            other = 1 - comm.rank
            payload, _ = yield from comm.sendrecv(
                65536, dest=other, source=other, payload=comm.rank
            )
            return payload

        r = run2(program)
        assert r.returns == [1, 0]


class TestProtocolBoundary:
    def test_eager_vs_rendezvous_latency_jump(self):
        """Crossing the 16 KB threshold adds the RTS/CTS round trip: the
        per-byte-normalised time jumps at the knee (paper Figure 2)."""

        def make(size):
            def program(comm):
                if comm.rank == 0:
                    t0 = comm.true_time()
                    yield from comm.send(size, dest=1)
                    return None
                yield from comm.recv(source=0)
                return comm.true_time()

            return program

        spec = ideal_cluster(2)
        below = run2(make(16 * 1024), spec=spec).returns[1]
        above = run2(make(16 * 1024 + 1), spec=spec).returns[1]
        # 1 extra byte of payload but two extra control messages:
        extra = above - below
        assert extra > 2 * 50e-6  # much larger than 1 byte of bandwidth

    def test_protocol_threshold_is_configurable(self):
        spec = ideal_cluster(2).with_(eager_threshold=1024)

        def program(comm):
            if comm.rank == 0:
                req = yield from comm.isend(2048, dest=1)  # now rendezvous
                return comm.test(req)
            yield from comm.compute(0.01)
            yield from comm.recv(source=0)
            return None

        r = run_program(spec, program, nprocs=2)
        assert r.returns[0] is False


class TestValidation:
    def test_bad_dest_rank(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(RankError):
                    yield from comm.send(8, dest=5)
            return True

        assert run2(program).returns[0] is True

    def test_bad_tag(self):
        def program(comm):
            with pytest.raises(TagError):
                yield from comm.isend(8, dest=1 - comm.rank, tag=-3)
            if False:
                yield
            return True

        assert run2(program).returns == [True, True]

    def test_negative_size(self):
        def program(comm):
            with pytest.raises(ValueError):
                yield from comm.isend(-1, dest=1 - comm.rank)
            if False:
                yield
            return True

        assert run2(program).returns == [True, True]

    def test_negative_compute_rejected(self):
        def program(comm):
            with pytest.raises(ValueError):
                yield from comm.compute(-1.0)
            if False:
                yield
            return True

        assert run2(program).returns == [True, True]


class TestClocks:
    def test_local_clocks_disagree_but_true_time_agrees(self):
        def program(comm):
            yield from comm.barrier()
            return comm.clock(), comm.true_time()

        r = run_program(perseus(4), program, nprocs=2, seed=1)
        (l0, t0), (l1, t1) = r.returns
        # Ranks finish the barrier at slightly different true times but
        # their *local* clocks disagree far more than that gap.
        assert abs(l0 - l1) > 1e-4
        assert abs(t0 - t1) < 1e-2

    def test_perfect_clocks_agree_with_truth(self):
        def program(comm):
            yield from comm.compute(0.5)
            return comm.clock(), comm.true_time()

        r = run_program(perseus(4), program, nprocs=2, seed=1, perfect_clocks=True)
        for local, true in r.returns:
            assert local == pytest.approx(true)


class TestMaxTime:
    def test_overrunning_job_aborts(self):
        def program(comm):
            yield from comm.compute(10.0)
            return None

        with pytest.raises(CommAbort):
            run_program(ideal_cluster(2), program, nprocs=2, max_time=1.0)
