"""Failure injection: how transport-level failures surface in MPI jobs."""

import pytest

from repro.simnet import TransmissionAborted, perseus
from repro.simnet.topology import TcpModel
from repro.smpi import run_program


def _doomed_spec(max_retransmits=2):
    """100% packet loss: every transfer exhausts its retransmissions."""
    return perseus(4).with_(
        tcp=TcpModel(
            loss_max_probability=1.0,
            loss_backlog_threshold=-1.0,
            loss_backlog_scale=1e-12,
            max_retransmits=max_retransmits,
            rto_jitter=0.0,
        )
    )


class TestTransportFailures:
    def test_dead_network_aborts_the_job(self):
        """A message that exhausts retransmission attempts kills the run,
        like a TCP connection reset aborting an MPI job."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1024, dest=1)
            else:
                yield from comm.recv(source=0)
            return True

        with pytest.raises(TransmissionAborted) as exc:
            run_program(_doomed_spec(), program, nprocs=2)
        assert exc.value.attempts == 3  # initial + 2 retransmits

    def test_failure_cost_includes_all_rtos(self):
        """Before giving up, the sender stalls max_retransmits RTOs --
        verify the failure does not happen instantly."""
        times = {}

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1024, dest=1)
            else:
                yield from comm.recv(source=0)
            return None

        spec = _doomed_spec(max_retransmits=3)
        sim_time = 0.0
        try:
            run_program(spec, program, nprocs=2)
        except TransmissionAborted:
            pass
        # Re-run at engine level to inspect the time of failure.
        from repro.smpi.runtime import MpiRun

        job = MpiRun(spec, nprocs=2)
        with pytest.raises(TransmissionAborted):
            job.run(program)
        # 3 RTOs of 200 ms were paid before the abort.
        assert job.sim.now >= 3 * spec.tcp.rto

    def test_intra_node_messages_survive_a_dead_network(self):
        """Shared-memory messages never touch TCP, so a job confined to
        one node completes even with a 100% lossy fabric."""

        def program(comm):
            other = 1 - comm.rank
            payload, _ = yield from comm.sendrecv(
                1024, dest=other, source=other, payload=comm.rank
            )
            return payload

        r = run_program(_doomed_spec(), program, nprocs=2, ppn=2)
        assert r.returns == [1, 0]

    def test_collectives_abort_on_dead_network(self):
        def program(comm):
            yield from comm.barrier()
            return True

        with pytest.raises(TransmissionAborted):
            run_program(_doomed_spec(), program, nprocs=4)

    def test_marginal_network_recovers_with_enough_retries(self):
        """50% loss with a generous retry budget: slow but successful."""
        spec = perseus(4).with_(
            tcp=TcpModel(
                loss_max_probability=0.5,
                loss_backlog_threshold=-1.0,
                loss_backlog_scale=1e-12,
                max_retransmits=40,
                rto_jitter=0.0,
            )
        )

        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(256, dest=1, tag=i, payload=i)
                return None
            got = []
            for i in range(5):
                p, st = yield from comm.recv(source=0, tag=i)
                got.append((p, st.attempts))
            return got

        r = run_program(spec, program, nprocs=2, seed=1)
        payloads = [p for p, _a in r.returns[1]]
        attempts = [a for _p, a in r.returns[1]]
        assert payloads == [0, 1, 2, 3, 4]  # order survives retransmission
        assert max(attempts) > 1  # some message really was retried
