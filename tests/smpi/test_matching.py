"""Tests for the message-matching engine (posted/unexpected queues)."""

from repro.smpi.matching import Envelope, EnvelopeKind, Mailbox, PostedRecv
from repro.smpi.status import ANY_SOURCE, ANY_TAG


def _env(source=0, tag=0, size=8, kind=EnvelopeKind.EAGER):
    return Envelope(kind=kind, source=source, tag=tag, size=size)


class TestPostedRecvAccepts:
    def test_exact_match(self):
        recv = PostedRecv(source=1, tag=2)
        assert recv.accepts(_env(source=1, tag=2))

    def test_source_mismatch(self):
        recv = PostedRecv(source=1, tag=2)
        assert not recv.accepts(_env(source=3, tag=2))

    def test_tag_mismatch(self):
        recv = PostedRecv(source=1, tag=2)
        assert not recv.accepts(_env(source=1, tag=9))

    def test_any_source(self):
        recv = PostedRecv(source=ANY_SOURCE, tag=2)
        assert recv.accepts(_env(source=7, tag=2))

    def test_any_tag(self):
        recv = PostedRecv(source=1, tag=ANY_TAG)
        assert recv.accepts(_env(source=1, tag=99))

    def test_double_wildcard(self):
        recv = PostedRecv(source=ANY_SOURCE, tag=ANY_TAG)
        assert recv.accepts(_env(source=5, tag=5))


class TestMailbox:
    def test_deliver_to_posted(self):
        box = Mailbox(0)
        recv = PostedRecv(source=1, tag=0)
        assert box.post(recv) is None
        matched = box.deliver(_env(source=1))
        assert matched is recv
        assert recv.matched
        assert not box.has_pending_state

    def test_deliver_unmatched_parks_in_unexpected(self):
        box = Mailbox(0)
        env = _env(source=2)
        assert box.deliver(env) is None
        assert box.unexpected == [env]
        assert box.n_unexpected == 1

    def test_post_finds_unexpected(self):
        box = Mailbox(0)
        env = _env(source=2, tag=3)
        box.deliver(env)
        recv = PostedRecv(source=2, tag=3)
        assert box.post(recv) is env
        assert box.unexpected == []

    def test_unexpected_matched_in_arrival_order(self):
        box = Mailbox(0)
        first = _env(source=1, tag=0, size=1)
        second = _env(source=1, tag=0, size=2)
        box.deliver(first)
        box.deliver(second)
        recv = PostedRecv(source=1, tag=0)
        assert box.post(recv) is first

    def test_posted_matched_in_post_order(self):
        box = Mailbox(0)
        r1 = PostedRecv(source=ANY_SOURCE, tag=ANY_TAG)
        r2 = PostedRecv(source=ANY_SOURCE, tag=ANY_TAG)
        box.post(r1)
        box.post(r2)
        assert box.deliver(_env()) is r1
        assert box.deliver(_env()) is r2

    def test_specific_recv_skips_non_matching_unexpected(self):
        box = Mailbox(0)
        box.deliver(_env(source=5, tag=1))
        recv = PostedRecv(source=6, tag=1)
        assert box.post(recv) is None  # source 5 doesn't match 6
        assert box.posted == [recv]
        assert len(box.unexpected) == 1

    def test_cancel(self):
        box = Mailbox(0)
        recv = PostedRecv(source=1, tag=0)
        box.post(recv)
        assert box.cancel(recv)
        assert not box.cancel(recv)  # second cancel is a no-op
        assert box.deliver(_env(source=1)) is None  # nothing posted now

    def test_probe_wildcards(self):
        box = Mailbox(0)
        box.deliver(_env(source=4, tag=7, size=77))
        assert box.probe(ANY_SOURCE, ANY_TAG).size == 77
        assert box.probe(4, 7) is not None
        assert box.probe(5, ANY_TAG) is None
        assert box.probe(4, 8) is None

    def test_probe_does_not_consume(self):
        box = Mailbox(0)
        box.deliver(_env(source=4, tag=7))
        box.probe(4, 7)
        assert len(box.unexpected) == 1

    def test_has_pending_state(self):
        box = Mailbox(0)
        assert not box.has_pending_state
        box.post(PostedRecv(source=0, tag=0))
        assert box.has_pending_state
