"""Tests for the MPI job launcher: placement, results, failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import ideal_cluster, perseus
from repro.smpi import MpiDeadlock, MpiRun, run_program


class TestPlacement:
    def test_block_placement(self):
        job = MpiRun(perseus(8), nprocs=8, ppn=2)
        assert [job.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_one_per_node(self):
        job = MpiRun(perseus(8), nprocs=4, ppn=1)
        assert [job.node_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_rank_out_of_range(self):
        job = MpiRun(perseus(8), nprocs=4)
        with pytest.raises(ValueError):
            job.node_of(4)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            MpiRun(perseus(2), nprocs=5, ppn=2)

    def test_ppn_exceeding_processors_rejected(self):
        with pytest.raises(ValueError):
            MpiRun(perseus(2), nprocs=2, ppn=3)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            MpiRun(perseus(2), nprocs=0)

    def test_comm_exposes_node(self):
        def program(comm):
            if False:
                yield
            return comm.node

        r = run_program(perseus(4), program, nprocs=8, ppn=2)
        assert r.returns == [0, 0, 1, 1, 2, 2, 3, 3]


class TestRunResult:
    def test_returns_and_finish_times(self):
        def program(comm):
            yield from comm.compute(0.1 * (comm.rank + 1))
            return comm.rank * 10

        r = run_program(ideal_cluster(4), program, nprocs=3)
        assert r.returns == [0, 10, 20]
        assert r.finish_times == pytest.approx([0.1, 0.2, 0.3])
        assert r.elapsed == pytest.approx(0.3)
        assert r.makespan == r.elapsed

    def test_monitor_attached(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1024, dest=1)
            else:
                yield from comm.recv(source=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.monitor is not None
        assert r.monitor.total_bytes() > 0

    def test_reproducible_with_same_seed(self):
        def program(comm):
            other = 1 - comm.rank
            yield from comm.sendrecv(4096, dest=other, source=other)
            return comm.true_time()

        a = run_program(perseus(4), program, nprocs=2, seed=7)
        b = run_program(perseus(4), program, nprocs=2, seed=7)
        c = run_program(perseus(4), program, nprocs=2, seed=8)
        assert a.returns == b.returns
        assert a.returns != c.returns


class TestFailures:
    def test_deadlock_reports_blocked_ranks(self):
        def program(comm):
            # Everyone receives from the left neighbour; nobody sends.
            yield from comm.recv(source=(comm.rank - 1) % comm.size)
            return None

        with pytest.raises(MpiDeadlock) as exc:
            run_program(ideal_cluster(4), program, nprocs=3)
        assert exc.value.blocked == [0, 1, 2]
        assert "posted" in str(exc.value)

    def test_partial_deadlock(self):
        def program(comm):
            if comm.rank == 0:
                return "done"
            yield from comm.recv(source=0, tag=99)  # never sent
            return None

        with pytest.raises(MpiDeadlock) as exc:
            run_program(ideal_cluster(4), program, nprocs=2)
        assert exc.value.blocked == [1]

    def test_rank_exception_propagates(self):
        def program(comm):
            yield from comm.compute(0.1)
            if comm.rank == 1:
                raise RuntimeError("rank 1 crashed")
            yield from comm.compute(10.0)
            return None

        with pytest.raises(RuntimeError, match="rank 1 crashed"):
            run_program(ideal_cluster(4), program, nprocs=2)

    def test_mismatched_sizes_run_fine(self):
        """MPI doesn't verify size agreement between send and recv; the
        simulator shouldn't either (the status reports the sent size)."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(100, dest=1)
                return None
            _, st = yield from comm.recv(source=0)
            return st.size

        assert run_program(ideal_cluster(4), program, nprocs=2).returns[1] == 100


@given(
    nprocs=st.integers(min_value=2, max_value=6),
    plan=st.lists(
        st.tuples(
            st.integers(0, 5),  # sender (mod nprocs)
            st.integers(0, 5),  # receiver offset (mod nprocs-1, never self)
            st.integers(0, 4096),  # size
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=30, deadline=None)
def test_random_message_plans_complete(nprocs, plan):
    """Property: any consistent plan of matching send/recv pairs completes
    without deadlock and delivers every payload."""
    messages = []
    for s, doff, size in plan:
        src = s % nprocs
        dst = (src + 1 + doff % (nprocs - 1)) % nprocs
        messages.append((src, dst, size))

    def program(comm):
        # Post all receives first (nonblocking), then all sends: this is
        # deadlock-free for any plan.
        my_recvs = [
            (i, src)
            for i, (src, dst, _size) in enumerate(messages)
            if dst == comm.rank
        ]
        reqs = []
        for i, src in my_recvs:
            req = yield from comm.irecv(source=src, tag=i)
            reqs.append(req)
        for i, (src, dst, size) in enumerate(messages):
            if src == comm.rank:
                yield from comm.isend(size, dest=dst, tag=i, payload=i)
        results = yield from comm.waitall(reqs)
        return sorted(p for p, _st in results)

    r = run_program(ideal_cluster(8), program, nprocs=nprocs, seed=3)
    got = [p for rank in r.returns for p in rank]
    assert sorted(got) == list(range(len(messages)))
