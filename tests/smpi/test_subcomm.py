"""Tests for MPI_Comm_split sub-communicators."""

import pytest

from repro.simnet import ideal_cluster, perseus
from repro.smpi import RankError, TagError, run_program


def run(program, nprocs, spec=None, **kw):
    return run_program(spec or ideal_cluster(8), program, nprocs=nprocs, **kw)


class TestSplit:
    def test_even_odd_groups(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            return sub.rank, sub.size, sub.world_ranks

        r = run(program, 6)
        rank0, size0, world0 = r.returns[0]
        assert (rank0, size0, world0) == (0, 3, [0, 2, 4])
        rank3, size3, world3 = r.returns[3]
        assert (rank3, size3, world3) == (1, 3, [1, 3, 5])

    def test_key_reorders_ranks(self):
        def program(comm):
            # Reverse ordering via descending keys.
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        r = run(program, 4)
        assert r.returns == [3, 2, 1, 0]

    def test_opt_out_returns_none(self):
        def program(comm):
            sub = yield from comm.split(color=None if comm.rank == 1 else 7)
            return None if sub is None else sub.size

        r = run(program, 3)
        assert r.returns == [2, None, 2]

    def test_single_member_communicator(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank)  # everyone alone
            v = yield from sub.allreduce(8, payload=comm.rank, op=lambda a, b: a + b)
            return (sub.size, v)

        r = run(program, 3)
        assert r.returns == [(1, 0), (1, 1), (1, 2)]


class TestSubCommOperations:
    def test_p2p_with_translated_status(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            if sub.size < 2:
                return None
            if sub.rank == 0:
                yield from sub.send(128, dest=1, tag=9, payload="x")
                return None
            if sub.rank == 1:
                payload, st = yield from sub.recv(source=0, tag=9)
                return payload, st.source, st.tag, st.size
            return None

        r = run(program, 4)
        assert r.returns[3] == ("x", 0, 9, 128)  # world rank 3 = sub rank 1 of odds

    def test_collectives_stay_inside_groups(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            total = yield from sub.allreduce(8, payload=comm.rank, op=lambda a, b: a + b)
            gathered = yield from sub.gather(16, root=0, payload=comm.rank)
            return total, gathered

        r = run(program, 6, spec=perseus(8), seed=3)
        evens = [0, 2, 4]
        odds = [1, 3, 5]
        for w in evens:
            assert r.returns[w][0] == sum(evens)
        for w in odds:
            assert r.returns[w][0] == sum(odds)
        assert r.returns[0][1] == evens
        assert r.returns[1][1] == odds

    def test_concurrent_subcomm_traffic_does_not_cross(self):
        """Same tags used simultaneously in two sub-communicators must not
        cross-match -- the isolation property."""

        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            # Everyone exchanges tag-0 messages with their sub-neighbour.
            other = (sub.rank + 1) % sub.size
            payload, _st = yield from sub.sendrecv(
                64, dest=other, source=(sub.rank - 1) % sub.size,
                payload=("grp", comm.rank % 2),
            )
            return payload

        r = run(program, 8)
        for w, (label, group) in enumerate(r.returns):
            assert label == "grp"
            assert group == w % 2  # never a message from the other colour

    def test_pairwise_split(self):
        def program(comm):
            half = yield from comm.split(color=comm.rank // 2)
            return half.size

        r = run(program, 4)
        assert r.returns == [2, 2, 2, 2]

    def test_stats_shared_with_world(self):
        def program(comm):
            sub = yield from comm.split(color=0)
            if sub.rank == 0:
                yield from sub.send(256, dest=1)
            elif sub.rank == 1:
                yield from sub.recv(source=0)
            return comm.stats.bytes_sent

        r = run(program, 2)
        assert r.returns[0] >= 256  # split traffic + the send


class TestValidation:
    def test_bad_dest_rank(self):
        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            with pytest.raises(RankError):
                yield from sub.isend(8, dest=sub.size)
            yield from comm.barrier()
            return True

        assert run(program, 4).returns == [True] * 4

    def test_any_tag_rejected(self):
        from repro.smpi import ANY_TAG

        def program(comm):
            sub = yield from comm.split(color=0)
            with pytest.raises(TagError):
                yield from sub.irecv(source=0, tag=ANY_TAG)
            yield from comm.barrier()
            return True

        assert run(program, 2).returns == [True, True]

    def test_oversized_tag_rejected(self):
        def program(comm):
            sub = yield from comm.split(color=0)
            with pytest.raises(TagError):
                yield from sub.isend(8, dest=(sub.rank + 1) % sub.size, tag=1 << 21)
            yield from comm.barrier()
            return True

        assert run(program, 2).returns == [True, True]
