"""Tests for synchronous sends (MPI_Ssend / MPI_Issend)."""

import pytest

from repro.simnet import ideal_cluster
from repro.smpi import MpiDeadlock, run_program


class TestSsend:
    def test_payload_roundtrip(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.ssend(128, dest=1, tag=3, payload="sync")
                return None
            payload, st = yield from comm.recv(source=0, tag=3)
            return payload, st.size

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns[1] == ("sync", 128)

    def test_small_ssend_blocks_until_recv_posted(self):
        """Unlike an eager send, a small synchronous send cannot complete
        before the receiver posts."""

        def program(comm):
            if comm.rank == 0:
                yield from comm.ssend(64, dest=1)
                return comm.true_time()
            yield from comm.compute(0.5)
            yield from comm.recv(source=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns[0] > 0.5

    def test_plain_send_does_not_block(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(64, dest=1)
                return comm.true_time()
            yield from comm.compute(0.5)
            yield from comm.recv(source=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns[0] < 0.01

    def test_head_to_head_ssend_deadlocks(self):
        """The classic unsafe pattern: both ranks Ssend before receiving.
        Eager buffering hides it for small plain sends; synchronous sends
        expose it -- which is exactly what MPI_Ssend is for."""

        def program(comm):
            other = 1 - comm.rank
            yield from comm.ssend(64, dest=other)
            yield from comm.recv(source=other)
            return None

        with pytest.raises(MpiDeadlock) as exc:
            run_program(ideal_cluster(4), program, nprocs=2)
        assert set(exc.value.blocked) == {0, 1}

    def test_head_to_head_plain_send_is_fine(self):
        def program(comm):
            other = 1 - comm.rank
            yield from comm.send(64, dest=other)
            payload, _st = yield from comm.recv(source=other)
            return True

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns == [True, True]

    def test_issend_test_flag(self):
        def program(comm):
            if comm.rank == 0:
                req = yield from comm.issend(64, dest=1)
                early = comm.test(req)
                yield from comm.wait(req)
                late = comm.test(req)
                return early, late
            yield from comm.compute(0.1)
            yield from comm.recv(source=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns[0] == (False, True)

    def test_validation(self):
        def program(comm):
            with pytest.raises(ValueError):
                yield from comm.issend(-1, dest=1 - comm.rank)
            if False:
                yield
            return True

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.returns == [True, True]
