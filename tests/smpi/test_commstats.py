"""Tests for PMPI-style per-rank communication statistics."""

import pytest

from repro.apps.jacobi import jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.simnet import ideal_cluster, perseus
from repro.smpi import run_program

SPEC = perseus(16)


class TestCounters:
    def test_point_to_point_counts(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1000, dest=1)
                yield from comm.send(500, dest=1)
                yield from comm.recv(source=1)
            else:
                yield from comm.recv(source=0)
                yield from comm.recv(source=0)
                yield from comm.send(200, dest=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        s0, s1 = r.comm_stats
        assert s0["sends"] == 2 and s0["recvs"] == 1
        assert s0["bytes_sent"] == 1500 and s0["bytes_received"] == 200
        assert s1["sends"] == 1 and s1["recvs"] == 2
        assert s1["bytes_sent"] == 200 and s1["bytes_received"] == 1500

    def test_compute_time_tracked(self):
        def program(comm):
            yield from comm.compute(0.25)
            yield from comm.compute(0.5)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=1)
        assert r.comm_stats[0]["compute_time"] == pytest.approx(0.75)
        assert r.comm_stats[0]["send_time"] == 0.0

    def test_time_decomposition_covers_wall_clock(self):
        """compute + send + recv-wait accounts for (nearly) all of a
        rank's elapsed time in a comm/compute loop."""

        def program(comm):
            other = 1 - comm.rank
            for _ in range(20):
                yield from comm.compute(200e-6)
                yield from comm.sendrecv(1024, dest=other, source=other)
            return None

        r = run_program(SPEC, program, nprocs=2, seed=1)
        for rank, stats in enumerate(r.comm_stats):
            total = (
                stats["compute_time"] + stats["send_time"] + stats["recv_wait"]
            )
            assert total == pytest.approx(r.finish_times[rank], rel=0.02)

    def test_collectives_counted(self):
        def program(comm):
            yield from comm.bcast(4096, root=0, payload=0 if comm.rank == 0 else None)
            yield from comm.barrier()
            return None

        r = run_program(ideal_cluster(8), program, nprocs=4)
        # The root sends the bcast payload at least once; everyone moved
        # barrier messages.
        assert r.comm_stats[0]["bytes_sent"] >= 4096
        assert all(s["sends"] > 0 for s in r.comm_stats)

    def test_recv_wait_includes_blocking_time(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(0.1)  # make rank 1 wait
                yield from comm.send(8, dest=1)
                return None
            yield from comm.recv(source=0)
            return None

        r = run_program(ideal_cluster(4), program, nprocs=2)
        assert r.comm_stats[1]["recv_wait"] > 0.09


class TestStatsVsPevpmAttribution:
    def test_measured_comm_fraction_matches_model_attribution(self):
        """The measured PMPI decomposition and PEVPM's traced loss
        attribution describe the same program similarly -- the
        cross-validation the matching definitions exist for."""
        ITER = 60
        measured = run_program(SPEC, jacobi_smpi, nprocs=8, seed=42, args=(ITER,))
        meas_comm_frac = [
            s["comm_time" if False else "recv_wait"] + s["send_time"]
            for s in measured.comm_stats
        ]
        meas_frac = sum(meas_comm_frac) / sum(measured.finish_times)

        bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
        db = bench.sweep_isend([(2, 1), (8, 1)], sizes=[0, 1024, 2048])
        params = {"iterations": ITER, "xsize": 256,
                  "serial_time": SPEC.jacobi_serial_time}
        pred = predict(
            parse_jacobi(), 8, timing_from_db(db, "distribution"),
            runs=2, seed=1, params=params, trace_last=True,
        )
        report = pred.loss_report()
        per = report.per_process()
        model_frac = sum(p["send"] + p["wait"] for p in per) / sum(
            p["compute"] + p["send"] + p["wait"] for p in per
        )
        assert meas_frac == pytest.approx(model_frac, abs=0.12)
