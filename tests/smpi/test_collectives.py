"""Tests for collective operations (semantics and timing shape)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import ideal_cluster, perseus
from repro.smpi import RankError, run_program


def run_coll(program, nprocs, spec=None, **kw):
    spec = spec or ideal_cluster(max(4, nprocs))
    return run_program(spec, program, nprocs=nprocs, **kw)


class TestBarrier:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
    def test_completes_for_any_size(self, nprocs):
        def program(comm):
            yield from comm.barrier()
            return comm.true_time()

        r = run_coll(program, nprocs)
        assert all(not math.isnan(t) for t in r.returns)

    def test_no_rank_escapes_early(self):
        """No rank may leave the barrier before the last rank enters it."""

        entered = {}
        left = {}

        def program(comm):
            yield from comm.compute(0.01 * comm.rank)  # staggered entry
            entered[comm.rank] = comm.true_time()
            yield from comm.barrier()
            left[comm.rank] = comm.true_time()
            return None

        run_coll(program, 6)
        assert min(left.values()) >= max(entered.values())

    def test_single_rank_barrier_is_free(self):
        def program(comm):
            yield from comm.barrier()
            return comm.true_time()

        assert run_coll(program, 1).returns == [0.0]


class TestBcast:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_everyone_gets_root_payload(self, nprocs, root):
        def program(comm):
            payload = "secret" if comm.rank == root else None
            out = yield from comm.bcast(1024, root=root, payload=payload)
            return out

        r = run_coll(program, nprocs)
        assert r.returns == ["secret"] * nprocs

    def test_log_rounds_scaling(self):
        """Binomial bcast takes ~log2(P) rounds: time for P=16 should be
        well under 8x the P=2 time (a linear algorithm would be 15x)."""

        def program(comm):
            t0 = comm.true_time()
            yield from comm.bcast(1024, root=0, payload=0)
            return comm.true_time() - t0

        t2 = max(run_coll(program, 2, spec=ideal_cluster(16)).returns)
        t16 = max(run_coll(program, 16, spec=ideal_cluster(16)).returns)
        assert t16 < 6 * t2

    def test_invalid_root(self):
        def program(comm):
            with pytest.raises(RankError):
                yield from comm.bcast(8, root=99)
            return True

        assert run_coll(program, 2).returns == [True, True]


class TestReduce:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 7])
    def test_sum_reduction(self, nprocs):
        def program(comm):
            out = yield from comm.reduce(
                8, root=0, payload=comm.rank + 1, op=lambda a, b: a + b
            )
            return out

        r = run_coll(program, nprocs)
        assert r.returns[0] == sum(range(1, nprocs + 1))
        assert all(v is None for v in r.returns[1:])

    def test_nonzero_root(self):
        def program(comm):
            out = yield from comm.reduce(
                8, root=2, payload=comm.rank, op=lambda a, b: a + b
            )
            return out

        r = run_coll(program, 4)
        assert r.returns[2] == 6
        assert r.returns[0] is None

    def test_min_reduction(self):
        def program(comm):
            out = yield from comm.reduce(8, root=0, payload=10 - comm.rank, op=min)
            return out

        assert run_coll(program, 5).returns[0] == 6


class TestAllreduce:
    def test_everyone_gets_result(self):
        def program(comm):
            out = yield from comm.allreduce(8, payload=comm.rank, op=lambda a, b: a + b)
            return out

        r = run_coll(program, 6)
        assert r.returns == [15] * 6


class TestGatherScatter:
    def test_gather_collects_by_rank(self):
        def program(comm):
            out = yield from comm.gather(64, root=0, payload=f"r{comm.rank}")
            return out

        r = run_coll(program, 5)
        assert r.returns[0] == [f"r{i}" for i in range(5)]
        assert r.returns[1] is None

    def test_scatter_distributes_by_rank(self):
        def program(comm):
            payloads = [i * i for i in range(comm.size)] if comm.rank == 1 else None
            out = yield from comm.scatter(64, root=1, payloads=payloads)
            return out

        r = run_coll(program, 4)
        assert r.returns == [0, 1, 4, 9]

    def test_scatter_wrong_payload_count(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    yield from comm.scatter(8, root=0, payloads=[1, 2, 3])
                # Unblock rank 1 with a plain message so the job finishes.
                yield from comm.send(8, dest=1, tag=0)
                return True
            yield from comm.recv(source=0, tag=0)
            return True

        assert run_coll(program, 2).returns == [True, True]

    def test_gather_none_payloads(self):
        def program(comm):
            out = yield from comm.gather(64, root=0)
            return out

        r = run_coll(program, 3)
        assert r.returns[0] == [None, None, None]


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 6, 8])
    def test_allgather_everyone_sees_everything(self, nprocs):
        def program(comm):
            out = yield from comm.allgather(64, payload=comm.rank * 2)
            return out

        r = run_coll(program, nprocs)
        expected = [i * 2 for i in range(nprocs)]
        assert r.returns == [expected] * nprocs

    @pytest.mark.parametrize("nprocs", [2, 3, 4, 5])
    def test_alltoall_personalised_exchange(self, nprocs):
        def program(comm):
            payloads = [(comm.rank, dst) for dst in range(comm.size)]
            out = yield from comm.alltoall(32, payloads=payloads)
            return out

        r = run_coll(program, nprocs)
        for rank, got in enumerate(r.returns):
            assert got == [(src, rank) for src in range(nprocs)]

    def test_alltoall_wrong_payload_count(self):
        def program(comm):
            with pytest.raises(ValueError):
                yield from comm.alltoall(8, payloads=[1])
            if False:
                yield
            return True

        assert run_coll(program, 2).returns == [True, True]


class TestCollectiveSequencing:
    def test_back_to_back_collectives_do_not_cross_match(self):
        """Two consecutive bcasts with different roots must not mix their
        messages (per-collective tags keep them apart)."""

        def program(comm):
            a = yield from comm.bcast(64, root=0, payload="A" if comm.rank == 0 else None)
            b = yield from comm.bcast(64, root=1, payload="B" if comm.rank == 1 else None)
            return (a, b)

        r = run_coll(program, 4, spec=perseus(4), seed=9)
        assert r.returns == [("A", "B")] * 4

    def test_collectives_interleave_with_p2p(self):
        def program(comm):
            v = yield from comm.bcast(32, root=0, payload=7 if comm.rank == 0 else None)
            if comm.rank == 0:
                yield from comm.send(16, dest=1, tag=3, payload="x")
                out = None
            elif comm.rank == 1:
                out, _ = yield from comm.recv(source=0, tag=3)
            else:
                out = None
            yield from comm.barrier()
            return (v, out)

        r = run_coll(program, 3)
        assert r.returns[1] == (7, "x")


@given(
    nprocs=st.integers(min_value=1, max_value=8),
    payloads=st.lists(st.integers(-1000, 1000), min_size=8, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_python_sum(nprocs, payloads):
    """Property: allreduce(+) equals the arithmetic sum of contributions,
    for any rank count and payload values."""

    def program(comm):
        out = yield from comm.allreduce(
            8, payload=payloads[comm.rank], op=lambda a, b: a + b
        )
        return out

    r = run_program(ideal_cluster(8), program, nprocs=nprocs)
    expected = sum(payloads[:nprocs])
    assert r.returns == [expected] * nprocs
