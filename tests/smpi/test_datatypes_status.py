"""Tests for MPI datatypes and status objects."""

import pytest

from repro.smpi import BYTE, DOUBLE, FLOAT, INT, Datatype, Status, nbytes
from repro.smpi.datatypes import CHAR, LONG, SHORT


class TestDatatypes:
    def test_standard_extents(self):
        assert BYTE.size == 1
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert FLOAT.size == 4
        assert LONG.size == 8
        assert DOUBLE.size == 8

    def test_extent_scaling(self):
        assert FLOAT.extent(256) == 1024  # the Jacobi edge message
        assert DOUBLE.extent(0) == 0

    def test_nbytes_helper(self):
        assert nbytes(100) == 100
        assert nbytes(100, INT) == 400

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            INT.extent(-1)

    def test_invalid_datatype_rejected(self):
        with pytest.raises(ValueError):
            Datatype("broken", 0)


class TestStatus:
    def test_fields(self):
        st = Status(source=3, tag=9, size=128)
        assert (st.source, st.tag, st.size) == (3, 9, 128)
        assert st.attempts == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Status(source=0, tag=0, size=-1)

    def test_frozen(self):
        st = Status(source=0, tag=0, size=1)
        with pytest.raises(AttributeError):
            st.size = 2
