"""The PEVPM collective lowerings mirror ``smpi.collectives`` exactly.

``repro.pevpm.lower_collective`` claims to produce, per rank, the same
point-to-point schedule the simulated MPI collectives execute --
binomial tree for bcast/reduce (same lowest-set-bit parent and mask
walk), allreduce as reduce-to-0 + bcast-from-0, and the (P-1)-step ring
allgather.  Here each ``smpi`` generator is driven against a recording
stub communicator and its message sequence is compared against the
lowered schedule, operation for operation, across the awkward tree
shapes: a single rank (empty schedule), non-power-of-two sizes (ragged
binomial trees), and broadcast/reduction roots other than 0.
"""

import pytest

from repro.pevpm import lower_collective
from repro.smpi import collectives

NPROCS = [1, 2, 3, 4, 5, 6, 7, 8, 13]


class RecordingComm:
    """Stands in for an smpi communicator: records the message pattern
    instead of simulating it.

    Receives return ``(None, None)`` payload/status pairs, except
    ``wait`` which returns the ``(origin, block)`` tuple the ring
    allgather forwards -- origin 0 keeps its indexing happy without
    simulating delivery.  An ``irecv`` is logged when it completes (at
    ``wait``), matching the lowering's execution-order convention.
    """

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        self.log: list[tuple] = []

    def _next_coll_tag(self) -> int:
        return 4096

    def send(self, size, dest, tag=0, payload=None):
        self.log.append(("send", dest, size))
        return
        yield

    def recv(self, source=None, tag=0):
        self.log.append(("recv", source))
        return (None, None)
        yield

    def irecv(self, source=None, tag=0):
        return ("req", source)
        yield

    def wait(self, req):
        self.log.append(("recv", req[1]))
        return ((0, None), None)
        yield

    def sendrecv(
        self, size, dest, source, sendtag=0, recvtag=0, payload=None
    ):
        self.log.append(("send", dest, size))
        self.log.append(("recv", source))
        return (None, None)
        yield


def drive(gen):
    if gen is None:
        return None
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def recorded(op: str, rank: int, nprocs: int, size: int, root: int = 0):
    comm = RecordingComm(rank, nprocs)
    if op == "bcast":
        drive(collectives.bcast(comm, size, root=root))
    elif op == "reduce":
        drive(collectives.reduce(comm, size, root=root))
    elif op == "allreduce":
        drive(collectives.allreduce(comm, size))
    elif op == "allgather":
        drive(collectives.allgather(comm, size))
    else:
        raise AssertionError(op)
    return comm.log


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("op", ["bcast", "reduce"])
def test_rooted_tree_matches_lowering_for_every_root(op, nprocs):
    for root in range(nprocs):
        for rank in range(nprocs):
            expected = lower_collective(op, rank, nprocs, 1024, root=root)
            assert recorded(op, rank, nprocs, 1024, root=root) == expected


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("op", ["allreduce", "allgather"])
def test_rootless_matches_lowering(op, nprocs):
    for rank in range(nprocs):
        expected = lower_collective(op, rank, nprocs, 512)
        assert recorded(op, rank, nprocs, 512) == expected


def test_single_rank_schedules_are_empty():
    for op in ("bcast", "reduce", "allreduce", "allgather"):
        assert lower_collective(op, 0, 1, 4096) == []
        assert recorded(op, 0, 1, 4096) == []


def test_non_power_of_two_reduce_root_receives_all_contributions():
    """Ragged binomial tree: every non-root rank sends exactly once and
    the root hears, transitively, from everyone."""
    for nprocs in (3, 5, 6, 7, 13):
        for root in (0, 1, nprocs - 1):
            senders = 0
            for rank in range(nprocs):
                ops = lower_collective("reduce", rank, nprocs, 64, root=root)
                kinds = [o[0] for o in ops]
                if rank == root:
                    assert "send" not in kinds
                else:
                    assert kinds.count("send") == 1
                    assert kinds[-1] == "send"  # sends after combining
                    senders += 1
            assert senders == nprocs - 1


def test_root_shift_is_a_rank_rotation():
    """A root-r bcast is the root-0 tree with every peer shifted by r
    (mod P) -- the relative-rank construction, checked directly."""
    nprocs, size = 6, 256
    for root in range(nprocs):
        for rank in range(nprocs):
            shifted = lower_collective(
                "bcast", (rank - root) % nprocs, nprocs, size, root=0
            )
            expected = [
                (kind, (peer + root) % nprocs, *rest)
                for kind, peer, *rest in shifted
            ]
            assert (
                lower_collective("bcast", rank, nprocs, size, root=root)
                == expected
            )


def test_allgather_ring_shape():
    """P-1 steps, each sending the running block right and completing a
    receive from the left."""
    nprocs = 5
    for rank in range(nprocs):
        ops = lower_collective("allgather", rank, nprocs, 128)
        assert len(ops) == 2 * (nprocs - 1)
        right = (rank + 1) % nprocs
        left = (rank - 1) % nprocs
        assert ops[0::2] == [("send", right, 128)] * (nprocs - 1)
        assert ops[1::2] == [("recv", left)] * (nprocs - 1)
