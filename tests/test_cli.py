"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_config, build_parser, main


class TestParser:
    def test_config_parsing(self):
        assert _parse_config("8x1") == (8, 1)
        assert _parse_config("64X2") == (64, 2)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_config("8")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_config("axb")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestInfo:
    def test_info_prints_cluster(self, capsys):
        assert main(["info", "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert "perseus" in out
        assert "100 Mbit/s" in out
        assert "2.1 Gbit/s" in out


class TestBench:
    def test_bench_prints_table_and_saves(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        rc = main([
            "bench", "--config", "2x1", "--sizes", "0", "1024",
            "--reps", "10", "--save", str(db_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2x1" in out and "1024" in out
        assert db_path.exists()

        from repro.mpibench import DistributionDB

        db = DistributionDB.load(db_path)
        assert db.configs("isend") == [(2, 1)]


class TestPdf:
    def test_pdf_renders(self, capsys):
        rc = main([
            "pdf", "--config", "4x1", "--sizes", "1024", "--reps", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "size=1024B" in out
        assert "outlier" in out


class TestPredict:
    def test_predict_with_saved_db(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        main([
            "bench", "--config", "2x1", "--config", "4x1",
            "--sizes", "0", "1024", "--reps", "10", "--save", str(db_path),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--db", str(db_path), "--nprocs", "4",
            "--iterations", "20", "--runs", "2", "--measure",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distribution-nxp" in out
        assert "measured" in out
        assert "%" in out


class TestExport:
    def test_bench_export_dat(self, capsys, tmp_path):
        dat = tmp_path / "curves.dat"
        rc = main([
            "bench", "--config", "2x1", "--sizes", "0", "512",
            "--reps", "8", "--export", str(dat),
        ])
        assert rc == 0
        lines = dat.read_text().strip().splitlines()
        assert lines[0].startswith("# size")
        assert len(lines) == 3


@pytest.fixture()
def saved_db(tmp_path):
    db_path = tmp_path / "db.json"
    main([
        "bench", "--config", "2x1", "--config", "4x1",
        "--sizes", "0", "1024", "--reps", "10", "--save", str(db_path),
    ])
    return db_path


class TestPredictJson:
    def test_json_record_is_machine_readable(self, capsys, saved_db):
        import json

        capsys.readouterr()
        rc = main([
            "predict", "--db", str(saved_db), "--nprocs", "4",
            "--iterations", "20", "--runs", "2", "--seed", "3",
            "--workers", "1", "--vector-runs", "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"]["model"] == "jacobi"
        assert doc["workload"]["nprocs"] == 4
        assert doc["serial_time"] > 0
        assert doc["db_fingerprint"]
        record = doc["predictions"]["distribution-nxp"]
        # The record carries the seed and engine flags needed to replay
        # it -- the same serialisation the prediction service returns.
        assert record["seed"] == 3
        assert record["engine"]["vector_runs"] is True
        assert len(record["times"]) == 2
        assert record["speedup"] > 0

    def test_json_matches_direct_predict(self, capsys, saved_db):
        import json

        from repro.apps.jacobi import parse_jacobi
        from repro.mpibench import DistributionDB
        from repro.pevpm import predict, timing_from_db
        from repro.simnet import perseus

        capsys.readouterr()
        main([
            "predict", "--db", str(saved_db), "--nprocs", "4",
            "--iterations", "20", "--runs", "2", "--seed", "3",
            "--workers", "1", "--json",
        ])
        doc = json.loads(capsys.readouterr().out)
        spec = perseus()
        db = DistributionDB.load(saved_db)
        direct = predict(
            parse_jacobi(), 4,
            timing_from_db(db, mode="distribution", nprocs=4),
            runs=2, seed=3,
            params={
                "iterations": 20, "xsize": 256,
                "serial_time": spec.jacobi_serial_time,
            },
        )
        assert doc["predictions"]["distribution-nxp"]["times"] == direct.times


class TestDeadlockExitCode:
    def test_predict_returns_3_on_model_deadlock(
        self, capsys, monkeypatch, saved_db
    ):
        from repro.pevpm import ModelDeadlock

        def deadlock(*args, **kwargs):
            raise ModelDeadlock({0: 1, 1: 0}, [])

        monkeypatch.setattr("repro.cli.compare_timing_modes", deadlock)
        capsys.readouterr()
        rc = main([
            "predict", "--db", str(saved_db), "--nprocs", "4", "--runs", "2",
        ])
        assert rc == 3
        assert "deadlock detected" in capsys.readouterr().err

    def test_json_mode_reports_deadlock_on_stdout(
        self, capsys, monkeypatch, saved_db
    ):
        import json

        from repro.pevpm import ModelDeadlock

        def deadlock(*args, **kwargs):
            raise ModelDeadlock({0: 1, 1: 0}, [])

        monkeypatch.setattr("repro.cli.compare_timing_modes", deadlock)
        capsys.readouterr()
        rc = main([
            "predict", "--db", str(saved_db), "--nprocs", "4",
            "--runs", "2", "--json",
        ])
        assert rc == 3
        assert json.loads(capsys.readouterr().out)["error"] == "deadlock"


class TestServiceParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8100
        assert args.queue_limit == 64
        assert args.max_wait_ms == 2.0
        assert not args.no_batch and not args.no_dedup and not args.no_cache

    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--no-batch", "--no-dedup", "--no-cache",
            "--max-wait-ms", "0.5", "--queue-limit", "4",
        ])
        assert args.port == 0
        assert args.no_batch and args.no_dedup and args.no_cache
        assert args.max_wait_ms == 0.5
        assert args.queue_limit == 4

    def test_loadgen_concurrency_sweep(self):
        args = build_parser().parse_args([
            "loadgen", "--concurrency", "1", "4", "16", "--duration", "2",
        ])
        assert args.concurrency == [1, 4, 16]
        assert args.duration == 2.0


class TestPredictModels:
    """``repro predict --model`` reaches beyond jacobi."""

    def test_halo_json_record(self, capsys, tmp_path):
        from repro.mpibench import BenchSettings, MPIBench
        from repro.simnet import perseus

        db_path = tmp_path / "db.json"
        bench = MPIBench(perseus(16), seed=3,
                         settings=BenchSettings(reps=20, warmup=2))
        bench.sweep_isend(
            [(1, 2), (2, 1), (8, 1)], sizes=[0, 512, 1024]
        ).save(db_path)
        rc = main([
            "predict", "--model", "halo",
            "--model-params", '{"nx": 8, "iterations": 2}',
            "--db", str(db_path), "--nprocs", "4", "--runs", "2", "--json",
        ])
        assert rc == 0
        import json as _json

        doc = _json.loads(capsys.readouterr().out)
        assert doc["workload"]["model"] == "halo"
        assert doc["workload"]["model_params"]["nx"] == 8
        assert doc["serial_time"] > 0
        assert doc["predictions"]["distribution-nxp"]["times"]

    def test_unknown_model_param_rejected(self, capsys):
        rc = main([
            "predict", "--model", "fft", "--model-params", '{"nx": 8}',
        ])
        assert rc == 1
        assert "unknown fft parameter" in capsys.readouterr().err

    def test_measure_restricted_to_jacobi(self, capsys):
        rc = main(["predict", "--model", "amg", "--measure"])
        assert rc == 2
        assert "--measure" in capsys.readouterr().err


class TestImportTrace:
    def ring(self, tmp_path):
        from repro.trace_import import sample_trace

        program = sample_trace(nprocs=4)
        path = tmp_path / "ring.jsonl"
        path.write_text(program.to_jsonl())
        return program, path

    def test_summary_and_json(self, capsys, tmp_path):
        program, path = self.ring(tmp_path)
        assert main(["import-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert program.fingerprint in out
        assert "4 procs" in out

        assert main(["import-trace", str(path), "--json"]) == 0
        import json as _json

        doc = _json.loads(capsys.readouterr().out)
        assert doc["fingerprint"] == program.fingerprint

    def test_export_round_trips(self, capsys, tmp_path):
        program, path = self.ring(tmp_path)
        out_path = tmp_path / "exported.jsonl"
        assert main([
            "import-trace", str(path), "--export", str(out_path),
        ]) == 0
        from repro.trace_import import parse_jsonl

        assert parse_jsonl(out_path.read_text()).fingerprint == \
            program.fingerprint

    def test_deadlock_exits_3(self, capsys, tmp_path):
        path = tmp_path / "dead.trace"
        path.write_text(
            "NPROCS 2\n0 MPI_RECV 1\n1 MPI_RECV 0\n"
            "0 MPI_SEND 1 8\n1 MPI_SEND 0 8\n"
        )
        assert main(["import-trace", str(path)]) == 3
        assert "deadlock" in capsys.readouterr().err

    def test_invalid_trace_exits_1(self, capsys, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("NPROCS 2\n0 MPI_SEND 1 8\n")
        assert main(["import-trace", str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_missing_file_exits_1(self, capsys):
        assert main(["import-trace", "/nonexistent/t.jsonl"]) == 1
        assert capsys.readouterr().err
