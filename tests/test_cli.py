"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_config, build_parser, main


class TestParser:
    def test_config_parsing(self):
        assert _parse_config("8x1") == (8, 1)
        assert _parse_config("64X2") == (64, 2)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_config("8")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_config("axb")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestInfo:
    def test_info_prints_cluster(self, capsys):
        assert main(["info", "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert "perseus" in out
        assert "100 Mbit/s" in out
        assert "2.1 Gbit/s" in out


class TestBench:
    def test_bench_prints_table_and_saves(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        rc = main([
            "bench", "--config", "2x1", "--sizes", "0", "1024",
            "--reps", "10", "--save", str(db_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2x1" in out and "1024" in out
        assert db_path.exists()

        from repro.mpibench import DistributionDB

        db = DistributionDB.load(db_path)
        assert db.configs("isend") == [(2, 1)]


class TestPdf:
    def test_pdf_renders(self, capsys):
        rc = main([
            "pdf", "--config", "4x1", "--sizes", "1024", "--reps", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "size=1024B" in out
        assert "outlier" in out


class TestPredict:
    def test_predict_with_saved_db(self, capsys, tmp_path):
        db_path = tmp_path / "db.json"
        main([
            "bench", "--config", "2x1", "--config", "4x1",
            "--sizes", "0", "1024", "--reps", "10", "--save", str(db_path),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--db", str(db_path), "--nprocs", "4",
            "--iterations", "20", "--runs", "2", "--measure",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distribution-nxp" in out
        assert "measured" in out
        assert "%" in out


class TestExport:
    def test_bench_export_dat(self, capsys, tmp_path):
        dat = tmp_path / "curves.dat"
        rc = main([
            "bench", "--config", "2x1", "--sizes", "0", "512",
            "--reps", "8", "--export", str(dat),
        ])
        assert rc == 0
        lines = dat.read_text().strip().splitlines()
        assert lines[0].startswith("# size")
        assert len(lines) == 3
