"""Unit tests for the observability primitives (:mod:`repro.obs`).

The tracer's design constraints are each asserted directly: explicit
injectable clocks (tests drive a fake clock and check exact durations),
zero cost when disabled (``start_trace`` returns ``None``), a bounded
ring buffer (old traces fall off), and IDs that never touch the seeded
RNG streams (OS entropy, validated when client-supplied).
"""

import io
import json
import threading

import pytest

from repro.obs import (
    ENGINE_PHASES,
    JsonLogger,
    PhaseProfiler,
    Tracer,
    clean_trace_id,
    merge_phases,
    render_waterfall,
    span_or_null,
)
from repro.obs.tracer import MAX_TRACE_ID


class FakeClock:
    """A hand-cranked clock for exact span arithmetic."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTracer:
    def test_disabled_tracer_hands_out_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace() is None
        tracer.finish(None)  # must be a no-op, not an error
        assert len(tracer) == 0

    def test_span_durations_from_explicit_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace()
        with trace.span("cache", tier="miss"):
            clock.advance(0.25)
        clock.advance(1.0)
        with trace.span("batch"):
            clock.advance(0.5)
        doc = trace.to_dict()
        spans = {s["name"]: s for s in doc["spans"]}
        assert spans["cache"]["start_ms"] == pytest.approx(0.0)
        assert spans["cache"]["duration_ms"] == pytest.approx(250.0)
        assert spans["cache"]["attrs"]["tier"] == "miss"
        assert spans["batch"]["start_ms"] == pytest.approx(1250.0)
        assert spans["batch"]["duration_ms"] == pytest.approx(500.0)

    def test_add_span_and_annotate(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).start_trace("tid-1")
        assert trace.trace_id == "tid-1"
        clock.advance(2.0)
        trace.add_span("engine", 0.5, 1.75, batch_id=3)
        marker = trace.annotate("admission", queue_depth=2)
        assert marker.duration == 0.0
        found = trace.find("engine")
        assert found is not None and found.attrs["batch_id"] == 3
        assert trace.find("nope") is None
        durations = trace.stage_durations()
        assert durations["engine"] == pytest.approx(1.25)
        assert durations["admission"] == 0.0

    def test_child_spans_carry_parent_ids(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).start_trace()
        parent = trace.add_span("engine", 0.0, 1.0)
        trace.add_span("engine.sweep", 0.0, 0.4, parent=parent, synthetic=True)
        doc = trace.to_dict()
        sweep = next(s for s in doc["spans"] if s["name"] == "engine.sweep")
        assert sweep["parent_id"] == parent.span_id
        assert sweep["attrs"]["synthetic"] is True

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        ids = []
        for _ in range(5):
            trace = tracer.start_trace()
            ids.append(trace.trace_id)
            tracer.finish(trace)
        assert len(tracer) == 3
        assert tracer.get(ids[0]) is None
        assert tracer.get(ids[1]) is None
        for tid in ids[2:]:
            assert tracer.get(tid) is not None
        # Newest first in the listing, bounded by limit.
        listed = [t["trace_id"] for t in tracer.traces(limit=2)]
        assert listed == [ids[4], ids[3]]

    def test_replayed_trace_id_keeps_latest(self):
        clock = FakeClock()
        tracer = Tracer(capacity=4, clock=clock)
        first = tracer.start_trace("dup")
        first.add_span("cache", 0.0, 1.0)
        tracer.finish(first)
        second = tracer.start_trace("dup")
        second.add_span("engine", 0.0, 2.0)
        tracer.finish(second)
        assert len(tracer) == 1
        doc = tracer.get("dup")
        assert [s["name"] for s in doc["spans"]] == ["engine"]

    def test_span_or_null_paths(self):
        with span_or_null(None, "cache") as span:
            assert span is None
        trace = Tracer(clock=FakeClock()).start_trace()
        with span_or_null(trace, "cache", tier="memory") as span:
            assert span is not None
        assert trace.find("cache").attrs["tier"] == "memory"

    def test_concurrent_span_appends(self):
        trace = Tracer().start_trace()
        barrier = threading.Barrier(4)

        def worker(n: int):
            barrier.wait()
            for i in range(200):
                trace.add_span(f"w{n}", float(i), float(i) + 0.5)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.to_dict()["spans"]) == 800


class TestCleanTraceId:
    def test_accepts_printable_tokens(self):
        assert clean_trace_id("abc123") == "abc123"
        assert clean_trace_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "bad",
        [None, 42, "", "   ", "a" * (MAX_TRACE_ID + 1), "with space",
         "tab\tid", "new\nline", "bell\x07"],
    )
    def test_rejects_hostile_values(self, bad):
        assert clean_trace_id(bad) is None


class TestPhaseProfiler:
    def test_disjoint_buckets_via_exclusive(self):
        prof = PhaseProfiler()
        mark = prof.mark()
        prof.add("sample", 0.3)  # sampling inside the swept region
        prof.exclusive("sweep", 1.0, mark)
        assert prof.phases["sweep"] == pytest.approx(0.7)
        assert prof.phases["sample"] == pytest.approx(0.3)
        # A region entirely spent sampling never goes negative.
        mark = prof.mark()
        prof.add("sample", 0.5)
        prof.exclusive("match", 0.4, mark)
        assert prof.phases["match"] == 0.0

    def test_scaled_and_snapshot_drop_empty_phases(self):
        prof = PhaseProfiler()
        prof.add("sweep", 2.0)
        assert prof.snapshot() == {"sweep": 2.0}
        assert prof.scaled(0.25) == {"sweep": 0.5}

    def test_merge_phases_over_outcomes(self):
        class Outcome:
            def __init__(self, phases):
                self.phases = phases

        total = merge_phases(
            [Outcome({"sweep": 1.0, "sample": 0.5}),
             Outcome(None),
             Outcome({"sweep": 0.5, "match": 0.25})]
        )
        assert total == {"sweep": 1.5, "sample": 0.5, "match": 0.25}

    def test_engine_phases_are_the_known_buckets(self):
        assert ENGINE_PHASES == ("sweep", "match", "sample")


class TestJsonLogger:
    def test_one_line_per_event_and_none_dropped(self):
        stream = io.StringIO()
        logger = JsonLogger(stream)
        logger.log("predict", trace_id="t1", status=200, batch_id=None)
        logger.log("predict", trace_id="t2", status=429)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "predict"
        assert first["trace_id"] == "t1"
        assert first["status"] == 200
        assert "batch_id" not in first
        assert isinstance(first["ts"], float)


class TestRenderWaterfall:
    def _doc(self):
        return {
            "trace_id": "abcd",
            "spans": [
                {"name": "request", "start_ms": 0.0, "duration_ms": 10.0},
                {"name": "cache", "start_ms": 0.1, "duration_ms": 0.2,
                 "attrs": {"tier": "miss"}},
                {"name": "engine", "start_ms": 2.0, "duration_ms": 7.5,
                 "attrs": {"batch_id": 4, "batch_size": 2}},
            ],
        }

    def test_waterfall_lists_every_span_with_attrs(self):
        text = render_waterfall(self._doc())
        assert "trace abcd" in text
        assert "3 spans" in text
        for needle in ("request", "cache", "engine", "tier=miss",
                       "batch_id=4"):
            assert needle in text
        # Every span gets a visible bar, however short.
        cache_line = next(l for l in text.splitlines() if "cache" in l)
        assert "#" in cache_line

    def test_empty_trace_renders(self):
        assert "no spans" in render_waterfall({"trace_id": "x", "spans": []})
