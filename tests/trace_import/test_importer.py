"""Unit tests for the MPI trace importer and the program store.

Parsing (both wire formats), validation and its error taxonomy
(structure, conservation counting, deadlock discovery), canonical
round-tripping, and the content-addressed :class:`ProgramStore`.
"""

import json
import pickle

import pytest

from repro.pevpm import ANY_SOURCE, HockneyTiming, VirtualMachine, predict
from repro.registry.store import NotOwner, RegistryError, UnknownRef
from repro.trace_import import (
    ProgramStore,
    TraceDeadlock,
    TraceError,
    TraceProgram,
    parse_jsonl,
    parse_otf2_text,
    parse_trace,
    sample_trace,
)

RING = sample_trace(nprocs=4)


def jsonl_of(program):
    return program.to_jsonl()


class TestParsing:
    def test_sample_trace_is_valid_and_stable(self):
        again = sample_trace(nprocs=4)
        assert again.fingerprint == RING.fingerprint
        assert again.nprocs == 4
        assert again.messages > 0

    def test_jsonl_round_trip_preserves_fingerprint(self):
        again = parse_jsonl(jsonl_of(RING))
        assert again.fingerprint == RING.fingerprint
        assert again.ranks == RING.ranks

    def test_autodetect_jsonl_vs_otf2(self):
        assert parse_trace(jsonl_of(RING)).fingerprint == RING.fingerprint
        otf2 = "NPROCS 2\n0 MPI_SEND 1 64\n1 MPI_RECV 0\n"
        program = parse_trace(otf2)
        assert program.nprocs == 2
        assert program.messages == 1

    def test_otf2_features(self):
        text = (
            "# a comment\n"
            "NPROCS 2\n"
            "NAME pingpong\n"
            "0 COMPUTE 1e-6\n"
            "0 MPI_ISEND 1 128\n"
            "1 MPI_IRECV ANY\n"
            "1 MPI_SEND 0 128\n"
            "0 MPI_RECV 1\n"
        )
        program = parse_otf2_text(text)
        assert program.name == "pingpong"
        assert program.ranks[1][0] == ("recv", -1)  # ANY -> wildcard
        assert program.messages == 2

    def test_name_does_not_change_fingerprint(self):
        a = parse_jsonl(jsonl_of(RING), name="alpha")
        b = parse_jsonl(jsonl_of(RING), name="beta")
        assert a.name == "alpha" and b.name == "beta"
        assert a.fingerprint == b.fingerprint

    def test_rejects_non_trace_input(self):
        with pytest.raises(TraceError):
            parse_trace('{"trace": "something-else", "version": 1}')
        with pytest.raises(TraceError):
            parse_trace("certainly not a trace\n")


class TestValidation:
    def test_unknown_rank_rejected(self):
        with pytest.raises(TraceError, match="rank"):
            TraceProgram.build("t", 2, [[("send", 5, 8)], []])

    def test_self_send_rejected(self):
        with pytest.raises(TraceError, match="itself"):
            TraceProgram.build("t", 2, [[("send", 0, 8)], []])

    def test_unmatched_send_rejected(self):
        with pytest.raises(TraceError, match="unmatched send"):
            TraceProgram.build("t", 2, [[("send", 1, 8)], []])

    def test_unmatched_recv_rejected(self):
        with pytest.raises(TraceError):
            TraceProgram.build("t", 2, [[], [("recv", 0)]])

    def test_deadlock_discovered_and_distinguished(self):
        events = [
            [("recv", 1), ("send", 1, 8)],
            [("recv", 0), ("send", 0, 8)],
        ]
        with pytest.raises(TraceDeadlock, match="deadlock"):
            TraceProgram.build("t", 2, events)
        assert issubclass(TraceDeadlock, TraceError)

    def test_wildcard_absorbs_any_sender(self):
        events = [
            [("send", 1, 8)],
            [("recv", -1)],
        ]
        program = TraceProgram.build("t", 2, events)
        assert program.messages == 1


class TestModel:
    def test_model_is_picklable_and_replayable(self):
        model = RING.model()
        clone = pickle.loads(pickle.dumps(model))
        timing = HockneyTiming(1e-5, 1e8)
        a = VirtualMachine(4, timing, seed=0).run(model)
        b = VirtualMachine(4, timing, seed=0).run(clone)
        assert a.elapsed == b.elapsed

    def test_wrong_nprocs_is_an_error_not_truncation(self):
        with pytest.raises(ValueError, match="nprocs=4"):
            predict(
                RING.model(), 3, HockneyTiming(1e-5, 1e8), runs=1, seed=0
            )


class TestProgramStore:
    def test_put_get_meta(self, tmp_path):
        store = ProgramStore(tmp_path)
        meta = store.put(RING, tenant="alice")
        assert meta["fingerprint"] == RING.fingerprint
        assert store.get(RING.fingerprint).ranks == RING.ranks
        assert len(store) == 1
        assert store.stats()["programs"] == 1

    def test_in_memory_store(self):
        store = ProgramStore()
        store.put(RING)
        assert store.get(RING.fingerprint).fingerprint == RING.fingerprint

    def test_unknown_and_malformed_refs(self, tmp_path):
        store = ProgramStore(tmp_path)
        with pytest.raises(UnknownRef):
            store.get("0" * 64)
        with pytest.raises(RegistryError):
            store.get("not-a-fingerprint")

    def test_delete_enforces_ownership(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.put(RING, tenant="alice")
        with pytest.raises(NotOwner):
            store.delete(RING.fingerprint, tenant="bob")
        store.delete(RING.fingerprint, tenant="alice")
        with pytest.raises(UnknownRef):
            store.get(RING.fingerprint)

    def test_corrupt_file_quarantined(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.put(RING)
        [path] = tmp_path.glob("prog-*.json")
        doc = json.loads(path.read_text())
        doc["program"]["ranks"][0][0] = ["compute", 999.0]
        path.write_text(json.dumps(doc))
        fresh = ProgramStore(tmp_path, lru_size=0)
        with pytest.raises(UnknownRef):
            fresh.get(RING.fingerprint)
        assert list(tmp_path.glob("*.corrupt"))

    def test_quota_hook_runs_once_per_new_program(self, tmp_path):
        calls = []

        def check(nbytes):
            calls.append(nbytes)

        store = ProgramStore(tmp_path)
        store.put(RING, check=check)
        store.put(RING, check=check)  # re-upload: no extra charge
        assert len(calls) == 1 and calls[0] > 0


def test_any_source_constant_matches_wire_value():
    # The wire encodes a wildcard recv src as -1; the model must map it
    # to the machine's ANY_SOURCE sentinel.
    model = TraceProgram.build(
        "t", 2, [[("send", 1, 8)], [("recv", -1)]]
    ).model()
    recvs = [
        event for rank in model.ranks for event in rank
        if event[0] == "recv"
    ]
    assert recvs == [("recv", -1)]
    assert ANY_SOURCE is not None
