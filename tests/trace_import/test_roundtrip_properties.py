"""Property-based tests for the trace importer.

Random deadlock-free traces are generated from a global linear order of
events (the same construction as the compiled-parity suite: the
earliest incomplete operation's sender has already sent, so FIFO
delivery completes it -- contradiction; wildcard receives stay safe
because each rank is all-wildcard or all-fixed).  Properties:

* import -> export -> import is the identity on the content address
  (and on the event tuples themselves);
* the replayed model predicts bit-identically whether interpreted or
  compiled, on the scalar and the batched virtual machine.
"""

from hypothesis import given, settings, strategies as st

from repro.pevpm import (
    BatchedVirtualMachine,
    HockneyTiming,
    VirtualMachine,
    compile_program,
)
from repro.trace_import import TraceProgram, parse_jsonl


@st.composite
def traces(draw):
    nprocs = draw(st.integers(min_value=1, max_value=4))
    wildcard = [draw(st.booleans()) for _ in range(nprocs)]
    events = [[] for _ in range(nprocs)]
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        kind = draw(st.sampled_from(["msg", "compute"]))
        if kind == "msg" and nprocs > 1:
            src = draw(st.integers(min_value=0, max_value=nprocs - 1))
            dst = draw(
                st.integers(min_value=0, max_value=nprocs - 2).map(
                    lambda d, s=src: d if d < s else d + 1
                )
            )
            size = draw(st.sampled_from([0, 64, 2048]))
            events[src].append(("send", dst, size))
            events[dst].append(("recv", -1 if wildcard[dst] else src))
        else:
            proc = draw(st.integers(min_value=0, max_value=nprocs - 1))
            micros = draw(st.integers(min_value=1, max_value=50))
            events[proc].append(("compute", micros * 1e-6))
    return TraceProgram.build("prop", nprocs, events)


@settings(max_examples=40, deadline=None)
@given(traces())
def test_export_import_is_identity_on_content_address(program):
    again = parse_jsonl(program.to_jsonl())
    assert again.fingerprint == program.fingerprint
    assert again.ranks == program.ranks
    assert again.nprocs == program.nprocs
    # and once more, through the exported form of the re-import
    assert parse_jsonl(again.to_jsonl()).fingerprint == program.fingerprint


@settings(max_examples=25, deadline=None)
@given(traces(), st.integers(min_value=0, max_value=2**31 - 1))
def test_replayed_model_engine_parity(program, seed):
    model = program.model()
    compiled = compile_program(model, program.nprocs)
    timing = HockneyTiming(1e-5, 1e8)
    a = VirtualMachine(program.nprocs, timing, seed=seed).run(model)
    b = VirtualMachine(program.nprocs, timing, seed=seed).run(compiled)
    assert b.elapsed == a.elapsed
    assert b.finish_times == a.finish_times
    va = BatchedVirtualMachine(
        program.nprocs, timing, seed=seed, runs=4
    ).run(model)
    vb = BatchedVirtualMachine(
        program.nprocs, timing, seed=seed, runs=4
    ).run(compiled)
    assert [r.elapsed for r in vb] == [r.elapsed for r in va]
