"""Unit tests for the content-addressed registry store.

The store's contract (ISSUE 8 tentpole): content-addressed writes are
atomic and idempotent, aliases are single-file atomic pointers (the
hot-swap primitive), and a corrupt CAS entry follows the prediction
cache's quarantine discipline -- ``*.corrupt`` rename, plain miss,
re-upload repairs.
"""

import json
import threading

import numpy as np
import pytest

from repro.mpibench import BenchmarkResult, DistributionDB, Histogram
from repro.registry import (
    NotOwner,
    RegistryError,
    RegistryStore,
    UnknownRef,
)


def _result(op="isend", nodes=4, ppn=1, sizes=(0, 1024), centre=100e-6,
            cluster="perseus"):
    rng = np.random.default_rng(nodes * 1000 + ppn)
    hists = {}
    for size in sizes:
        loc = centre * (1 + size / 1024) * (nodes * ppn) ** 0.25
        hists[size] = Histogram.from_samples(
            loc + rng.gamma(3.0, loc / 10, size=64), bins=20
        )
    return BenchmarkResult(
        op=op, nodes=nodes, ppn=ppn, cluster=cluster, histograms=hists, reps=64
    )


def make_db(cluster="perseus", configs=((2, 1), (4, 1))) -> DistributionDB:
    db = DistributionDB()
    for nodes, ppn in configs:
        db.add(_result(nodes=nodes, ppn=ppn, cluster=cluster))
    return db


@pytest.fixture(params=["disk", "memory"])
def store(request, tmp_path):
    root = tmp_path / "registry" if request.param == "disk" else None
    return RegistryStore(root)


class TestPutResolveGet:
    def test_put_returns_meta_and_get_round_trips(self, store):
        db = make_db()
        meta = store.put(db, tenant="alice", source="test")
        fpr = db.fingerprint()
        assert meta["fingerprint"] == fpr
        assert meta["tenant"] == "alice"
        assert meta["cluster"] == "perseus"
        assert meta["results"] == len(db)
        assert meta["bytes"] > 0
        assert store.resolve(fpr) == fpr
        # LRU serves back the very object we registered.
        assert store.get(fpr) is db

    def test_put_freezes_the_db(self, store):
        db = make_db()
        store.put(db)
        assert db.frozen
        with pytest.raises(RuntimeError, match="frozen"):
            db.add(_result(nodes=8))

    def test_put_is_idempotent_and_skips_quota(self, store):
        db = make_db()
        first = store.put(db, tenant="alice")

        def boom(nbytes):
            raise AssertionError("quota check must not run on re-upload")

        again = store.put(make_db(), tenant="bob", check=boom)
        # Same content: same entry, first uploader keeps ownership.
        assert again["fingerprint"] == first["fingerprint"]
        assert again["tenant"] == "alice"
        assert len(store) == 1

    def test_check_runs_before_any_write(self, store):
        def refuse(nbytes):
            raise RuntimeError("quota")

        with pytest.raises(RuntimeError, match="quota"):
            store.put(make_db(), check=refuse)
        assert len(store) == 0
        assert store.stats()["bytes"] == 0

    def test_cold_load_bit_identical(self, tmp_path):
        root = tmp_path / "reg"
        db = make_db()
        RegistryStore(root).put(db)
        # A brand-new store (fresh process, empty LRU) reloads the
        # identical content.
        reloaded = RegistryStore(root).get(db.fingerprint())
        assert reloaded is not db
        assert reloaded.fingerprint() == db.fingerprint()
        assert reloaded.frozen

    def test_unknown_ref_raises(self, store):
        with pytest.raises(UnknownRef):
            store.resolve("a" * 64)
        with pytest.raises(UnknownRef):
            store.get("no-such-alias")

    def test_malformed_ref_raises_registry_error(self, store):
        with pytest.raises(RegistryError):
            store.resolve("")
        with pytest.raises(RegistryError):
            store.resolve("spaces are bad")
        with pytest.raises(RegistryError):
            store.resolve(None)


class TestAliases:
    def test_alias_set_resolve_and_listing(self, store):
        db = make_db()
        fpr = db.fingerprint()
        store.put(db, tenant="alice")
        assert store.set_alias("perseus@v1", fpr, tenant="alice") == fpr
        assert store.resolve("perseus@v1") == fpr
        assert store.aliases()["perseus@v1"]["fingerprint"] == fpr
        entry = store.entries()[0]
        assert entry["aliases"] == ["perseus@v1"]

    def test_alias_repoint_is_hot_swap(self, store):
        db1, db2 = make_db(), make_db(cluster="gigabit")
        store.put(db1)
        store.put(db2)
        store.set_alias("prod", db1.fingerprint())
        assert store.resolve("prod") == db1.fingerprint()
        store.set_alias("prod", db2.fingerprint())
        # Fresh resolution sees the new target; the old fingerprint is
        # still directly addressable (in-flight requests pinned to it
        # keep working).
        assert store.resolve("prod") == db2.fingerprint()
        assert store.resolve(db1.fingerprint()) == db1.fingerprint()

    def test_alias_to_alias_ref(self, store):
        db = make_db()
        store.put(db)
        store.set_alias("v1", db.fingerprint())
        # set_alias accepts an alias as the ref and stores the resolved
        # fingerprint, not a chain.
        store.set_alias("prod", "v1")
        assert store.aliases()["prod"]["fingerprint"] == db.fingerprint()

    def test_alias_to_unknown_ref_rejected(self, store):
        with pytest.raises(UnknownRef):
            store.set_alias("prod", "b" * 64)

    def test_alias_cannot_look_like_fingerprint(self, store):
        db = make_db()
        store.put(db)
        with pytest.raises(RegistryError):
            store.set_alias("c" * 64, db.fingerprint())

    def test_alias_to_deleted_db_is_unknown(self, store):
        db = make_db()
        store.put(db)
        store.set_alias("prod", db.fingerprint())
        store.delete(db.fingerprint())
        with pytest.raises(UnknownRef):
            store.resolve("prod")


class TestDelete:
    def test_delete_removes_cas_meta_aliases(self, store):
        db = make_db()
        fpr = db.fingerprint()
        store.put(db, tenant="alice")
        store.set_alias("prod", fpr)
        assert store.delete(fpr, tenant="alice") == fpr
        assert len(store) == 0
        assert store.aliases() == {}
        assert store.meta(fpr) is None
        with pytest.raises(UnknownRef):
            store.get(fpr)

    def test_delete_by_other_tenant_refused(self, store):
        db = make_db()
        store.put(db, tenant="alice")
        with pytest.raises(NotOwner):
            store.delete(db.fingerprint(), tenant="bob")
        assert len(store) == 1

    def test_admin_delete_ignores_ownership(self, store):
        db = make_db()
        store.put(db, tenant="alice")
        store.delete(db.fingerprint())  # tenant=None: administrative
        assert len(store) == 0


class TestQuarantine:
    def test_corrupt_entry_quarantined_and_reuploadable(self, tmp_path):
        root = tmp_path / "reg"
        store = RegistryStore(root, lru_size=0)  # force disk reads
        db = make_db()
        fpr = db.fingerprint()
        store.put(db)
        cas = root / "cas" / f"db-{fpr}.json"
        cas.write_text('{"version": 2, "times": [0.0')
        seen = []
        store.on_corrupt = seen.append
        with pytest.raises(UnknownRef, match="quarantined"):
            store.get(fpr)
        assert store.corruptions == 1
        assert seen == [cas]
        assert not cas.exists()
        assert cas.with_suffix(".corrupt").exists()
        # Plain miss now; re-uploading the same content repairs it.
        with pytest.raises(UnknownRef):
            store.resolve(fpr)
        store.put(make_db())
        assert store.get(fpr).fingerprint() == fpr

    def test_tampered_content_detected_by_hash(self, tmp_path):
        root = tmp_path / "reg"
        store = RegistryStore(root, lru_size=0)
        db = make_db()
        fpr = db.fingerprint()
        store.put(db)
        cas = root / "cas" / f"db-{fpr}.json"
        # Valid JSON, valid DB document -- but not the content the
        # fingerprint promises.
        cas.write_text(json.dumps(make_db(cluster="evil").to_doc()))
        with pytest.raises(UnknownRef, match="quarantined"):
            store.get(fpr)
        assert store.corruptions == 1


class TestConcurrency:
    def test_same_content_upload_race_converges(self, tmp_path):
        """ISSUE satellite: concurrent same-content uploads are atomic
        -- one CAS entry, no torn index, every thread succeeds."""
        root = tmp_path / "reg"
        fpr = make_db().fingerprint()
        n = 8
        barrier = threading.Barrier(n)
        errors = []

        def upload(i):
            store = RegistryStore(root)  # own store ~ own process
            db = make_db()
            barrier.wait()
            try:
                store.put(db, tenant=f"t{i}")
                store.set_alias("race", db.fingerprint())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=upload, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        survivor = RegistryStore(root)
        assert len(survivor) == 1
        assert survivor.resolve("race") == fpr
        # The CAS entry parses and round-trips: no torn write.
        assert survivor.get(fpr).fingerprint() == fpr
        # No stray temp files left behind.
        assert list((root / "cas").glob("*.tmp")) == []

    def test_concurrent_promotion_never_torn(self, tmp_path):
        """Readers racing a promotion see old or new fingerprint --
        never a torn alias file."""
        root = tmp_path / "reg"
        writer = RegistryStore(root)
        db1, db2 = make_db(), make_db(cluster="gigabit")
        writer.put(db1)
        writer.put(db2)
        targets = (db1.fingerprint(), db2.fingerprint())
        writer.set_alias("prod", targets[0])
        stop = threading.Event()
        bad = []

        def read():
            reader = RegistryStore(root)
            while not stop.is_set():
                fpr = reader.resolve("prod")
                if fpr not in targets:  # pragma: no cover - failure path
                    bad.append(fpr)

        threads = [threading.Thread(target=read) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(50):
            writer.set_alias("prod", targets[i % 2])
        stop.set()
        for t in threads:
            t.join()
        assert bad == []


class TestIntrospection:
    def test_lru_eviction(self, store):
        store.lru_size = 1
        db1, db2 = make_db(), make_db(cluster="gigabit")
        store.put(db1)
        store.put(db2)
        assert len(store._lru) == 1
        # Evicted entries are still servable (reloaded from the CAS).
        assert store.get(db1.fingerprint()).fingerprint() == db1.fingerprint()

    def test_tenant_usage_and_stats(self, store):
        db1, db2 = make_db(), make_db(cluster="gigabit")
        m1 = store.put(db1, tenant="alice")
        store.put(db2, tenant="bob")
        count, used = store.tenant_usage("alice")
        assert (count, used) == (1, m1["bytes"])
        stats = store.stats()
        assert stats["dbs"] == 2
        assert stats["bytes"] == sum(m["bytes"] for m in store.entries())
        assert stats["aliases"] == 0
        assert stats["corruptions"] == 0
        store.set_alias("prod", db1.fingerprint())
        assert store.stats()["aliases"] == 1
        assert store.stats()["index_mtime"] is not None
