"""Unit tests for tenant namespaces: quotas, rate limiting, names."""

import pytest

from repro.registry import (
    QuotaExceeded,
    RegistryError,
    RegistryStore,
    TenantManager,
    TenantQuota,
    TenantThrottled,
    clean_tenant,
)

from .test_store import make_db


class TestCleanTenant:
    def test_default_namespace(self):
        assert clean_tenant(None) == "public"
        assert clean_tenant("") == "public"
        assert clean_tenant("   ") == "public"

    def test_valid_names_pass_through(self):
        assert clean_tenant("alice") == "alice"
        assert clean_tenant("team-a@prod.eu") == "team-a@prod.eu"

    def test_malformed_names_rejected(self):
        for bad in ("has space", "a/b", "-leading", "x" * 65):
            with pytest.raises(RegistryError):
                clean_tenant(bad)


class TestUploadQuota:
    def test_db_count_limit(self):
        store = RegistryStore()
        manager = TenantManager(store, TenantQuota(max_dbs=1, retry_after=2.5))
        store.put(make_db(), tenant="alice")
        with pytest.raises(QuotaExceeded) as info:
            manager.check_upload("alice", 100)
        assert info.value.retry_after == 2.5
        # Another tenant is unaffected.
        manager.check_upload("bob", 100)

    def test_byte_limit(self):
        store = RegistryStore()
        meta = store.put(make_db(), tenant="alice")
        manager = TenantManager(
            store, TenantQuota(max_bytes=meta["bytes"] + 10)
        )
        manager.check_upload("alice", 10)
        with pytest.raises(QuotaExceeded):
            manager.check_upload("alice", 11)

    def test_usage_report(self):
        store = RegistryStore()
        meta = store.put(make_db(), tenant="alice")
        manager = TenantManager(store)
        usage = manager.usage("alice")
        assert usage["dbs"] == 1
        assert usage["bytes"] == meta["bytes"]
        assert manager.usage("bob")["dbs"] == 0


class TestRateLimit:
    def test_disabled_by_default(self):
        manager = TenantManager(RegistryStore())
        for _ in range(100):
            manager.admit("alice")
        assert manager.throttled == 0

    def test_token_bucket_exhaustion_and_refill(self):
        now = [0.0]
        manager = TenantManager(
            RegistryStore(),
            TenantQuota(rate=2.0, burst=2),
            clock=lambda: now[0],
        )
        manager.admit("alice")
        manager.admit("alice")
        with pytest.raises(TenantThrottled) as info:
            manager.admit("alice")
        # Empty bucket at 2 tokens/s: one token is 0.5 s away.
        assert info.value.retry_after == pytest.approx(0.5)
        assert manager.throttled == 1
        now[0] += 0.5
        manager.admit("alice")  # refilled

    def test_buckets_are_per_tenant(self):
        now = [0.0]
        manager = TenantManager(
            RegistryStore(),
            TenantQuota(rate=1.0, burst=1),
            clock=lambda: now[0],
        )
        manager.admit("alice")
        with pytest.raises(TenantThrottled):
            manager.admit("alice")
        manager.admit("bob")  # bob's bucket is untouched
