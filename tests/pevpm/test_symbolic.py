"""Tests for symbolic performance-model extraction."""

import pytest

from repro.apps.jacobi import parse_jacobi
from repro.apps.taskfarm import make_tasks, taskfarm_model
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    extract_symbolic_model,
    predict,
    static_profile,
    timing_from_db,
)
from repro.simnet import perseus

SPEC = perseus(32)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=2, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend([(2, 1), (8, 1), (32, 1)], sizes=[0, 1024, 2048])


@pytest.fixture(scope="module")
def jacobi_setup():
    params = {"iterations": 50, "xsize": 256, "serial_time": SPEC.jacobi_serial_time}
    return parse_jacobi(), params


class TestStaticProfile:
    def test_jacobi_profile(self, jacobi_setup):
        model, params = jacobi_setup
        prof = static_profile(model, 8, params)
        assert prof.nprocs == 8
        # Interior processes receive twice per iteration.
        assert prof.recvs_critical == 50 * 2
        assert prof.sends_critical == 50 * 2
        assert prof.serial_critical == pytest.approx(
            50 * SPEC.jacobi_serial_time / 8
        )
        assert prof.total_messages == 50 * 2 * 7
        assert prof.has_communication

    def test_single_process_profile(self, jacobi_setup):
        model, params = jacobi_setup
        prof = static_profile(model, 1, params)
        assert prof.total_messages == 0
        assert not prof.has_communication

    def test_irregular_program_profiles(self):
        """The dummy-match feeding lets a task-farm model be walked."""
        tasks = make_tasks(10, seed=1)
        prof = static_profile(taskfarm_model(tasks), 4)
        assert prof.total_messages > 0

    def test_bad_model_type(self):
        with pytest.raises(TypeError):
            static_profile(42, 2)


class TestSymbolicModel:
    def test_extraction_and_holdout_accuracy(self, db, jacobi_setup):
        model, params = jacobi_setup
        timing = timing_from_db(db, "distribution")
        sym = extract_symbolic_model(
            model, timing, [2, 8, 32], params=params, runs=3, seed=1
        )
        assert sym.alpha >= 0 and sym.beta >= 0
        assert sym.rms_relative_error < 0.10

        # Held-out machine size: closed form vs full Monte Carlo.
        direct = predict(model, 16, timing, runs=3, seed=1, params=params).mean_time
        err = abs(sym.time(16) - direct) / direct
        assert err < 0.15, f"symbolic holdout error {err * 100:.1f}%"

    def test_speedup_and_curve(self, db, jacobi_setup):
        model, params = jacobi_setup
        timing = timing_from_db(db, "distribution")
        sym = extract_symbolic_model(
            model, timing, [2, 16], params=params, runs=2, seed=1
        )
        curve = sym.curve([2, 4, 8, 16])
        assert sorted(curve) == [2, 4, 8, 16]
        assert curve[16] < curve[2]  # more procs, less time, in this regime
        serial = 50 * SPEC.jacobi_serial_time
        assert sym.speedup(16, serial) > sym.speedup(2, serial)
        with pytest.raises(ValueError):
            sym.speedup(4, 0.0)

    def test_needs_two_anchors(self, db, jacobi_setup):
        model, params = jacobi_setup
        timing = timing_from_db(db, "distribution")
        with pytest.raises(ValueError):
            extract_symbolic_model(model, timing, [8, 8], params=params)

    def test_queries_are_cheap(self, db, jacobi_setup):
        import time

        model, params = jacobi_setup
        timing = timing_from_db(db, "distribution")
        sym = extract_symbolic_model(
            model, timing, [2, 8], params=params, runs=2, seed=1
        )
        t0 = time.perf_counter()
        mc = predict(model, 32, timing, runs=3, seed=1, params=params)
        t_mc = time.perf_counter() - t0
        t0 = time.perf_counter()
        sym.time(32)
        t_sym = time.perf_counter() - t0
        assert t_sym < t_mc / 2  # the whole point of the extension
