"""Tests for the virtual parallel machine (sweep/match algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pevpm.machine import (
    ANY_SOURCE,
    ModelDeadlock,
    ProcContext,
    VirtualMachine,
)
from repro.pevpm.timing import TimingModel
from repro.pevpm.trace import LossReport


class FixedTiming(TimingModel):
    """Deterministic timing for exact assertions."""

    name = "fixed"

    def __init__(self, oneway=100e-6, local=10e-6, gap=0.0, intra_oneway=5e-6):
        self.oneway = oneway
        self.local = local
        self.gap = gap
        self.intra_oneway = intra_oneway

    def one_way_time(self, size, contention, rng, intra=False):
        return self.intra_oneway if intra else self.oneway

    def local_send_time(self, size, contention, rng, intra=False):
        return self.local

    def serialisation_gap(self, size, intra=False):
        return 0.0 if intra else self.gap


class ContentionProbe(TimingModel):
    """Records the contention level passed to every sample."""

    name = "probe"

    def __init__(self):
        self.seen = []

    def one_way_time(self, size, contention, rng, intra=False):
        self.seen.append(contention)
        return 100e-6

    def local_send_time(self, size, contention, rng, intra=False):
        return 10e-6


def run(program, nprocs, timing=None, **kw):
    vm = VirtualMachine(nprocs, timing or FixedTiming(), **kw)
    return vm.run(program)


class TestBasicExecution:
    def test_serial_only(self):
        def program(ctx):
            yield ctx.serial(0.5)
            yield ctx.serial(0.25)

        r = run(program, 3)
        assert r.finish_times == [0.75] * 3
        assert r.compute_time == [0.75] * 3
        assert r.messages == 0

    def test_single_message_timing(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 1024)
            else:
                yield ctx.recv(0)

        r = run(program, 2)
        # Sender: local cost 10us.  Receiver: arrival at depart(0) + 100us.
        assert r.finish_times[0] == pytest.approx(10e-6)
        assert r.finish_times[1] == pytest.approx(100e-6)
        assert r.messages == 1

    def test_recv_posted_late_completes_at_post(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)
            else:
                yield ctx.serial(1.0)
                yield ctx.recv(0)

        r = run(program, 2)
        assert r.finish_times[1] == pytest.approx(1.0)

    def test_sender_continues_immediately(self):
        """Sends are nonblocking at the model level: the sender's clock
        advances only by the local send cost."""

        def program(ctx):
            if ctx.procnum == 0:
                for _ in range(5):
                    yield ctx.send(1, 8)
                yield ctx.serial(0.001)
            else:
                for _ in range(5):
                    yield ctx.recv(0)

        r = run(program, 2)
        assert r.finish_times[0] == pytest.approx(5 * 10e-6 + 0.001)

    def test_pingpong_chain(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)
                yield ctx.recv(1)
            else:
                yield ctx.recv(0)
                yield ctx.send(0, 8)

        r = run(program, 2)
        # 0 sends (departs t=0), 1 receives at 100us, replies (departs
        # 100us), 0 receives at 200us.
        assert r.finish_times[0] == pytest.approx(200e-6)

    def test_wildcard_recv_matches_earliest_arrival(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.serial(0.010)  # sends late
                yield ctx.send(2, 8)
            elif ctx.procnum == 1:
                yield ctx.send(2, 8)  # sends immediately
            else:
                yield ctx.recv(ANY_SOURCE)
                yield ctx.recv(ANY_SOURCE)

        r = run(program, 3)
        # First wildcard match must be proc 1's message (arrives 100us),
        # second proc 0's (arrives 10.1ms).
        assert r.finish_times[2] == pytest.approx(0.010 + 100e-6)

    def test_message_order_per_pair_fifo(self):
        """Two messages same pair: arrivals never overtake."""

        class JitterTiming(FixedTiming):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def one_way_time(self, size, contention, rng, intra=False):
                # First message slow, second fast: FIFO must still hold.
                self.calls += 1
                return 500e-6 if self.calls == 1 else 10e-6

        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)
                yield ctx.send(1, 8)
            else:
                yield ctx.recv(0)
                t_first = None  # noqa: F841 -- documented ordering below
                yield ctx.recv(0)

        r = run(program, 2, timing=JitterTiming())
        # Second arrival clamped to >= first (500us), so receiver finishes
        # at 500us, not at 10us + epsilon.
        assert r.finish_times[1] >= 500e-6


class TestContentionAndNic:
    def test_contention_seen_by_sampler(self):
        """With N simultaneous sender/receiver pairs, samples see the
        scoreboard population."""
        probe = ContentionProbe()

        def program(ctx):
            half = ctx.numprocs // 2
            if ctx.procnum < half:
                yield ctx.send(ctx.procnum + half, 8)
            else:
                yield ctx.recv(ctx.procnum - half)

        run(program, 16, timing=probe)
        assert max(probe.seen) >= 8  # all 8 messages outstanding at match

    def test_nic_tx_serialisation(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)
                yield ctx.send(2, 8)
            else:
                yield ctx.recv(0)

        r = run(program, 3, timing=FixedTiming(gap=50e-6))
        # Second message departs at 10us but cannot inject until the NIC
        # drains the first at 50us; it arrives at 50 + 100 us.
        assert r.finish_times[1] == pytest.approx(100e-6)
        assert r.finish_times[2] == pytest.approx(50e-6 + 100e-6, rel=1e-6)

    def test_nic_serialisation_off(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)
                yield ctx.send(2, 8)
            else:
                yield ctx.recv(0)

        r = run(program, 3, timing=FixedTiming(gap=50e-6), nic_serialisation="off")
        assert r.finish_times[2] == pytest.approx(10e-6 + 100e-6)

    def test_intra_node_messages_bypass_nic(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)  # same node when ppn=2
            elif ctx.procnum == 1:
                yield ctx.recv(0)

        r = run(program, 2, timing=FixedTiming(gap=50e-6), ppn=2)
        assert r.finish_times[1] == pytest.approx(5e-6)  # intra_oneway

    def test_invalid_nic_mode(self):
        with pytest.raises(ValueError):
            VirtualMachine(2, FixedTiming(), nic_serialisation="sideways")


class TestDeadlockAndErrors:
    def test_mutual_recv_deadlock(self):
        def program(ctx):
            yield ctx.recv((ctx.procnum + 1) % ctx.numprocs)

        with pytest.raises(ModelDeadlock) as exc:
            run(program, 3)
        assert set(exc.value.blocked) == {0, 1, 2}

    def test_deadlock_reports_orphans(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 8)  # never received
                yield ctx.recv(1)  # never sent
            else:
                yield ctx.recv(2)

        with pytest.raises(ModelDeadlock) as exc:
            run(program, 3)
        assert len(exc.value.orphans) == 1
        assert exc.value.orphans[0].dst == 1

    def test_op_validation(self):
        ctx = ProcContext(0, 4)
        with pytest.raises(ValueError):
            ctx.send(0, 8)  # self-send
        with pytest.raises(ValueError):
            ctx.send(9, 8)
        with pytest.raises(ValueError):
            ctx.send(1, -1)
        with pytest.raises(ValueError):
            ctx.recv(17)
        with pytest.raises(ValueError):
            ctx.serial(-1.0)

    def test_unknown_op_rejected(self):
        def program(ctx):
            yield ("teleport", 1)

        with pytest.raises(ValueError, match="unknown model operation"):
            run(program, 1)

    def test_max_sweeps_guard(self):
        def program(ctx):
            if ctx.procnum == 0:
                while True:
                    yield ctx.send(1, 8)
                    yield ctx.recv(1)
            else:
                while True:
                    yield ctx.recv(0)
                    yield ctx.send(0, 8)

        vm = VirtualMachine(2, FixedTiming(), max_sweeps=10)
        with pytest.raises(RuntimeError, match="exceeded"):
            vm.run(program)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            VirtualMachine(0, FixedTiming())
        with pytest.raises(ValueError):
            VirtualMachine(2, FixedTiming(), ppn=0)


class TestAccountingAndTrace:
    def test_time_decomposition_sums(self):
        def program(ctx):
            other = 1 - ctx.procnum
            yield ctx.serial(0.001)
            yield ctx.send(other, 64)
            yield ctx.recv(other)
            yield ctx.serial(0.002)

        r = run(program, 2)
        for p in range(2):
            total = r.compute_time[p] + r.send_time[p] + r.recv_wait_time[p]
            assert total == pytest.approx(r.finish_times[p])

    def test_efficiency(self):
        def program(ctx):
            yield ctx.serial(1.0 if ctx.procnum == 0 else 0.5)

        r = run(program, 2)
        eff = r.efficiency()
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] == pytest.approx(1.0)  # it finished everything it had

    def test_trace_and_loss_report(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.serial(0.001, label="setup")
                yield ctx.send(1, 64, label="edge")
            else:
                yield ctx.recv(0, label="edge-recv")

        vm = VirtualMachine(2, FixedTiming(), trace=True)
        r = vm.run(program)
        assert r.trace is not None and len(r.trace) == 3
        labels = {(e.category, e.label) for e in r.trace.events}
        assert ("serial", "setup") in labels
        assert ("recv", "edge-recv") in labels
        report = LossReport(r.trace, r.elapsed, 2)
        per = report.per_process()
        assert per[0]["compute"] == pytest.approx(0.001)
        assert 0.0 <= report.total_loss_fraction() <= 1.0
        assert report.hotspots()
        text = report.format()
        assert "loss" in text

    def test_peak_contention_recorded(self):
        def program(ctx):
            half = ctx.numprocs // 2
            if ctx.procnum < half:
                yield ctx.send(ctx.procnum + half, 8)
            else:
                yield ctx.recv(ctx.procnum - half)

        r = run(program, 8)
        assert r.peak_contention == 4

    def test_determinism_given_seed(self):
        import numpy as np
        from repro.mpibench import BenchmarkResult, DistributionDB, Histogram
        from repro.pevpm.timing import DistributionTiming

        rng = np.random.default_rng(0)
        db = DistributionDB()
        hists = {
            64: Histogram.from_samples(100e-6 + rng.gamma(3, 10e-6, 500), bins=30)
        }
        db.add(BenchmarkResult(op="isend", nodes=2, ppn=1, cluster="c", histograms=hists))
        db.add(
            BenchmarkResult(
                op="isend_local", nodes=2, ppn=1, cluster="c",
                histograms={
                    64: Histogram.from_samples(10e-6 + rng.gamma(2, 2e-6, 500), bins=30)
                },
            )
        )

        def program(ctx):
            other = 1 - ctx.procnum
            for _ in range(20):
                if ctx.procnum == 0:
                    yield ctx.send(other, 64)
                    yield ctx.recv(other)
                else:
                    yield ctx.recv(other)
                    yield ctx.send(other, 64)

        a = VirtualMachine(2, DistributionTiming(db), seed=5).run(program)
        b = VirtualMachine(2, DistributionTiming(db), seed=5).run(program)
        c = VirtualMachine(2, DistributionTiming(db), seed=6).run(program)
        assert a.elapsed == b.elapsed
        assert a.elapsed != c.elapsed


@given(
    nprocs=st.integers(2, 6),
    rounds=st.integers(1, 6),
    seed=st.integers(0, 5),
)
@settings(max_examples=30, deadline=None)
def test_ring_program_always_completes(nprocs, rounds, seed):
    """Property: a ring pass-the-token program never deadlocks and time
    grows with the number of rounds."""

    def program(ctx):
        right = (ctx.procnum + 1) % ctx.numprocs
        left = (ctx.procnum - 1) % ctx.numprocs
        for _ in range(rounds):
            if ctx.procnum == 0:
                yield ctx.send(right, 64)
                yield ctx.recv(left)
            else:
                yield ctx.recv(left)
                yield ctx.send(right, 64)

    r = run(program, nprocs)
    assert r.messages == rounds * nprocs
    assert r.elapsed >= rounds * nprocs * 100e-6 * 0.99
    assert not r.orphans
