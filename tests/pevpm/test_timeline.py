"""Tests for the trace timeline renderer."""

import pytest

from repro.pevpm import iteration_profile, render_timeline
from repro.pevpm.machine import VirtualMachine
from tests.pevpm.test_machine import FixedTiming


def _traced_run(nprocs=2, rounds=3):
    def program(ctx):
        other = 1 - ctx.procnum
        for _ in range(rounds):
            yield ctx.serial(1e-3, label="work")
            if ctx.procnum == 0:
                yield ctx.send(other, 64, label="fwd")
                yield ctx.recv(other, label="ack")
            else:
                yield ctx.recv(other, label="fwd")
                yield ctx.send(other, 64, label="ack")

    vm = VirtualMachine(nprocs, FixedTiming(), trace=True)
    result = vm.run(program)
    return result


class TestRenderTimeline:
    def test_renders_rows_and_glyphs(self):
        result = _traced_run()
        out = render_timeline(result.trace, 2, width=60)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 processes
        assert lines[1].startswith("p0  |")
        body = lines[1] + lines[2]
        assert "#" in body  # compute
        assert "." in body  # recv wait

    def test_zoom_window(self):
        result = _traced_run(rounds=5)
        full = render_timeline(result.trace, 2, width=40)
        zoom = render_timeline(
            result.trace, 2, width=40, t_start=0.0, t_end=result.elapsed / 5
        )
        assert full != zoom

    def test_empty_trace_rejected(self):
        from repro.pevpm.trace import TraceRecorder

        with pytest.raises(ValueError):
            render_timeline(TraceRecorder(), 2)

    def test_bad_window_rejected(self):
        result = _traced_run()
        with pytest.raises(ValueError):
            render_timeline(result.trace, 2, t_start=1.0, t_end=0.5)
        with pytest.raises(ValueError):
            render_timeline(result.trace, 2, width=1)


class TestIterationProfile:
    def test_per_iteration_durations(self):
        result = _traced_run(rounds=4)
        gaps = iteration_profile(result.trace, 0, "work")
        assert len(gaps) == 3
        assert all(g > 1e-3 for g in gaps)  # work + round trip per iter

    def test_requires_two_occurrences(self):
        result = _traced_run(rounds=1)
        with pytest.raises(ValueError):
            iteration_profile(result.trace, 0, "work")
        with pytest.raises(ValueError):
            iteration_profile(result.trace, 0, "nonexistent")
