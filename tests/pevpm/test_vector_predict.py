"""Tests for the batched vectorised Monte Carlo engine.

The engine's contract (see :mod:`repro.pevpm.vector` and DESIGN.md §6):
batch mode is deterministic for a given seed -- bit-identical across
repeats *and* worker counts -- and statistically equivalent to the
per-run engine (exactly equal under deterministic timing models, mean
within 1% under distribution sampling).
"""

import numpy as np
import pytest

from repro.apps.taskfarm import taskfarm_model
from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    BatchedVirtualMachine,
    HockneyTiming,
    ModelDeadlock,
    VectorScoreboard,
    VirtualMachine,
    clamp_times,
    predict,
    run_seeds,
    timing_from_db,
)
from repro.pevpm.interpreter import compile_model
from repro.simnet import perseus

SPEC = perseus(16)
ITER = 20


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@pytest.fixture(scope="module")
def jacobi_params():
    return {
        "iterations": ITER,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }


def _jacobi_program(params):
    return compile_model(parse_jacobi(), params)


class TestClampTimes:
    def test_scalar(self):
        assert clamp_times(-1.5) == 0.0
        assert clamp_times(0.0) == 0.0
        assert clamp_times(2.5) == 2.5

    def test_array(self):
        out = clamp_times(np.array([-1.0, 0.0, 3.0]))
        assert isinstance(out, np.ndarray)
        assert list(out) == [0.0, 0.0, 3.0]


class TestDeterminism:
    def test_bit_identical_across_repeats(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        a = predict(parse_jacobi(), 4, timing, runs=8, seed=5,
                    params=jacobi_params, vector_runs=True)
        b = predict(parse_jacobi(), 4, timing, runs=8, seed=5,
                    params=jacobi_params, vector_runs=True)
        assert a.times == b.times

    def test_bit_identical_across_worker_counts(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        one = predict(parse_jacobi(), 4, timing, runs=8, seed=5,
                      params=jacobi_params, vector_runs=True, workers=1)
        two = predict(parse_jacobi(), 4, timing, runs=8, seed=5,
                      params=jacobi_params, vector_runs=True, workers=2)
        assert one.times == two.times

    def test_chunking_gives_prefix_property(self, db, jacobi_params):
        # Chunk boundaries are fixed (VECTOR_BATCH), independent of the
        # total: asking for more runs only appends, never reshuffles.
        timing = timing_from_db(db, mode="distribution")
        short = predict(parse_jacobi(), 4, timing, runs=6, seed=5,
                        params=jacobi_params, vector_runs=True)
        # 6 runs fit one chunk; 6-run prefix of a 10-run call matches
        # only if the chunk draws in run-major order -- it draws in
        # decision-major order, so the *chunk*, not the run, is the
        # reproducibility unit: equal chunk => equal times.
        again = predict(parse_jacobi(), 4, timing, runs=6, seed=5,
                        params=jacobi_params, vector_runs=True)
        assert short.times == again.times

    def test_different_seeds_differ(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        a = predict(parse_jacobi(), 4, timing, runs=8, seed=5,
                    params=jacobi_params, vector_runs=True)
        b = predict(parse_jacobi(), 4, timing, runs=8, seed=6,
                    params=jacobi_params, vector_runs=True)
        assert a.times != b.times

    def test_runs_differ_within_batch(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(parse_jacobi(), 4, timing, runs=8, seed=0,
                       params=jacobi_params, vector_runs=True)
        assert len(set(pred.times)) > 1


class TestExactParityDeterministicTiming:
    """With a deterministic timing model every run is the same, so the
    batch-mean match order equals the scalar (block time, procnum) order
    and the two engines must agree bit-for-bit -- NIC serialisation
    occupancy chains included."""

    @pytest.mark.parametrize("nic", ["off", "tx", "txrx"])
    def test_hockney_bitwise_equal(self, jacobi_params, nic):
        timing = HockneyTiming(latency=1e-4, bandwidth=1e7)
        program = _jacobi_program(jacobi_params)
        root = np.random.SeedSequence(1)
        serial = [
            VirtualMachine(8, timing, seed=s, nic_serialisation=nic)
            .run(program).elapsed
            for s in run_seeds(root, 4)
        ]
        batch = BatchedVirtualMachine(
            8, timing, seed=root, runs=4, nic_serialisation=nic
        ).run(program)
        assert [r.elapsed for r in batch] == serial

    def test_per_proc_accounting_matches(self, jacobi_params):
        timing = HockneyTiming(latency=1e-4, bandwidth=1e7)
        program = _jacobi_program(jacobi_params)
        root = np.random.SeedSequence(2)
        scalar = VirtualMachine(4, timing, seed=run_seeds(root, 1)[0]).run(program)
        batch = BatchedVirtualMachine(4, timing, seed=root, runs=1).run(program)[0]
        assert batch.finish_times == pytest.approx(scalar.finish_times, abs=0.0)
        assert batch.compute_time == pytest.approx(scalar.compute_time, abs=0.0)
        assert batch.send_time == pytest.approx(scalar.send_time, abs=0.0)
        assert batch.recv_wait_time == pytest.approx(scalar.recv_wait_time, abs=0.0)
        assert batch.messages == scalar.messages
        assert batch.peak_contention == scalar.peak_contention


class TestStatisticalParity:
    def test_mean_within_one_percent(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        kw = dict(runs=64, seed=1, params=jacobi_params)
        serial = predict(parse_jacobi(), 8, timing, **kw)
        vector = predict(parse_jacobi(), 8, timing, vector_runs=True, **kw)
        rel = abs(vector.mean_time - serial.mean_time) / serial.mean_time
        assert rel < 0.01

    def test_multinode_ppn_parity(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        kw = dict(runs=64, seed=2, params=jacobi_params, ppn=2)
        serial = predict(parse_jacobi(), 16, timing, **kw)
        vector = predict(parse_jacobi(), 16, timing, vector_runs=True, **kw)
        rel = abs(vector.mean_time - serial.mean_time) / serial.mean_time
        assert rel < 0.01


class TestDivergenceSplitting:
    TASKS = [5e-4, 2e-4, 8e-4, 1e-4, 6e-4, 3e-4, 9e-4, 4e-4]

    def test_wildcard_model_splits_and_agrees(self, db):
        # The task farm's master decides via a wildcard receive, so runs
        # diverge and the chunk must split into congruent sub-batches.
        timing = timing_from_db(db, mode="distribution")
        program = taskfarm_model(self.TASKS)
        root = np.random.SeedSequence(7)
        runs = 64
        serial = [
            VirtualMachine(4, timing, seed=s).run(program).elapsed
            for s in run_seeds(root, runs)
        ]
        bvm = BatchedVirtualMachine(4, timing, seed=root, runs=runs)
        batch = [r.elapsed for r in bvm.run(program)]
        assert bvm.splits > 0
        rel = abs(np.mean(batch) - np.mean(serial)) / np.mean(serial)
        assert rel < 0.02

    def test_split_batches_deterministic(self, db):
        timing = timing_from_db(db, mode="distribution")
        program = taskfarm_model(self.TASKS)
        a = BatchedVirtualMachine(
            4, timing, seed=np.random.SeedSequence(3), runs=16
        ).run(program)
        b = BatchedVirtualMachine(
            4, timing, seed=np.random.SeedSequence(3), runs=16
        ).run(program)
        assert [r.elapsed for r in a] == [r.elapsed for r in b]

    def test_deadlock_detected(self):
        def bad(ctx):
            # Everyone receives; nobody sends.
            yield ctx.recv(ctx.procnum ^ 1, label="stuck")

        timing = HockneyTiming(latency=1e-4, bandwidth=1e7)
        with pytest.raises(ModelDeadlock):
            BatchedVirtualMachine(2, timing, seed=0, runs=4).run(bad)


class TestCacheComposition:
    def test_batch_and_per_run_keys_do_not_collide(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        kw = dict(runs=4, seed=1, params=jacobi_params, cache_dir=tmp_path)
        vector = predict(parse_jacobi(), 4, timing, vector_runs=True, **kw)
        serial = predict(parse_jacobi(), 4, timing, **kw)
        assert not serial.cached  # must not be served the batch result
        assert serial.times != vector.times

    def test_batch_round_trip(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        kw = dict(runs=4, seed=1, params=jacobi_params, cache_dir=tmp_path,
                  vector_runs=True)
        first = predict(parse_jacobi(), 4, timing, **kw)
        second = predict(parse_jacobi(), 4, timing, **kw)
        assert not first.cached
        assert second.cached
        assert second.times == first.times


class TestTraceFallback:
    def test_trace_last_forces_per_run_engine(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        traced = predict(parse_jacobi(), 4, timing, runs=2, seed=1,
                         params=jacobi_params, vector_runs=True, trace_last=True)
        per_run = predict(parse_jacobi(), 4, timing, runs=2, seed=1,
                          params=jacobi_params, trace_last=True)
        assert traced.times == per_run.times
        assert traced.loss_report() is not None


class TestVectorScoreboard:
    def test_fifo_and_wildcard_heads(self):
        sb = VectorScoreboard()
        d = np.zeros(3)
        first = sb.add(0, 2, 100, d, False, None)
        second = sb.add(0, 2, 100, d + 1.0, False, None)
        other = sb.add(1, 2, 50, d, False, None)
        assert sb.oldest_for(0, 2).msg_id == first.msg_id
        heads = [e.msg_id for e in sb.heads_for_dst(2)]
        assert heads == [first.msg_id, other.msg_id]
        sb.remove(first.msg_id)
        assert sb.oldest_for(0, 2).msg_id == second.msg_id

    def test_split_slices_departures(self):
        sb = VectorScoreboard()
        sb.add(0, 1, 10, np.array([1.0, 2.0, 3.0]), False, None)
        left = sb.split(np.array([0, 2]))
        entry = left.heads_for_dst(1)[0]
        assert list(entry.depart) == [1.0, 3.0]
        # Fresh ids in the clone continue the parent's counter, so a
        # post-split add never collides with surviving entries.
        new = left.add(0, 1, 10, np.array([4.0, 5.0]), False, None)
        assert new.msg_id > entry.msg_id
