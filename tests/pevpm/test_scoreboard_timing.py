"""Tests for the contention scoreboard and the timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpibench import BenchmarkResult, DistributionDB, Histogram
from repro.pevpm.scoreboard import Scoreboard, ScoreboardEntry
from repro.pevpm.timing import (
    AverageTiming,
    DistributionTiming,
    HockneyTiming,
    MinimumTiming,
    ParametricTiming,
    timing_from_db,
)


class TestScoreboard:
    def test_add_remove_roundtrip(self):
        sb = Scoreboard()
        e = sb.add(src=0, dst=1, size=128, depart_time=1.0)
        assert sb.contention == 1
        assert e.msg_id in sb
        removed = sb.remove(e.msg_id)
        assert removed is e
        assert sb.contention == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            Scoreboard().remove(42)

    def test_intra_messages_not_counted_as_contention(self):
        sb = Scoreboard()
        sb.add(0, 1, 64, 0.0, intra=True)
        sb.add(0, 2, 64, 0.0, intra=False)
        assert sb.contention == 1
        assert len(sb) == 2

    def test_oldest_for_fifo_order(self):
        sb = Scoreboard()
        late = sb.add(0, 1, 8, depart_time=5.0)
        early = sb.add(0, 1, 8, depart_time=2.0)
        assert sb.oldest_for(0, 1) is early
        sb.remove(early.msg_id)
        assert sb.oldest_for(0, 1) is late

    def test_oldest_for_ignores_other_pairs(self):
        sb = Scoreboard()
        sb.add(0, 2, 8, 0.0)
        assert sb.oldest_for(0, 1) is None

    def test_any_for_dst_sorted(self):
        sb = Scoreboard()
        sb.add(2, 1, 8, 3.0)
        sb.add(0, 1, 8, 1.0)
        sb.add(3, 9, 8, 0.0)
        got = sb.any_for_dst(1)
        assert [e.src for e in got] == [0, 2]

    def test_peak_and_total(self):
        sb = Scoreboard()
        ids = [sb.add(0, 1, 8, 0.0).msg_id for _ in range(5)]
        for i in ids:
            sb.remove(i)
        assert sb.peak == 5
        assert sb.total_added == 5
        assert sb.contention == 0

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            ScoreboardEntry(0, 0, 1, -8, 0.0)
        with pytest.raises(ValueError):
            ScoreboardEntry(0, 0, 1, 8, -1.0)


@given(
    plan=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_scoreboard_contention_invariant(plan):
    """contention == number of outstanding inter-node entries, always."""
    sb = Scoreboard()
    outstanding = []
    for src, dst, intra in plan:
        e = sb.add(src, dst, 8, 0.0, intra=intra)
        outstanding.append(e)
        assert sb.contention == sum(1 for x in outstanding if not x.intra)
    while outstanding:
        e = outstanding.pop()
        sb.remove(e.msg_id)
        assert sb.contention == sum(1 for x in outstanding if not x.intra)
    assert sb.contention == 0


def _synthetic_db():
    """A DB with known means/mins: inter configs at two contention levels
    plus one intra (single-node) config."""
    rng = np.random.default_rng(0)
    db = DistributionDB(cluster="synthetic")

    def mk(op, nodes, ppn, base):
        hists = {
            size: Histogram.from_samples(
                base * (1 + size / 2048) + rng.gamma(4.0, base / 40, size=300),
                bins=40,
            )
            for size in (0, 1024, 4096)
        }
        db.add(BenchmarkResult(op=op, nodes=nodes, ppn=ppn,
                               cluster="synthetic", histograms=hists))

    for op, scale in [("isend", 1.0), ("isend_local", 0.2)]:
        mk(op, 2, 1, 100e-6 * scale)
        mk(op, 32, 1, 300e-6 * scale)
        mk(op, 1, 2, 20e-6 * scale)  # intra-node
    return db


class TestTimingModels:
    rng = np.random.default_rng(1)

    def test_distribution_contention_selects_config(self):
        db = _synthetic_db()
        t = DistributionTiming(db)
        low = np.mean([t.one_way_time(1024, 2, self.rng) for _ in range(300)])
        high = np.mean([t.one_way_time(1024, 32, self.rng) for _ in range(300)])
        assert high > 2 * low

    def test_distribution_fixed_contention(self):
        db = _synthetic_db()
        t = DistributionTiming(db, fixed_contention=2)
        samples = [t.one_way_time(1024, 1000, self.rng) for _ in range(100)]
        # Pinned to the 2-proc config: stays at the low scale.
        assert np.mean(samples) < 250e-6

    def test_intra_flag_selects_single_node_config(self):
        db = _synthetic_db()
        t = DistributionTiming(db)
        intra = np.mean([t.one_way_time(1024, 32, self.rng, intra=True) for _ in range(200)])
        inter = np.mean([t.one_way_time(1024, 32, self.rng, intra=False) for _ in range(200)])
        assert intra < inter / 3

    def test_average_and_minimum_are_deterministic(self):
        db = _synthetic_db()
        avg = AverageTiming(db, fixed_contention=2)
        mn = MinimumTiming(db, fixed_contention=2)
        a = [avg.one_way_time(1024, 99, self.rng) for _ in range(5)]
        m = [mn.one_way_time(1024, 99, self.rng) for _ in range(5)]
        assert len(set(a)) == 1
        assert len(set(m)) == 1
        assert m[0] < a[0]

    def test_local_send_cheaper_than_one_way(self):
        db = _synthetic_db()
        avg = AverageTiming(db, fixed_contention=2)
        assert avg.local_send_time(1024, 2, self.rng) < avg.one_way_time(
            1024, 2, self.rng
        )

    def test_parametric_sampling_tracks_data(self):
        db = _synthetic_db()
        t = ParametricTiming(db, fixed_contention=2)
        samples = [t.one_way_time(1024, 2, self.rng) for _ in range(400)]
        data_mean = db.histogram("isend", 1024, 2, 1).mean
        assert np.mean(samples) == pytest.approx(data_mean, rel=0.15)

    def test_serialisation_gap_grows_with_size(self):
        db = _synthetic_db()
        t = DistributionTiming(db)
        g0 = t.serialisation_gap(0)
        g1 = t.serialisation_gap(1024)
        g4 = t.serialisation_gap(4096)
        assert g0 == 0.0
        assert 0.0 <= g1 <= g4

    def test_hockney_model(self):
        t = HockneyTiming(latency=50e-6, bandwidth=10e6)
        assert t.one_way_time(0, 99, self.rng) == pytest.approx(50e-6)
        assert t.one_way_time(10_000_000, 0, self.rng) == pytest.approx(
            50e-6 + 1.0
        )
        assert t.serialisation_gap(10e6) == pytest.approx(1.0)
        assert t.serialisation_gap(10e6, intra=True) == 0.0
        assert t.local_send_time(0, 0, self.rng) < t.one_way_time(0, 0, self.rng)

    def test_hockney_validation(self):
        with pytest.raises(ValueError):
            HockneyTiming(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            HockneyTiming(latency=0, bandwidth=0)
        with pytest.raises(ValueError):
            HockneyTiming(latency=0, bandwidth=1, send_fraction=2.0)


class TestTimingFactory:
    def test_modes(self):
        db = _synthetic_db()
        assert isinstance(timing_from_db(db, "distribution"), DistributionTiming)
        assert isinstance(timing_from_db(db, "parametric"), ParametricTiming)
        avg = timing_from_db(db, "average", "2x1")
        assert isinstance(avg, AverageTiming)
        assert avg.fixed_contention == 2
        mn = timing_from_db(db, "minimum", "nxp", nprocs=32)
        assert isinstance(mn, MinimumTiming)
        assert mn.fixed_contention == 32

    def test_nxp_average_requires_nprocs(self):
        db = _synthetic_db()
        with pytest.raises(ValueError):
            timing_from_db(db, "average", "nxp")

    def test_unknown_mode_and_source(self):
        db = _synthetic_db()
        with pytest.raises(ValueError):
            timing_from_db(db, "psychic")
        with pytest.raises(ValueError):
            timing_from_db(db, "average", "3x3")
