"""Tests for the collective model patterns.

Two layers: structural (the pattern's sends/recvs pair up and complete on
the virtual machine for any rank count) and empirical (PEVPM predictions
of collective-heavy programs track the simulated runtime within
tolerance).
"""

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.pevpm.machine import VirtualMachine
from repro.pevpm import patterns
from repro.simnet import perseus
from repro.smpi import run_program
from tests.pevpm.test_machine import FixedTiming

SPEC = perseus(16)

ALL_PATTERNS = [
    ("barrier", lambda ctx: patterns.barrier(ctx)),
    ("bcast", lambda ctx: patterns.bcast(ctx, 1024)),
    ("bcast-root2", lambda ctx: patterns.bcast(ctx, 1024, root=2)),
    ("reduce", lambda ctx: patterns.reduce(ctx, 512)),
    ("allreduce", lambda ctx: patterns.allreduce(ctx, 8)),
    ("gather", lambda ctx: patterns.gather(ctx, 256)),
    ("scatter", lambda ctx: patterns.scatter(ctx, 256)),
    ("allgather", lambda ctx: patterns.allgather(ctx, 128)),
    ("alltoall", lambda ctx: patterns.alltoall(ctx, 64)),
]


class TestStructure:
    @pytest.mark.parametrize("name,pattern", ALL_PATTERNS)
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 8])
    def test_completes_without_orphans(self, name, pattern, nprocs):
        if name in ("bcast-root2", "reduce") and nprocs <= 2:
            pytest.skip("root 2 needs 3+ ranks") if name == "bcast-root2" else None

        def program(ctx):
            yield from pattern(ctx)

        if name == "bcast-root2" and nprocs < 3:
            return
        vm = VirtualMachine(nprocs, FixedTiming(), seed=0)
        result = vm.run(program)
        assert not result.orphans, f"{name} leaked messages"

    def test_message_counts_match_runtime_algorithms(self):
        """Each pattern emits exactly the messages the runtime algorithm
        sends (total across ranks)."""
        from repro.pevpm.machine import ProcContext

        def total_sends(pattern, nprocs):
            count = 0
            for p in range(nprocs):
                for op in pattern(ProcContext(p, nprocs)):
                    if op[0] == "send":
                        count += 1
            return count

        P = 8
        assert total_sends(lambda c: patterns.bcast(c, 8), P) == P - 1
        assert total_sends(lambda c: patterns.reduce(c, 8), P) == P - 1
        assert total_sends(lambda c: patterns.gather(c, 8), P) == P - 1
        assert total_sends(lambda c: patterns.scatter(c, 8), P) == P - 1
        assert total_sends(lambda c: patterns.allgather(c, 8), P) == P * (P - 1)
        assert total_sends(lambda c: patterns.alltoall(c, 8), P) == P * (P - 1)
        # Dissemination barrier: ceil(log2 P) rounds, one send per rank.
        assert total_sends(patterns.barrier, P) == P * 3


class TestEmpirical:
    @pytest.fixture(scope="class")
    def db(self):
        bench = MPIBench(SPEC, seed=5, settings=BenchSettings(reps=30, warmup=3))
        return bench.sweep_isend(
            [(2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
        )

    def test_bcast_heavy_program_prediction(self, db):
        """A program alternating bcast and compute: model vs runtime."""
        ROUNDS = 40

        def measured_prog(comm):
            for _ in range(ROUNDS):
                yield from comm.bcast(1024, root=0)
                yield from comm.compute(200e-6)
            return None

        measured = run_program(SPEC, measured_prog, nprocs=8, seed=42).elapsed

        def model(ctx):
            for _ in range(ROUNDS):
                yield from patterns.bcast(ctx, 1024)
                yield ctx.serial(200e-6)

        pred = predict(model, 8, timing_from_db(db, "distribution"), runs=4, seed=3)
        err = abs(pred.mean_time - measured) / measured
        assert err < 0.25, f"bcast-program prediction off by {err * 100:.0f}%"

    def test_allreduce_program_prediction(self, db):
        ROUNDS = 30

        def measured_prog(comm):
            for _ in range(ROUNDS):
                yield from comm.compute(300e-6)
                yield from comm.allreduce(8, payload=1, op=lambda a, b: a + b)
            return None

        measured = run_program(SPEC, measured_prog, nprocs=8, seed=42).elapsed

        def model(ctx):
            for _ in range(ROUNDS):
                yield ctx.serial(300e-6)
                yield from patterns.allreduce(ctx, 8)

        pred = predict(model, 8, timing_from_db(db, "distribution"), runs=4, seed=3)
        err = abs(pred.mean_time - measured) / measured
        assert err < 0.25, f"allreduce-program prediction off by {err * 100:.0f}%"
