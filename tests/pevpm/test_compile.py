"""Tests for static-schedule compilation (:mod:`repro.pevpm.compile`).

The compiled executor's contract: bit-identical to the generator
interpreter -- under deterministic *and* distribution timing, on the
scalar and the batched engine, across NIC serialisation modes -- because
it replaces only the source of ops, never the runtime match phase or the
RNG draw order.  Structurally timing-dependent programs (wildcard
receives with racing senders) are detected at compile time and fall back
to the interpreter unchanged.
"""

import numpy as np
import pytest

from repro.apps.fft import fft_model
from repro.apps.jacobi import parse_jacobi
from repro.apps.taskfarm import taskfarm_model
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    ANY_SOURCE,
    BatchedVirtualMachine,
    CompiledProgram,
    HockneyTiming,
    ModelDeadlock,
    PredictionCache,
    VirtualMachine,
    clear_compile_cache,
    compile_program,
    compiled_program_for,
    model_messages,
    predict,
    timing_from_db,
)
from repro.simnet import perseus

SPEC = perseus(16)
ITER = 12
TASKS = [5e-4, 2e-4, 8e-4, 1e-4, 6e-4, 3e-4, 9e-4, 4e-4]

NIC_MODES = ("off", "tx", "txrx")


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def jacobi_params(iterations=ITER):
    return {
        "iterations": iterations,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }


class TestCompileStructure:
    def test_jacobi_compiles_static(self):
        model = parse_jacobi()
        compiled = compile_program(model, 8, jacobi_params())
        assert isinstance(compiled, CompiledProgram)
        assert not compiled.divergent
        assert compiled.nprocs == 8
        assert compiled.n_ops > 0
        # The static schedule's message count is the interpreter's.
        assert compiled.messages == model_messages(model, 8, jacobi_params())

    def test_fft_compiles_static(self):
        compiled = compile_program(fft_model(256), 4)
        assert not compiled.divergent
        # P-1 pairwise exchanges per rank.
        assert compiled.messages == 4 * 3

    def test_taskfarm_is_divergent(self):
        compiled = compile_program(taskfarm_model(TASKS), 4)
        assert compiled.divergent
        assert compiled.ops is None
        # Rank 0's wildcard receive is the decision point.
        procnum, op_index, rnd = compiled.divergence
        assert procnum == 0
        assert rnd >= 1
        assert callable(compiled.fallback)
        with pytest.raises(ValueError):
            compiled.schedule(1)
        assert compiled.messages == 0 and compiled.n_ops == 0

    def test_single_candidate_wildcard_is_static(self):
        # A wildcard receive with exactly one possible sender at its
        # match phase is structural: no race, no divergence.
        def program(ctx):
            if ctx.procnum == 0:
                info = yield ctx.recv(ANY_SOURCE, label="any")
                yield ctx.serial(info.size * 1e-9, label="react")
            else:
                yield ctx.send(0, 128, label="only-sender")

        compiled = compile_program(program, 2)
        assert not compiled.divergent
        assert compiled.messages == 1

    def test_deadlock_detected_at_compile_time(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.recv(1, label="never-comes")
            else:
                yield ctx.recv(0, label="never-comes-either")

        with pytest.raises(ModelDeadlock):
            compile_program(program, 2)

    def test_deadlock_names_rank_and_op_index(self):
        """The diagnostic must name each stuck rank AND the directive
        (op) index it is parked on -- 'proc 0 is stuck' alone is not
        actionable in a thousand-op compiled schedule."""

        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.serial(1e-6, label="warmup")
                yield ctx.recv(1, label="never-comes")
            else:
                yield ctx.recv(0, label="never-comes-either")

        with pytest.raises(ModelDeadlock) as err:
            compile_program(program, 2)
        exc = err.value
        assert exc.sites == {0: 1, 1: 0}
        message = str(exc)
        assert "proc 0 waiting on proc 1 at op 1" in message
        assert "proc 1 waiting on proc 0 at op 0" in message

    def test_schedule_precomputes_intra_flags(self):
        def program(ctx):
            if ctx.procnum == 0:
                yield ctx.send(1, 64, label="near")  # same node at ppn=2
                yield ctx.send(2, 64, label="far")   # other node at ppn=2
            elif ctx.procnum == 1:
                yield ctx.recv(0, label="a")
            elif ctx.procnum == 2:
                yield ctx.recv(0, label="b")

        compiled = compile_program(program, 3)
        sched = compiled.schedule(2)
        sends = [op for op in sched[0] if op[0] == "send"]
        assert [op[5] for op in sends] == [True, False]
        # ppn=1 separates everything; and schedules are cached per ppn.
        assert all(not op[5] for op in compiled.schedule(1)[0] if op[0] == "send")
        assert compiled.schedule(2) is sched

    def test_compile_cache_hits_for_picklable_models(self):
        clear_compile_cache()
        model = parse_jacobi()
        first = compiled_program_for(model, 8, jacobi_params())
        again = compiled_program_for(model, 8, jacobi_params())
        assert again is first
        other = compiled_program_for(model, 16, jacobi_params())
        assert other is not first

    def test_vm_rejects_mismatched_nprocs(self):
        compiled = compile_program(parse_jacobi(), 8, jacobi_params())
        vm = VirtualMachine(4, HockneyTiming(1e-5, 1e-9), seed=1,
                            params=jacobi_params())
        with pytest.raises(ValueError):
            vm.run(compiled)


class TestCompiledParity:
    """compiled=True must reproduce compiled=False bit-for-bit."""

    @pytest.mark.parametrize("nic", NIC_MODES)
    @pytest.mark.parametrize("nprocs", [8, 16])
    def test_jacobi_deterministic_all_nic_modes(self, nic, nprocs):
        timing = HockneyTiming(1e-5, 1e-9)
        kw = dict(runs=4, seed=5, params=jacobi_params(),
                  nic_serialisation=nic)
        for vector in (False, True):
            a = predict(parse_jacobi(), nprocs, timing,
                        vector_runs=vector, compiled=True, **kw)
            b = predict(parse_jacobi(), nprocs, timing,
                        vector_runs=vector, compiled=False, **kw)
            assert a.times == b.times

    @pytest.mark.parametrize("nprocs", [4, 8])
    def test_fft_deterministic(self, nprocs):
        timing = HockneyTiming(1e-5, 1e-9)
        a = predict(fft_model(256), nprocs, timing, runs=4, seed=2,
                    compiled=True)
        b = predict(fft_model(256), nprocs, timing, runs=4, seed=2,
                    compiled=False)
        assert a.times == b.times

    @pytest.mark.parametrize("nic", NIC_MODES)
    def test_jacobi_distribution_same_rng_order(self, db, nic):
        # Stronger than the statistical-equivalence requirement: the
        # compiled path shares the runtime match phase and draw sites,
        # so even sampled timing is bit-identical.
        timing = timing_from_db(db, mode="distribution", nprocs=8)
        kw = dict(runs=6, seed=11, params=jacobi_params(),
                  nic_serialisation=nic)
        for vector in (False, True):
            a = predict(parse_jacobi(), 8, timing,
                        vector_runs=vector, compiled=True, **kw)
            b = predict(parse_jacobi(), 8, timing,
                        vector_runs=vector, compiled=False, **kw)
            assert a.times == b.times

    def test_divergent_taskfarm_falls_back_identically(self, db):
        timing = timing_from_db(db, mode="distribution", nprocs=4)
        kw = dict(runs=8, seed=9)
        a = predict(taskfarm_model(TASKS), 4, timing, compiled=True, **kw)
        b = predict(taskfarm_model(TASKS), 4, timing, compiled=False, **kw)
        assert a.times == b.times
        # ... and the batched engine's sub-batch splitting still fires.
        va = predict(taskfarm_model(TASKS), 4, timing, vector_runs=True,
                     compiled=True, **kw)
        vb = predict(taskfarm_model(TASKS), 4, timing, vector_runs=True,
                     compiled=False, **kw)
        assert va.times == vb.times

    def test_batched_vm_accepts_compiled_and_splits(self, db):
        timing = timing_from_db(db, mode="distribution", nprocs=4)
        compiled = compile_program(taskfarm_model(TASKS), 4)
        bvm = BatchedVirtualMachine(
            4, timing, seed=3, runs=16,
        )
        results = bvm.run(compiled)  # divergent -> generator fallback
        assert bvm.splits > 0
        assert len(results) == 16
        assert all(r.elapsed > 0 for r in results)


class TestCacheKeying:
    def test_compiled_flag_is_part_of_the_cache_key(self, tmp_path):
        cache = PredictionCache(tmp_path)
        kw = dict(
            model=parse_jacobi(), params=jacobi_params(), nprocs=8,
            timing_fingerprint="t", seed=np.random.SeedSequence(1),
            runs=4, nic_serialisation="tx", ppn=1,
        )
        assert cache.key(compiled=True, **kw) != cache.key(compiled=False, **kw)

    def test_cached_predictions_respect_the_flag(self, tmp_path):
        timing = HockneyTiming(1e-5, 1e-9)
        kw = dict(runs=3, seed=4, params=jacobi_params(),
                  cache_dir=tmp_path)
        first = predict(parse_jacobi(), 8, timing, compiled=True, **kw)
        assert not first.cached
        hit = predict(parse_jacobi(), 8, timing, compiled=True, **kw)
        assert hit.cached and hit.times == first.times
        # The interpreted evaluation is a distinct entry -- a miss --
        # yet produces the same bits.
        other = predict(parse_jacobi(), 8, timing, compiled=False, **kw)
        assert not other.cached
        assert other.times == first.times
