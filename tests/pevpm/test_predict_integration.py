"""Integration tests: the full MPIBench -> PEVPM -> prediction pipeline.

These are the test-scale version of the paper's Figure 6 experiment: a
small benchmark campaign on the simulated Perseus, a PEVPM model of the
Jacobi iteration, and a comparison of predicted vs. actually-simulated
execution time.
"""

import numpy as np
import pytest

from repro.apps.jacobi import jacobi_serial_time, jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    HockneyTiming,
    compare_timing_modes,
    predict,
    predict_speedups,
    timing_from_db,
)
from repro.simnet import perseus
from repro.smpi import run_program

SPEC = perseus(16)
ITER = 60


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=40, warmup=4))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@pytest.fixture(scope="module")
def jacobi_params():
    return {
        "iterations": ITER,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }


class TestPredictionAccuracy:
    @pytest.mark.parametrize("nprocs,ppn", [(4, 1), (8, 1), (16, 2)])
    def test_distribution_prediction_close_to_measurement(
        self, db, jacobi_params, nprocs, ppn
    ):
        """The headline claim, at test scale: distribution-based PEVPM
        predicts the simulated execution within ~10%."""
        measured = run_program(
            SPEC, jacobi_smpi, nprocs=nprocs, ppn=ppn, seed=42, args=(ITER,)
        ).elapsed
        timing = timing_from_db(db, mode="distribution")
        pred = predict(
            parse_jacobi(), nprocs, timing, runs=4, seed=1,
            params=jacobi_params, ppn=ppn,
        )
        err = abs(pred.mean_time - measured) / measured
        assert err < 0.12, f"prediction off by {err * 100:.1f}%"

    def test_monte_carlo_spread_is_small(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(
            parse_jacobi(), 8, timing, runs=6, seed=2, params=jacobi_params
        )
        assert pred.std_time / pred.mean_time < 0.05
        assert pred.stderr < pred.std_time

    def test_prediction_deterministic_given_seed(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        a = predict(parse_jacobi(), 4, timing, runs=2, seed=9, params=jacobi_params)
        b = predict(parse_jacobi(), 4, timing, runs=2, seed=9, params=jacobi_params)
        assert a.times == b.times


class TestTimingModeOrdering:
    def test_min_below_avg_below_distribution(self, db, jacobi_params):
        """Minimum-based predictions are the most optimistic; averages in
        between; distributions account for the most delay."""
        preds = compare_timing_modes(
            parse_jacobi(), 16, db, runs=3, seed=5, params=jacobi_params
        )
        t_min = preds["minimum-2x1"].mean_time
        t_avg = preds["average-2x1"].mean_time
        t_dist = preds["distribution-nxp"].mean_time
        assert t_min <= t_avg <= t_dist * 1.001

    def test_speedup_helper(self, db, jacobi_params):
        serial = jacobi_serial_time(SPEC, ITER)
        model = parse_jacobi()
        speedups = predict_speedups(
            model_factory=lambda n: model,
            proc_counts=[2, 4, 8],
            timing_factory=lambda n: timing_from_db(db, "distribution"),
            serial_time=serial,
            runs=2,
            seed=3,
            params=jacobi_params,
        )
        # Speedup grows with procs at these sizes and stays below ideal.
        assert speedups[2] < speedups[4] < speedups[8]
        for n, s in speedups.items():
            assert 1.0 < s < n


class TestPredictionArtifacts:
    def test_loss_report_from_traced_prediction(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(
            parse_jacobi(), 4, timing, runs=2, seed=1,
            params=jacobi_params, trace_last=True,
        )
        report = pred.loss_report()
        assert report is not None
        per = report.per_process()
        assert len(per) == 4
        # Some compute everywhere, some wait somewhere.
        assert all(p["compute"] > 0 for p in per)
        assert any(p["wait"] > 0 for p in per)

    def test_loss_report_none_without_trace(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(parse_jacobi(), 4, timing, runs=1, seed=1, params=jacobi_params)
        assert pred.loss_report() is None

    def test_evaluation_cost_metric(self, db, jacobi_params):
        """The paper's Section 6 cost claim: PEVPM evaluates far more
        simulated processor-time per wall second than 1x."""
        timing = timing_from_db(db, mode="distribution")
        pred = predict(parse_jacobi(), 8, timing, runs=2, seed=1, params=jacobi_params)
        assert pred.wall_time > 0
        assert pred.simulated_per_wall > 1.0

    def test_invalid_runs(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        with pytest.raises(ValueError):
            predict(parse_jacobi(), 2, timing, runs=0, params=jacobi_params)

    def test_bad_model_type(self, db):
        timing = timing_from_db(db, mode="distribution")
        with pytest.raises(TypeError):
            predict("not a model", 2, timing)

    def test_speedup_validation(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(parse_jacobi(), 2, timing, runs=1, params=jacobi_params)
        with pytest.raises(ValueError):
            pred.speedup(0.0)


class TestHockneyBackend:
    def test_hockney_predicts_roughly(self, db, jacobi_params):
        """The analytic l + b/W backend runs end to end and lands within a
        factor of ~2 (it ignores contention entirely)."""
        measured = run_program(
            SPEC, jacobi_smpi, nprocs=8, ppn=1, seed=42, args=(ITER,)
        ).elapsed
        h2 = db.result("isend", 2, 1)
        lat = h2.histograms[0].min
        bw = 1024 / max(1e-12, h2.histograms[1024].min - lat)
        timing = HockneyTiming(latency=lat, bandwidth=bw)
        pred = predict(parse_jacobi(), 8, timing, runs=1, seed=0, params=jacobi_params)
        assert 0.5 < pred.mean_time / measured < 2.0
