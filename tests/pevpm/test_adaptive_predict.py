"""Adaptive (precision-targeted) prediction: bit-identity with fixed
runs, stopping behaviour, run savings, and the adaptive cache story.

The load-bearing property is the issue's acceptance criterion: an
adaptive evaluation that stops at N runs is **bit-identical** to a fixed
``runs=N`` evaluation with the same seed -- across the scalar and
vectorised engines and both timing modes.  That holds because adaptive
increments continue the seed streams at absolute run indices
(``run_offset``) and vectorised totals stay chunk-aligned.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import PrecisionTarget, predict, timing_from_db
from repro.pevpm.predict import (
    AdaptiveResult,
    _adaptive_batch,
    evaluate_with_precision,
)
from repro.pevpm.parallel import RunGroup, as_seed_sequence, evaluate_groups
from repro.simnet import perseus

SPEC = perseus(16)
ITER = 30


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=40, warmup=4))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1)], sizes=[0, 512, 1024, 2048]
    )


@pytest.fixture(scope="module")
def jacobi_params():
    return {
        "iterations": ITER,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }


def _predict(db, params, **kw):
    timing = timing_from_db(db, mode=kw.pop("mode", "distribution"), nprocs=8)
    return predict(parse_jacobi(), 8, timing, params=params, **kw)


class TestBitIdentity:
    @given(
        seed=st.integers(0, 2**32 - 1),
        vector=st.booleans(),
        mode=st.sampled_from(["distribution", "average"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_adaptive_equals_fixed_at_same_count(
        self, db, jacobi_params, seed, vector, mode
    ):
        """Adaptive stopping at N is bit-identical to runs=N, same seed,
        across engines and timing modes (the issue's acceptance test)."""
        target = PrecisionTarget(rse=0.5, min_runs=4, max_runs=16)
        adaptive = _predict(
            db, jacobi_params, mode=mode, seed=seed,
            precision=target, vector_runs=vector,
        )
        n = adaptive.runs
        fixed_kw = {"vector_batch": _adaptive_batch(target)} if vector else {}
        timing = timing_from_db(db, mode=mode, nprocs=8)
        group = RunGroup(
            model=parse_jacobi(), nprocs=8, timing=timing,
            seed=as_seed_sequence(seed), runs=n, params=jacobi_params,
            vector_runs=vector, **fixed_kw,
        )
        fixed_times = [o.elapsed for o in evaluate_groups([group])[0]]
        assert adaptive.times == fixed_times

    def test_tight_target_runs_longer_than_loose(self, db, jacobi_params):
        loose = _predict(db, jacobi_params, seed=1, target_rse=0.5, max_runs=64)
        tight = _predict(db, jacobi_params, seed=1, target_rse=1e-7, max_runs=64)
        assert loose.runs < tight.runs
        # Tight is a strict extension of loose: shared prefix bit-identical.
        assert tight.times[: loose.runs] == loose.times

    def test_loose_target_beats_fixed_16(self, db, jacobi_params):
        """Acceptance: a loose-target request spends fewer runs than a
        fixed runs=16 request (the Jacobi MC spread is ~1-2% RSE at 4)."""
        pred = _predict(db, jacobi_params, seed=1, target_rse=0.05)
        assert pred.runs < 16
        assert pred.precision["converged"]


class TestStoppingBehaviour:
    def test_min_runs_floor(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=2, target_rse=10.0, min_runs=6)
        assert pred.runs == 6

    def test_max_runs_cap_reports_nonconvergence(self, db, jacobi_params):
        pred = _predict(
            db, jacobi_params, seed=2, target_rse=1e-9, min_runs=2, max_runs=8
        )
        assert pred.runs == 8
        assert not pred.precision["converged"]
        totals = [r["runs"] for r in pred.precision["rounds"]]
        assert totals == [2, 4, 8]
        assert sum(r["added"] for r in pred.precision["rounds"]) == 8

    def test_precision_block_shape(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=3, target_rse=0.5)
        p = pred.precision
        assert p["target"]["rse"] == 0.5
        assert isinstance(p["achieved_rse"], float)
        assert p["achieved_rse"] <= 0.5
        assert pred.rse <= pred.precision["achieved_rse"] + 1e-12

    def test_trace_last_rejected(self, db, jacobi_params):
        with pytest.raises(ValueError, match="trace_last"):
            _predict(db, jacobi_params, seed=1, target_rse=0.5, trace_last=True)

    def test_precision_and_target_rse_mutually_exclusive(self, db, jacobi_params):
        with pytest.raises(ValueError, match="not both"):
            _predict(
                db, jacobi_params, seed=1,
                precision=PrecisionTarget(rse=0.1), target_rse=0.1,
            )

    def test_fixed_mode_has_no_precision(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=1, runs=2)
        assert pred.precision is None


class TestVectorChunkParity:
    def test_vector_adaptive_uses_min_runs_chunks(self, db, jacobi_params):
        pred = _predict(
            db, jacobi_params, seed=4, target_rse=0.5, vector_runs=True
        )
        # Loose target on the vector engine stops at the first chunk
        # (min_runs), not the full default chunk of 64.
        assert pred.runs == 4

    def test_vector_totals_chunk_aligned_below_cap(self, db, jacobi_params):
        pred = _predict(
            db, jacobi_params, seed=4, target_rse=1e-9,
            min_runs=4, max_runs=24, vector_runs=True,
        )
        totals = [r["runs"] for r in pred.precision["rounds"]]
        assert totals[-1] == 24
        for t in totals[:-1]:
            assert t % 4 == 0


class TestAdaptiveCache:
    def test_pointer_and_fixed_key_roundtrip(self, db, jacobi_params, tmp_path):
        kw = dict(seed=5, target_rse=0.5, cache_dir=tmp_path)
        first = _predict(db, jacobi_params, **kw)
        assert not first.cached
        again = _predict(db, jacobi_params, **kw)
        assert again.cached
        assert again.times == first.times
        assert again.precision == first.precision

    def test_fixed_request_hits_adaptive_result(self, db, jacobi_params, tmp_path):
        adaptive = _predict(
            db, jacobi_params, seed=6, target_rse=0.5, cache_dir=tmp_path
        )
        fixed = _predict(
            db, jacobi_params, seed=6, runs=adaptive.runs, cache_dir=tmp_path
        )
        assert fixed.cached
        assert fixed.times == adaptive.times
        assert fixed.precision is None  # fixed key serves a plain doc

    def test_different_targets_do_not_collide(self, db, jacobi_params, tmp_path):
        a = _predict(db, jacobi_params, seed=7, target_rse=0.5, cache_dir=tmp_path)
        b = _predict(
            db, jacobi_params, seed=7, target_rse=1e-9, max_runs=8,
            cache_dir=tmp_path,
        )
        assert not b.cached
        assert b.runs != a.runs or b.precision != a.precision


class TestEvaluateWithPrecision:
    def test_mixed_fixed_and_adaptive(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        fixed = RunGroup(
            model=parse_jacobi(), nprocs=8, timing=timing,
            seed=as_seed_sequence(11), runs=3, params=jacobi_params,
        )
        adaptive = RunGroup(
            model=parse_jacobi(), nprocs=8, timing=timing,
            seed=as_seed_sequence(12), runs=1, params=jacobi_params,
        )
        target = PrecisionTarget(rse=0.5, min_runs=4, max_runs=16)
        fixed_out, fixed_walls, results = evaluate_with_precision(
            [fixed], [(adaptive, target)]
        )
        assert len(fixed_out[0]) == 3
        assert fixed_walls[0] > 0
        (res,) = results
        assert isinstance(res, AdaptiveResult)
        assert res.runs >= 4
        assert res.wall > 0
        # Fixed group's outcomes match a standalone fixed evaluation.
        standalone = [o.elapsed for o in evaluate_groups([fixed])[0]]
        assert [o.elapsed for o in fixed_out[0]] == standalone

    def test_rejects_offset_group(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        g = RunGroup(
            model=parse_jacobi(), nprocs=8, timing=timing,
            seed=as_seed_sequence(1), runs=1, params=jacobi_params,
            run_offset=3,
        )
        with pytest.raises(ValueError, match="run_offset"):
            evaluate_with_precision([], [(g, PrecisionTarget(rse=0.5))])


class TestStderrRegression:
    """Satellite 1: the stderr bugfix (ddof=1; 0.0 when inestimable)."""

    def test_single_run_stderr_zero(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=1, runs=1)
        assert pred.stderr == 0.0
        assert pred.sample_std == 0.0
        assert pred.rse == 0.0

    def test_ddof1_vs_population(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=1, runs=5)
        n = pred.runs
        assert pred.sample_std == pytest.approx(
            pred.std_time * (n / (n - 1)) ** 0.5
        )
        assert pred.stderr == pytest.approx(pred.sample_std / n**0.5)
        assert pred.stderr > pred.std_time / n**0.5  # the old, biased value

    def test_ci_consistent_with_stderr(self, db, jacobi_params):
        pred = _predict(db, jacobi_params, seed=1, runs=6)
        ci = pred.ci(0.95)
        assert ci.estimate == pytest.approx(pred.mean_time)
        assert ci.half_width == pytest.approx(1.959964 * pred.stderr, rel=1e-4)
        assert ci.n == 6
