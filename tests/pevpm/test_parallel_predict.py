"""Tests for the parallel Monte Carlo prediction engine.

The engine's contract (see :mod:`repro.pevpm.parallel`): parallel
evaluation is a pure speed-up -- bit-identical ``times`` to the serial
path for the same seed -- and finished evaluations can be served from
the on-disk cache without re-simulation.
"""

import numpy as np
import pytest

from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    DistributionTiming,
    compare_timing_modes,
    predict,
    predict_speedups,
    resolve_workers,
    run_seeds,
    timing_from_db,
)
from repro.simnet import perseus

SPEC = perseus(16)
ITER = 20


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@pytest.fixture(scope="module")
def jacobi_params():
    return {
        "iterations": ITER,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }


class TestSeedStreams:
    def test_run_seeds_idempotent(self):
        root = np.random.SeedSequence(7)
        a = run_seeds(root, 4)
        b = run_seeds(root, 4)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert all(
            np.random.default_rng(x).random() == np.random.default_rng(y).random()
            for x, y in zip(a, b)
        )

    def test_run_seeds_independent(self):
        children = run_seeds(np.random.SeedSequence(7), 8)
        first = [np.random.default_rng(c).random() for c in children]
        assert len(set(first)) == len(first)

    def test_predict_accepts_seed_sequence(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        a = predict(
            parse_jacobi(), 4, timing, runs=2,
            seed=np.random.SeedSequence(9), params=jacobi_params,
        )
        b = predict(parse_jacobi(), 4, timing, runs=2, seed=9, params=jacobi_params)
        assert a.times == b.times

    def test_runs_differ_within_prediction(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        pred = predict(parse_jacobi(), 4, timing, runs=4, seed=0, params=jacobi_params)
        assert len(set(pred.times)) > 1


class TestSerialParallelIdentity:
    def test_predict_bit_identical(self, db, jacobi_params):
        timing = timing_from_db(db, mode="distribution")
        serial = predict(
            parse_jacobi(), 4, timing, runs=4, seed=1,
            params=jacobi_params, workers=1,
        )
        parallel = predict(
            parse_jacobi(), 4, timing, runs=4, seed=1,
            params=jacobi_params, workers=2,
        )
        assert parallel.times == serial.times
        assert len(parallel.run_walls) == 4
        assert all(w > 0 for w in parallel.run_walls)

    def test_predict_speedups_bit_identical(self, db, jacobi_params):
        model = parse_jacobi()
        kwargs = dict(
            model_factory=lambda n: model,
            proc_counts=[2, 4],
            timing_factory=lambda n: timing_from_db(db, "distribution"),
            serial_time=1.0,
            runs=2,
            seed=3,
            params=jacobi_params,
        )
        assert predict_speedups(workers=1, **kwargs) == predict_speedups(
            workers=2, **kwargs
        )

    def test_compare_timing_modes_bit_identical(self, db, jacobi_params):
        serial = compare_timing_modes(
            parse_jacobi(), 8, db, runs=2, seed=5, params=jacobi_params, workers=1
        )
        parallel = compare_timing_modes(
            parse_jacobi(), 8, db, runs=2, seed=5, params=jacobi_params, workers=2
        )
        assert {k: p.times for k, p in serial.items()} == {
            k: p.times for k, p in parallel.items()
        }

    def test_unpicklable_program_falls_back_serially(self, db):
        captured = {"n": 10, "t": 1e-4}  # closure state: not picklable as a task

        def program(ctx):
            for _ in range(captured["n"]):
                if ctx.procnum == 0:
                    yield ctx.send(1, 512)
                else:
                    yield ctx.recv(0)
                yield ctx.serial(captured["t"])

        timing = timing_from_db(db, mode="distribution")
        serial = predict(program, 2, timing, runs=3, seed=2, workers=1)
        parallel = predict(program, 2, timing, runs=3, seed=2, workers=2)
        assert parallel.times == serial.times

    def test_resolve_workers(self):
        assert resolve_workers(1, 100) == 1
        assert resolve_workers(16, 3) == 3
        assert resolve_workers(None, 2) <= 2
        with pytest.raises(ValueError):
            resolve_workers(0, 4)


class TestPredictionCache:
    def test_second_call_hits_disk(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        first = predict(
            parse_jacobi(), 4, timing, runs=3, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        second = predict(
            parse_jacobi(), 4, timing, runs=3, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        assert not first.cached
        assert second.cached
        assert second.times == first.times
        assert second.run_walls == first.run_walls
        assert list(tmp_path.glob("predict-*.json"))

    def test_key_varies_with_arguments(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        base = dict(params=jacobi_params, cache_dir=tmp_path)
        predict(parse_jacobi(), 4, timing, runs=3, seed=5, **base)
        other_seed = predict(parse_jacobi(), 4, timing, runs=3, seed=6, **base)
        other_runs = predict(parse_jacobi(), 4, timing, runs=2, seed=5, **base)
        other_timing = predict(
            parse_jacobi(), 4, timing_from_db(db, mode="minimum", source="2x1"),
            runs=3, seed=5, **base,
        )
        assert not other_seed.cached
        assert not other_runs.cached
        assert not other_timing.cached

    def test_trace_bypasses_cache(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        predict(
            parse_jacobi(), 4, timing, runs=2, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        traced = predict(
            parse_jacobi(), 4, timing, runs=2, seed=5,
            params=jacobi_params, cache_dir=tmp_path, trace_last=True,
        )
        assert not traced.cached
        assert traced.loss_report() is not None

    def test_put_leaves_no_temp_files(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        predict(
            parse_jacobi(), 4, timing, runs=2, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        assert list(tmp_path.glob("predict-*.json"))
        assert not list(tmp_path.glob("*.tmp"))

    def test_interrupted_write_cannot_poison_reads(self, db, monkeypatch, tmp_path):
        from repro.pevpm.parallel import PredictionCache

        cache = PredictionCache(tmp_path)
        key = "deadbeef" * 8

        # A writer killed between serialising and renaming leaves no
        # entry at all -- not a truncated file a later get() would read.
        import repro.pevpm.parallel as parallel_mod

        def crash(src, dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(parallel_mod.os, "replace", crash)
        with pytest.raises(OSError):
            cache.put(key, {"times": [1.0]})
        monkeypatch.undo()
        assert cache.get(key) is None
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up

        # The retry succeeds and round-trips the document.
        cache.put(key, {"times": [1.0]})
        assert cache.get(key)["times"] == [1.0]

    def test_put_overwrites_whole_document(self, tmp_path):
        from repro.pevpm.parallel import PredictionCache

        cache = PredictionCache(tmp_path)
        key = "cafebabe" * 8
        cache.put(key, {"times": [1.0, 2.0]})
        cache.put(key, {"times": [3.0]})
        doc = cache.get(key)
        assert doc["times"] == [3.0]  # last complete write wins wholesale

    def test_corrupt_entry_is_recomputed(self, db, jacobi_params, tmp_path):
        timing = timing_from_db(db, mode="distribution")
        first = predict(
            parse_jacobi(), 4, timing, runs=2, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        for path in tmp_path.glob("predict-*.json"):
            path.write_text("{not json")
        again = predict(
            parse_jacobi(), 4, timing, runs=2, seed=5,
            params=jacobi_params, cache_dir=tmp_path,
        )
        assert not again.cached
        assert again.times == first.times


class TestDistributionTimingBuffers:
    def test_buffers_reset_between_runs(self, db):
        timing = DistributionTiming(db)
        draws = [
            timing.one_way_time(512, 4, np.random.default_rng(11)) for _ in range(5)
        ]
        # Without a reset the pre-sample buffer keeps advancing even when
        # the caller restarts its RNG stream...
        assert len(set(draws)) > 1
        # ...and with one, identical streams draw identically.
        timing.reset()
        assert not timing._buffers
        replay = timing.one_way_time(512, 4, np.random.default_rng(11))
        assert replay == draws[0]

    def test_buffer_grows_geometrically(self, db):
        timing = DistributionTiming(db)
        rng = np.random.default_rng(0)
        for _ in range(timing.BATCH + 1):
            timing.one_way_time(512, 4, rng)
        (buf,) = timing._buffers.values()
        assert len(buf[0]) == 2 * timing.BATCH
        total = timing.BATCH
        while total <= 3 * timing.BATCH_MAX:
            timing.one_way_time(512, 4, rng)
            total += 1
        (buf,) = timing._buffers.values()
        assert len(buf[0]) == timing.BATCH_MAX
