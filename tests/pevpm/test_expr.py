"""Tests for the safe directive-expression evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pevpm.expr import ExprError, compile_expr, evaluate


class TestArithmetic:
    def test_basic_ops(self):
        names = {"x": 7, "y": 2}
        assert evaluate("x + y", names) == 9
        assert evaluate("x - y", names) == 5
        assert evaluate("x * y", names) == 14
        assert evaluate("x / y", names) == 3.5
        assert evaluate("x // y", names) == 3
        assert evaluate("x % y", names) == 1
        assert evaluate("x ** y", names) == 49
        assert evaluate("-x", names) == -7
        assert evaluate("+x", names) == 7

    def test_paper_expressions(self):
        """The exact expressions of Figure 5."""
        names = {"procnum": 3, "numprocs": 8, "xsize": 256}
        assert evaluate("xsize*sizeof(float)", names) == 1024
        assert evaluate("3.24/numprocs", names) == pytest.approx(0.405)
        assert evaluate("procnum%2 == 0", names) is False
        assert evaluate("procnum%2 != 0", names) is True
        assert evaluate("procnum != 0", names) is True
        assert evaluate("procnum != numprocs-1", names) is True
        assert evaluate("procnum-1", names) == 2
        assert evaluate("procnum+1", names) == 4

    def test_sizeof_all_types(self):
        for name, size in [("char", 1), ("short", 2), ("int", 4),
                           ("float", 4), ("long", 8), ("double", 8)]:
            assert evaluate(f"sizeof({name})", {}) == size

    def test_functions(self):
        assert evaluate("min(3, 5)", {}) == 3
        assert evaluate("max(3, 5)", {}) == 5
        assert evaluate("abs(-4)", {}) == 4
        assert evaluate("ceil(2.1)", {}) == 3
        assert evaluate("floor(2.9)", {}) == 2
        assert evaluate("int(7.9)", {}) == 7
        assert evaluate("log2(8)", {}) == 3.0

    def test_bool_ops_and_chained_compare(self):
        names = {"p": 5, "n": 8}
        assert evaluate("p > 0 and p < n", names) is True
        assert evaluate("p == 0 or p == n-1", names) is False
        assert evaluate("not p == 0", names) is True
        assert evaluate("0 < p < n", names) is True
        assert evaluate("0 < p < 3", names) is False

    def test_conditional_expression(self):
        assert evaluate("1 if p == 0 else 2", {"p": 0}) == 1
        assert evaluate("1 if p == 0 else 2", {"p": 3}) == 2


class TestSafety:
    def test_unknown_variable(self):
        with pytest.raises(ExprError, match="unknown variable"):
            evaluate("undefined_thing", {})

    def test_attribute_access_blocked(self):
        with pytest.raises(ExprError):
            evaluate("().__class__", {})

    def test_subscript_blocked(self):
        with pytest.raises(ExprError):
            evaluate("a[0]", {"a": [1]})

    def test_arbitrary_calls_blocked(self):
        with pytest.raises(ExprError):
            evaluate("open('/etc/passwd')", {})
        with pytest.raises(ExprError):
            evaluate("__import__('os')", {})

    def test_method_calls_blocked(self):
        with pytest.raises(ExprError):
            evaluate("x.bit_length()", {"x": 5})

    def test_string_constants_blocked(self):
        with pytest.raises(ExprError):
            evaluate("'hello'", {})

    def test_lambda_blocked(self):
        with pytest.raises(ExprError):
            evaluate("(lambda: 1)()", {})

    def test_keyword_args_blocked(self):
        with pytest.raises(ExprError):
            evaluate("max(a=1)", {})

    def test_unknown_sizeof_type(self):
        with pytest.raises(ExprError, match="unknown C type"):
            evaluate("sizeof(widget)", {})

    def test_sizeof_arg_validation(self):
        with pytest.raises(ExprError):
            evaluate("sizeof(1)", {})
        with pytest.raises(ExprError):
            evaluate("sizeof(int, float)", {})

    def test_division_by_zero(self):
        with pytest.raises(ExprError, match="division by zero"):
            evaluate("1/n", {"n": 0})

    def test_empty_expression(self):
        with pytest.raises(ExprError):
            compile_expr("")
        with pytest.raises(ExprError):
            compile_expr("   ")

    def test_syntax_error(self):
        with pytest.raises(ExprError, match="cannot parse"):
            compile_expr("1 +")


class TestCompileOnce:
    def test_compiled_ast_reusable(self):
        tree = compile_expr("procnum * 2")
        assert evaluate(tree, {"procnum": 3}) == 6
        assert evaluate(tree, {"procnum": 10}) == 20


@given(
    a=st.integers(-1000, 1000),
    b=st.integers(1, 1000),
)
@settings(max_examples=60, deadline=None)
def test_matches_python_semantics(a, b):
    names = {"a": a, "b": b}
    assert evaluate("a + b", names) == a + b
    assert evaluate("a % b", names) == a % b
    assert evaluate("a // b", names) == a // b
    assert evaluate("a < b", names) == (a < b)
