"""Property-based parity tests: compiled schedules vs the interpreter.

Random message-passing programs are generated from a *global linear
order of events* -- each event is either a compute burst on one process
or a message (src, dst, size), and every process executes its slice of
the event list in order.  Programs built this way are deadlock-free by
construction: consider the earliest event whose operation never
completes; every prior event completed, so its sender reached its send
(sends never block), and FIFO/counting delivery then completes the recv
-- contradiction.  Wildcard receives are safe under the same argument as
long as each process uses either only-wildcard or only-fixed receives
(mixing the two lets a wildcard steal a later fixed receive's message),
so the generator draws that choice per process.

Each program is traced, compiled, and executed through both the scalar
and batched virtual machines; compiled execution must match interpreted
execution bit-for-bit -- under deterministic Hockney timing *and* under
a stochastic timing model (same RNG draw order).  Receivers sometimes
react to the delivered :class:`MatchInfo` (a compute burst proportional
to the received size), so a mis-delivered size or payload in the traced
schedule shows up as a clock difference.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pevpm import (
    ANY_SOURCE,
    BatchedVirtualMachine,
    HockneyTiming,
    TimingModel,
    VirtualMachine,
    compile_program,
)


class StochasticTiming(TimingModel):
    """A cheap, distribution-free stochastic timing source: every call
    draws from the run's RNG, so any reordering or miscount of draw
    sites between the compiled and interpreted paths breaks parity."""

    name = "stochastic-test"

    def one_way_time(self, size, contention, rng, intra=False):
        base = 2e-5 if not intra else 4e-6
        return base * (1.0 + 0.05 * contention) + rng.random() * 1e-6 * (
            1.0 + size / 1024.0
        )

    def local_send_time(self, size, contention, rng, intra=False):
        return 1e-6 + rng.random() * 2e-7 * (1.0 + size / 4096.0)


@st.composite
def programs(draw):
    """(program callable, nprocs, n_messages) from a global event order."""
    nprocs = draw(st.integers(min_value=2, max_value=4))
    # Per-process receive style: True -> every recv is a wildcard.
    wildcard = [draw(st.booleans()) for _ in range(nprocs)]
    n_events = draw(st.integers(min_value=1, max_value=14))
    events = []
    for _ in range(n_events):
        if draw(st.booleans()):
            src = draw(st.integers(min_value=0, max_value=nprocs - 1))
            dst = draw(
                st.integers(min_value=0, max_value=nprocs - 2).map(
                    lambda d, s=src: d if d < s else d + 1
                )
            )
            size = draw(st.sampled_from([0, 64, 512, 2048]))
            react = draw(st.booleans())
            events.append(("msg", src, dst, size, react))
        else:
            proc = draw(st.integers(min_value=0, max_value=nprocs - 1))
            micros = draw(st.integers(min_value=1, max_value=50))
            events.append(("compute", proc, micros))

    scripts = [[] for _ in range(nprocs)]
    n_messages = 0
    for event in events:
        if event[0] == "compute":
            _, proc, micros = event
            scripts[proc].append(("serial", micros * 1e-6))
        else:
            _, src, dst, size, react = event
            n_messages += 1
            scripts[src].append(("send", dst, size))
            scripts[dst].append(
                ("recv", ANY_SOURCE if wildcard[dst] else src, react)
            )

    def program(ctx):
        for step in scripts[ctx.procnum]:
            if step[0] == "serial":
                yield ctx.serial(step[1], label="work")
            elif step[0] == "send":
                yield ctx.send(step[1], step[2], label="m",
                               payload=step[2] * 2.0)
            else:
                info = yield ctx.recv(step[1], label="m")
                assert info.payload == info.size * 2.0
                if step[2]:
                    # React to the delivered MatchInfo: wrong size or
                    # payload in a traced schedule shifts the clock.
                    yield ctx.serial(1e-7 * (1.0 + info.size), label="react")

    return program, nprocs, n_messages


@settings(max_examples=30, deadline=None)
@given(programs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_scalar_parity_deterministic_and_stochastic(progspec, seed):
    program, nprocs, n_messages = progspec
    compiled = compile_program(program, nprocs)
    if not compiled.divergent:
        assert compiled.messages == n_messages
    for timing in (HockneyTiming(1e-5, 1e-9), StochasticTiming()):
        a = VirtualMachine(nprocs, timing, seed=seed).run(program)
        b = VirtualMachine(nprocs, timing, seed=seed).run(compiled)
        assert b.elapsed == a.elapsed
        assert b.finish_times == a.finish_times
        assert b.compute_time == a.compute_time
        assert b.recv_wait_time == a.recv_wait_time
        assert b.messages == a.messages
        assert b.sweeps == a.sweeps


@settings(max_examples=15, deadline=None)
@given(programs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_batched_parity_stochastic(progspec, seed):
    program, nprocs, _ = progspec
    compiled = compile_program(program, nprocs)
    timing = StochasticTiming()
    a = BatchedVirtualMachine(nprocs, timing, seed=seed, runs=8).run(program)
    b = BatchedVirtualMachine(nprocs, timing, seed=seed, runs=8).run(compiled)
    assert [r.elapsed for r in b] == [r.elapsed for r in a]


@settings(max_examples=15, deadline=None)
@given(programs())
def test_compile_is_idempotent_and_schedules_cover_all_ops(progspec):
    program, nprocs, _ = progspec
    first = compile_program(program, nprocs)
    again = compile_program(program, nprocs)
    assert again.divergent == first.divergent
    if first.divergent:
        return
    assert again.ops == first.ops
    sched = first.schedule(2)
    assert sum(len(ops) for ops in sched) == first.n_ops
    for ops in sched:
        for op in ops:
            assert op[0] in ("serial", "send", "recv")
            if op[0] == "send":
                assert len(op) == 6 and isinstance(op[5], bool)
