"""Property-based engine parity for collective directives and the
collectives-era workloads.

Random directive models mixing serial bursts and the four collective
directives (bcast / reduce / allreduce / allgather, with random sizes
and roots), plus random halo-stencil configurations, are evaluated on
the scalar and batched virtual machines -- each both through the
generator interpreter and through the compiled static schedules.  The
lowered collectives are straight-line point-to-point code (sends are
non-blocking; only receives are decision points), so every config must
compile non-divergent and the compiled run must match the interpreted
run bit-for-bit, under deterministic Hockney timing *and* under
measured distribution timing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import amg_model, halo_model
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import (
    BatchedVirtualMachine,
    Block,
    Collective,
    HockneyTiming,
    Loop,
    Serial,
    VirtualMachine,
    compile_model,
    compile_program,
    timing_from_db,
)
from repro.simnet import perseus

OPS = ["bcast", "reduce", "allreduce", "allgather"]


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(
        perseus(16), seed=3, settings=BenchSettings(reps=30, warmup=3)
    )
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@st.composite
def collective_models(draw):
    """(Block, nprocs): 1..5 serial/collective directives, maybe looped."""
    nprocs = draw(st.integers(min_value=1, max_value=6))
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        if draw(st.booleans()):
            micros = draw(st.integers(min_value=1, max_value=40))
            body.append(Serial(repr(micros * 1e-6)))
        else:
            op = draw(st.sampled_from(OPS))
            size = draw(st.sampled_from([0, 8, 512, 4096]))
            root = draw(st.integers(min_value=0, max_value=nprocs - 1))
            body.append(Collective(op, str(size), root=str(root)))
    block = Block(body)
    if draw(st.booleans()):
        block = Block([Loop(str(draw(st.integers(1, 3))), block)])
    return block, nprocs


@st.composite
def halo_configs(draw):
    """(Block, nprocs) for a random (valid) halo stencil."""
    dims = draw(st.integers(min_value=1, max_value=3))
    px = draw(st.sampled_from([1, 2]))
    nprocs = draw(st.sampled_from([2, 4, 6]))
    try:
        model = halo_model(
            iterations=draw(st.integers(min_value=1, max_value=3)),
            nx=draw(st.sampled_from([4, 8, 16])),
            halo=draw(st.integers(min_value=1, max_value=2)),
            dims=dims,
            px=px,
            reduce_every=draw(st.sampled_from([0, 1, 2])),
        )
    except ValueError:
        model = None
    return model, nprocs, px


def assert_engine_parity(model, nprocs, timing, seed):
    program = compile_model(model)
    compiled = compile_program(model, nprocs)
    # Straight-line lowerings: fixed-source receives only, so the
    # compiler can never mark the program divergent.
    assert not compiled.divergent
    a = VirtualMachine(nprocs, timing, seed=seed).run(program)
    b = VirtualMachine(nprocs, timing, seed=seed).run(compiled)
    assert b.elapsed == a.elapsed
    assert b.finish_times == a.finish_times
    assert b.messages == a.messages
    va = BatchedVirtualMachine(nprocs, timing, seed=seed, runs=4).run(program)
    vb = BatchedVirtualMachine(nprocs, timing, seed=seed, runs=4).run(compiled)
    assert [r.elapsed for r in vb] == [r.elapsed for r in va]


@settings(max_examples=25, deadline=None)
@given(collective_models(), st.integers(min_value=0, max_value=2**31 - 1))
def test_collective_hockney_parity(spec, seed):
    model, nprocs = spec
    timing = HockneyTiming(1e-5, 1e8)
    assert_engine_parity(model, nprocs, timing, seed)


@settings(max_examples=15, deadline=None)
@given(collective_models(), st.integers(min_value=0, max_value=2**31 - 1))
def test_collective_distribution_parity(db, spec, seed):
    model, nprocs = spec
    timing = timing_from_db(db, mode="distribution", nprocs=max(nprocs, 2))
    assert_engine_parity(model, nprocs, timing, seed)


@settings(max_examples=15, deadline=None)
@given(halo_configs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_halo_distribution_parity(db, spec, seed):
    model, nprocs, px = spec
    if model is None or nprocs % px:
        return  # invalid (dims, px, nprocs) draw
    timing = timing_from_db(db, mode="distribution", nprocs=nprocs)
    try:
        assert_engine_parity(model, nprocs, timing, seed)
    except ValueError:
        return  # decomposition rejected at trace time for this nprocs


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from([2, 4]),
    st.sampled_from([8, 16]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_amg_distribution_parity(db, nprocs, nx, seed):
    model = amg_model(iterations=1, nx=nx, coarse_nx=4)
    timing = timing_from_db(db, mode="distribution", nprocs=nprocs)
    assert_engine_parity(model, nprocs, timing, seed)
