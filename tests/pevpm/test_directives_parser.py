"""Tests for the directive IR and the Figure 5 annotation parser."""

import pytest

from repro.apps.jacobi import JACOBI_ANNOTATED_SOURCE, jacobi_model, parse_jacobi
from repro.pevpm.directives import (
    Block,
    Loop,
    Message,
    MessageKind,
    ModelError,
    Runon,
    Serial,
    validate_model,
)
from repro.pevpm.interpreter import compile_model, model_messages
from repro.pevpm.machine import ProcContext
from repro.pevpm.parser import ParseError, parse_annotations


class TestDirectiveConstruction:
    def test_message_kind_parse(self):
        assert MessageKind.parse("MPI_Send") is MessageKind.SEND
        assert MessageKind.parse("mpi_isend") is MessageKind.ISEND
        assert MessageKind.parse("MPI_Recv") is MessageKind.RECV
        assert MessageKind.SEND.is_send
        assert not MessageKind.RECV.is_send
        with pytest.raises(ModelError):
            MessageKind.parse("MPI_Frobnicate")

    def test_bad_expressions_rejected_eagerly(self):
        with pytest.raises(Exception):
            Serial("1 +")
        with pytest.raises(Exception):
            Message("MPI_Send", "size((", "0", "1")
        with pytest.raises(Exception):
            Loop("")

    def test_runon_needs_conditions(self):
        with pytest.raises(ModelError):
            Runon([])

    def test_validate_block_count_mismatch(self):
        bad = Block([Runon(["procnum == 0", "procnum != 0"], blocks=[Block()])])
        with pytest.raises(ModelError, match="condition"):
            validate_model(bad)

    def test_validate_root_type(self):
        with pytest.raises(ModelError):
            validate_model(Serial("1.0"))


class TestParser:
    def test_minimal_loop(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 10
// PEVPM {
// PEVPM Serial time = 0.5
// PEVPM }
"""
        )
        assert len(model.children) == 1
        loop = model.children[0]
        assert isinstance(loop, Loop)
        assert loop.iterations == "10"
        assert isinstance(loop.body.children[0], Serial)

    def test_continuation_lines(self):
        model = parse_annotations(
            """
// PEVPM Message type = MPI_Send
// PEVPM &       size = 8*sizeof(double)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
"""
        )
        msg = model.children[0]
        assert isinstance(msg, Message)
        assert msg.kind is MessageKind.SEND
        assert msg.size == "8*sizeof(double)"
        assert msg.dst == "procnum+1"

    def test_serial_with_machine(self):
        model = parse_annotations("// PEVPM Serial on perseus time = 3.24/numprocs")
        serial = model.children[0]
        assert serial.machine == "perseus"
        assert serial.time == "3.24/numprocs"

    def test_serial_without_machine(self):
        model = parse_annotations("// PEVPM Serial time = 0.1")
        assert model.children[0].machine == ""

    def test_runon_two_branches(self):
        model = parse_annotations(
            """
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum != 0
// PEVPM {
// PEVPM Serial time = 1.0
// PEVPM }
// PEVPM {
// PEVPM Serial time = 2.0
// PEVPM }
"""
        )
        runon = model.children[0]
        assert isinstance(runon, Runon)
        assert len(runon.conditions) == 2
        assert len(runon.blocks) == 2

    def test_non_pevpm_lines_ignored(self):
        model = parse_annotations(
            """
int main() { /* real C code */
// a normal comment
// PEVPM Serial time = 1.0
}
"""
        )
        assert len(model.children) == 1

    def test_error_no_annotations(self):
        with pytest.raises(ParseError, match="no '// PEVPM'"):
            parse_annotations("int main() {}")

    def test_error_unclosed_block(self):
        with pytest.raises(ParseError, match="missing"):
            parse_annotations("// PEVPM Loop iterations = 1\n// PEVPM {")

    def test_error_unmatched_close(self):
        with pytest.raises(ParseError, match="unmatched"):
            parse_annotations("// PEVPM }")

    def test_error_missing_block(self):
        with pytest.raises(ParseError, match="expected"):
            parse_annotations("// PEVPM Loop iterations = 5")

    def test_error_orphan_continuation(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_annotations("// PEVPM & size = 4")

    def test_error_unknown_directive(self):
        with pytest.raises(ParseError, match="unknown directive"):
            parse_annotations("// PEVPM Telepathy speed = 1")

    def test_error_message_missing_fields(self):
        with pytest.raises(ParseError, match="missing field"):
            parse_annotations("// PEVPM Message type = MPI_Send")

    def test_error_bad_runon_condition_names(self):
        with pytest.raises(ParseError, match="c1, c2"):
            parse_annotations(
                "// PEVPM Runon cond = procnum == 0\n// PEVPM {\n// PEVPM }"
            )

    def test_error_reports_line_numbers(self):
        text = "\n\n\n// PEVPM Bogus x = 1"
        with pytest.raises(ParseError, match="line 4"):
            parse_annotations(text)


class TestJacobiFigure5:
    def test_parses(self):
        model = parse_jacobi()
        assert isinstance(model, Block)
        loop = model.children[0]
        assert isinstance(loop, Loop)

    def test_structure_matches_paper(self):
        """One top-level loop; inside: a two-branch Runon (even/odd) and a
        Serial compute step."""
        model = parse_jacobi()
        loop = model.children[0]
        body = loop.body.children
        runons = [n for n in body if isinstance(n, Runon)]
        serials = [n for n in body if isinstance(n, Serial)]
        assert len(runons) == 1 and len(runons[0].conditions) == 2
        assert len(serials) == 1
        assert serials[0].machine == "perseus"
        assert serials[0].time == "serial_time/numprocs"

    def test_message_counts_match_hand_model(self):
        """Parsed Figure 5 and the programmatically built model emit the
        same number of messages for several (nprocs, iterations)."""
        params = {"iterations": 3, "xsize": 256, "serial_time": 3.24e-3}
        for nprocs in (1, 2, 4, 5, 8):
            parsed = model_messages(parse_jacobi(), nprocs, params)
            built = model_messages(
                jacobi_model(iterations=3), nprocs,
                {"serial_time": 3.24e-3},
            )
            # Every process exchanges with each neighbour, both directions:
            # 2*(nprocs-1) messages per iteration.
            assert parsed == built == 3 * 2 * (nprocs - 1)

    def test_ops_are_symmetric_sends_and_recvs(self):
        params = {"iterations": 1, "xsize": 256, "serial_time": 3.24e-3}
        program = compile_model(parse_jacobi(), params)
        sends, recvs = [], []
        for p in range(6):
            for op in program(ProcContext(p, 6)):
                if op[0] == "send":
                    sends.append((p, op[1]))
                elif op[0] == "recv":
                    recvs.append((op[1], p))
        assert sorted(sends) == sorted(recvs)

    def test_message_size_is_1024(self):
        params = {"iterations": 1, "xsize": 256, "serial_time": 3.24e-3}
        program = compile_model(parse_jacobi(), params)
        sizes = {
            op[2]
            for p in range(4)
            for op in program(ProcContext(p, 4))
            if op[0] == "send"
        }
        assert sizes == {1024}

    def test_single_process_has_no_messages(self):
        params = {"iterations": 5, "xsize": 256, "serial_time": 3.24e-3}
        assert model_messages(parse_jacobi(), 1, params) == 0


class TestInterpreter:
    def test_loop_iteration_variable(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 4
// PEVPM {
// PEVPM Serial time = 0.001 * (iteration + 1)
// PEVPM }
"""
        )
        program = compile_model(model)
        ops = list(program(ProcContext(0, 1)))
        times = [op[1] for op in ops]
        assert times == pytest.approx([0.001, 0.002, 0.003, 0.004])

    def test_runon_first_match_wins(self):
        model = parse_annotations(
            """
// PEVPM Runon c1 = procnum >= 0
// PEVPM &     c2 = procnum == 0
// PEVPM {
// PEVPM Serial time = 1.0
// PEVPM }
// PEVPM {
// PEVPM Serial time = 2.0
// PEVPM }
"""
        )
        program = compile_model(model)
        ops = list(program(ProcContext(0, 2)))
        assert [op[1] for op in ops] == [1.0]

    def test_misplaced_send_detected(self):
        model = Block([Message("MPI_Send", "8", "0", "1")])
        program = compile_model(model)
        with pytest.raises(ModelError, match="guard it with Runon"):
            list(program(ProcContext(1, 2)))  # proc 1 reaches a from=0 send

    def test_misplaced_recv_detected(self):
        model = Block([Message("MPI_Recv", "8", "0", "1")])
        program = compile_model(model)
        with pytest.raises(ModelError, match="guard it with Runon"):
            list(program(ProcContext(0, 2)))

    def test_negative_serial_time_rejected(self):
        model = Block([Serial("0.0 - 1.0")])
        with pytest.raises(ModelError, match="negative Serial"):
            list(compile_model(model)(ProcContext(0, 1)))

    def test_negative_loop_count_rejected(self):
        model = Block([Loop("0 - 2", body=Block([Serial("1.0")]))])
        with pytest.raises(ModelError, match="negative iteration"):
            list(compile_model(model)(ProcContext(0, 1)))

    def test_params_flow_into_expressions(self):
        model = Block([Serial("base * 2")])
        program = compile_model(model, {"base": 0.25})
        ops = list(program(ProcContext(0, 1)))
        assert ops[0][1] == 0.5


class TestNestedStructures:
    def test_nested_loops_with_iteration_variable(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 3
// PEVPM {
// PEVPM Loop iterations = iteration + 1
// PEVPM {
// PEVPM Serial time = 0.001
// PEVPM }
// PEVPM }
"""
        )
        program = compile_model(model)
        ops = list(program(ProcContext(0, 1)))
        # Inner loop runs 1 + 2 + 3 = 6 times.
        assert len(ops) == 6

    def test_outer_iteration_restored_after_inner_loop(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 2
// PEVPM {
// PEVPM Loop iterations = 2
// PEVPM {
// PEVPM Serial time = 0.001
// PEVPM }
// PEVPM Serial time = 0.01 * (iteration + 1)
// PEVPM }
"""
        )
        program = compile_model(model)
        outer_times = [op[1] for op in program(ProcContext(0, 1)) if op[1] >= 0.01]
        assert outer_times == pytest.approx([0.01, 0.02])

    def test_runon_inside_loop(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 4
// PEVPM {
// PEVPM Runon c1 = iteration % 2 == 0
// PEVPM {
// PEVPM Serial time = 1.0
// PEVPM }
// PEVPM }
"""
        )
        ops = list(compile_model(model)(ProcContext(0, 1)))
        assert len(ops) == 2  # iterations 0 and 2 only

    def test_loop_zero_iterations(self):
        model = parse_annotations(
            """
// PEVPM Loop iterations = 0
// PEVPM {
// PEVPM Serial time = 1.0
// PEVPM }
"""
        )
        assert list(compile_model(model)(ProcContext(0, 1))) == []
