"""End-to-end property tests: randomly generated models never break the
virtual machine.

Strategy: build random directive trees from matched communication rounds
(so they are deadlock-free by construction) and check the machine's
invariants; separately, build mismatched trees and check they fail *only*
with ModelDeadlock -- never a crash or a silent wrong answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pevpm.directives import Block, Loop, Message, Runon, Serial
from repro.pevpm.interpreter import compile_model, model_messages
from repro.pevpm.machine import ModelDeadlock, VirtualMachine
from tests.pevpm.test_machine import FixedTiming


def _exchange_round(offset: int, size: int) -> list:
    """A matched communication round: every proc sends to (proc+offset)
    and receives from (proc-offset), guarded so it works at any nprocs
    via modular targets expressed with Runon guards."""
    return [
        Message("MPI_Send", str(size), "procnum", f"(procnum+{offset}) % numprocs"),
        Message("MPI_Recv", str(size), f"(procnum-{offset}) % numprocs", "procnum"),
    ]


@st.composite
def matched_models(draw):
    iters = draw(st.integers(1, 4))
    rounds = draw(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 4096)),
            min_size=1,
            max_size=3,
        )
    )
    body = []
    body.append(Serial(draw(st.sampled_from(["0.001", "0.01/numprocs", "0.0"]))))
    for offset, size in rounds:
        body.extend(_exchange_round(offset, size))
    offsets = [offset for offset, _size in rounds]
    return Block([Loop(str(iters), body=Block(body))]), iters, len(rounds), offsets


@given(model_info=matched_models(), nprocs=st.integers(2, 6), seed=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_matched_models_complete_cleanly(model_info, nprocs, seed):
    from hypothesis import assume

    model, iters, nrounds, offsets = model_info
    # An offset that is a multiple of nprocs would be a self-send, which
    # the model API rejects (and MPI programs don't usually write).
    assume(all(offset % nprocs != 0 for offset in offsets))
    program = compile_model(model)
    vm = VirtualMachine(nprocs, FixedTiming(), seed=seed)
    result = vm.run(program)

    # Invariants: every message sent was received; virtual time advanced
    # monotonically; accounting decomposes each process's clock.
    assert result.messages == iters * nrounds * nprocs
    assert not result.orphans
    assert result.elapsed >= 0
    for p in range(nprocs):
        total = (
            result.compute_time[p]
            + result.send_time[p]
            + result.recv_wait_time[p]
        )
        assert total == pytest.approx(result.finish_times[p], rel=1e-9, abs=1e-12)
    # Static message count agrees with the dynamic run.
    assert model_messages(model, nprocs) == result.messages


@given(nprocs=st.integers(2, 5), seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_mismatched_models_deadlock_cleanly(nprocs, seed):
    """A receive with no matching send must produce ModelDeadlock (with
    the blocked set), never a hang, crash or silent completion."""
    model = Block(
        [
            Message("MPI_Send", "64", "procnum", "(procnum+1) % numprocs"),
            Message("MPI_Recv", "64", "(procnum-1) % numprocs", "procnum"),
            # One extra unmatched receive on every process.
            Message("MPI_Recv", "64", "(procnum-1) % numprocs", "procnum"),
        ]
    )
    vm = VirtualMachine(nprocs, FixedTiming(), seed=seed)
    with pytest.raises(ModelDeadlock) as exc:
        vm.run(compile_model(model))
    assert set(exc.value.blocked) == set(range(nprocs))
