"""Tests for the Section 4 baseline models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpibench import BenchmarkResult, Histogram
from repro.models import (
    EmpiricalIsoefficiency,
    GustafsonModel,
    HockneyFit,
    amdahl_limit,
    amdahl_speedup,
    efficiency,
    efficiency_curve,
    fit_hockney,
    fit_hockney_curve,
    serial_fraction_from_speedup,
)


class TestHockney:
    def test_exact_recovery_from_linear_data(self):
        l, w = 60e-6, 12.5e6
        sizes = [0, 1024, 4096, 16384]
        times = [l + s / w for s in sizes]
        fit = fit_hockney_curve(sizes, times)
        assert fit.latency == pytest.approx(l, rel=1e-6)
        assert fit.bandwidth == pytest.approx(w, rel=1e-6)
        assert fit.rms_residual < 1e-12
        assert fit.time(8192) == pytest.approx(l + 8192 / w)

    def test_r_inf_and_n_half(self):
        fit = HockneyFit(latency=100e-6, bandwidth=10e6, rms_residual=0,
                         max_residual=0, n_points=2)
        assert fit.r_inf == 10e6
        assert fit.n_half == pytest.approx(1000.0)

    def test_relative_error(self):
        fit = HockneyFit(latency=0.0, bandwidth=1e6, rms_residual=0,
                         max_residual=0, n_points=2)
        assert fit.relative_error(1_000_000, 2.0) == pytest.approx(-0.5)
        with pytest.raises(ValueError):
            fit.relative_error(1, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_hockney_curve([1], [1.0])
        with pytest.raises(ValueError):
            fit_hockney_curve([1, 2], [1.0, -1.0])
        fit = fit_hockney_curve([0, 10], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit.time(-1)

    def test_fit_from_benchmark_result(self):
        rng = np.random.default_rng(0)
        hists = {}
        for size in (0, 1024, 8192):
            base = 50e-6 + size / 12.5e6
            hists[size] = Histogram.from_samples(
                base + rng.gamma(2.0, 3e-6, size=100), bins=20
            )
        result = BenchmarkResult(
            op="isend", nodes=2, ppn=1, cluster="c", histograms=hists
        )
        fit = fit_hockney(result, use="min")
        assert fit.latency == pytest.approx(50e-6, rel=0.2)
        assert fit.bandwidth == pytest.approx(12.5e6, rel=0.2)
        fit_mean = fit_hockney(result, use="mean")
        assert fit_mean.latency > fit.latency  # means sit above minima

    def test_max_size_restricts_fit(self):
        result = BenchmarkResult(
            op="isend", nodes=2, ppn=1, cluster="c",
            histograms={
                s: Histogram.from_samples([50e-6 + s / 1e7] * 3)
                for s in (0, 1024, 65536)
            },
        )
        fit = fit_hockney(result, max_size=2048)
        assert fit.n_points == 2

    def test_use_validation(self):
        result = BenchmarkResult(
            op="isend", nodes=2, ppn=1, cluster="c",
            histograms={0: Histogram.from_samples([1e-4] * 3),
                        8: Histogram.from_samples([2e-4] * 3)},
        )
        with pytest.raises(ValueError):
            fit_hockney(result, use="median")


class TestAmdahl:
    def test_known_values(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
        assert amdahl_speedup(1.0, 8) == pytest.approx(1.0)
        assert amdahl_speedup(0.1, 10) == pytest.approx(1.0 / (0.1 + 0.09))

    def test_limit(self):
        assert amdahl_limit(0.25) == pytest.approx(4.0)
        assert amdahl_limit(0.0) == float("inf")

    def test_inversion_roundtrip(self):
        f = 0.07
        s = amdahl_speedup(f, 16)
        assert serial_fraction_from_speedup(s, 16) == pytest.approx(f)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)
        with pytest.raises(ValueError):
            amdahl_limit(2.0)
        with pytest.raises(ValueError):
            serial_fraction_from_speedup(5.0, 4)
        with pytest.raises(ValueError):
            serial_fraction_from_speedup(1.0, 1)

    def test_gustafson(self):
        g = GustafsonModel(serial_fraction=0.1)
        assert g.speedup(1) == pytest.approx(1.0)
        assert g.speedup(10) == pytest.approx(10 - 0.9)
        with pytest.raises(ValueError):
            GustafsonModel(serial_fraction=1.5)
        with pytest.raises(ValueError):
            g.speedup(0)


class TestIsoefficiency:
    def test_efficiency(self):
        assert efficiency(10.0, 2.0, 5) == pytest.approx(1.0)
        assert efficiency(10.0, 5.0, 4) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            efficiency(0.0, 1.0, 2)

    def test_efficiency_curve(self):
        curve = efficiency_curve(8.0, {2: 5.0, 4: 3.0})
        assert curve[2] == pytest.approx(0.8)
        assert curve[4] == pytest.approx(8.0 / 12.0)

    def _iso(self):
        # Synthetic scalable workload: T(w, p) = w/p + 0.1 (fixed overhead)
        serial = {w: float(w) for w in (1.0, 4.0, 16.0, 64.0)}
        obs = [
            (w, p, w / p + 0.1)
            for w in serial
            for p in (2, 4, 8)
        ]
        return EmpiricalIsoefficiency(obs, serial)

    def test_efficiency_table(self):
        iso = self._iso()
        table = iso.efficiency_table()
        assert set(table) == {2, 4, 8}
        effs = [e for _w, e in table[4]]
        assert effs == sorted(effs)  # efficiency rises with work

    def test_work_for_efficiency_interpolates(self):
        iso = self._iso()
        w = iso.work_for_efficiency(4, 0.8)
        # E(w,4) = (w/4)/(w/4+0.1) = 0.8 at w = 1.6.
        assert w == pytest.approx(1.6, rel=0.3)

    def test_isoefficiency_curve_grows_with_procs(self):
        iso = self._iso()
        curve = iso.isoefficiency_curve(0.8)
        assert curve[2] < curve[4] < curve[8]

    def test_unreachable_target(self):
        serial = {1.0: 1.0}
        iso = EmpiricalIsoefficiency([(1.0, 4, 10.0)], serial)
        assert iso.work_for_efficiency(4, 0.9) is None

    def test_validation(self):
        iso = self._iso()
        with pytest.raises(ValueError):
            iso.work_for_efficiency(2, 0.0)
        with pytest.raises(KeyError):
            iso.work_for_efficiency(99, 0.5)
        bad = EmpiricalIsoefficiency([(3.0, 2, 1.0)], {})
        with pytest.raises(KeyError):
            bad.efficiency_table()


@given(
    f=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    p=st.integers(min_value=1, max_value=4096),
)
@settings(max_examples=80, deadline=None)
def test_amdahl_bounds(f, p):
    """Speedup is always in [1, P] and monotone decreasing in f."""
    s = amdahl_speedup(f, p)
    assert 1.0 - 1e-12 <= s <= p + 1e-9
    if f < 0.99:
        assert amdahl_speedup(f + 0.01, p) <= s + 1e-12
