"""Repo-wide pytest configuration.

Adds the ``--regen-goldens`` escape hatch used by
``tests/test_goldens.py`` (and ``scripts/regen_goldens.py``): with the
flag, the golden-model suite rewrites ``tests/goldens/*.json`` from the
current code instead of byte-comparing against the pinned documents.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current code "
        "instead of comparing against them",
    )
