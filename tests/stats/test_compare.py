"""Nonparametric comparison: KS against scipy, verdict taxonomy."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import ci_overlap, ks_2samp, ks_pvalue, verdict_for
from repro.stats.compare import ks_statistic


class TestKS:
    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=80)
        b = rng.normal(0.5, size=70)
        d, _ = ks_2samp(a, b)
        ref = sps.ks_2samp(a, b)
        assert d == pytest.approx(ref.statistic, abs=1e-12)

    def test_pvalue_close_to_scipy_asymp(self):
        rng = np.random.default_rng(4)
        for loc in (0.0, 0.3, 1.0):
            a = rng.normal(size=100)
            b = rng.normal(loc, size=120)
            d, p = ks_2samp(a, b)
            ref = sps.ks_2samp(a, b, method="asymp")
            # Stephens' correction differs slightly from scipy's plain
            # asymptotic formula; agreement to a few percent is expected.
            assert p == pytest.approx(ref.pvalue, abs=0.05)

    def test_identical_samples(self):
        x = [1.0, 2.0, 3.0, 4.0]
        d, p = ks_2samp(x, x)
        assert d == 0.0
        assert p == 1.0

    def test_disjoint_samples(self):
        d, p = ks_2samp([1.0, 2.0, 3.0] * 10, [10.0, 11.0, 12.0] * 10)
        assert d == 1.0
        assert p < 0.001

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])

    def test_pvalue_domain_checks(self):
        with pytest.raises(ValueError):
            ks_pvalue(1.5, 10, 10)
        with pytest.raises(ValueError):
            ks_pvalue(0.5, 0, 10)
        assert ks_pvalue(0.0, 10, 10) == 1.0


class TestVerdict:
    def test_match(self):
        rng = np.random.default_rng(9)
        a = rng.normal(1.0, 0.1, size=60)
        b = rng.normal(1.0, 0.1, size=60)
        v = verdict_for(a, b)
        assert v.verdict == "match"
        assert v.ci_overlap
        assert v.ks_pvalue >= 0.05

    def test_different(self):
        rng = np.random.default_rng(9)
        a = rng.normal(1.0, 0.1, size=100)
        b = rng.exponential(1.0, size=100)
        v = verdict_for(a, b)
        assert v.verdict == "different"
        assert v.ks_pvalue < 0.05

    def test_shifted(self):
        # Large same-shape samples whose means separate by a hair: with a
        # tiny alpha KS cannot reject, but the (tight) mean CIs split.
        rng = np.random.default_rng(12)
        a = rng.normal(1.0, 0.05, size=400)
        b = rng.normal(1.012, 0.05, size=400)
        v = verdict_for(a, b, alpha=1e-6)
        assert v.verdict == "shifted"
        assert not v.ci_overlap

    def test_ci_overlap_helper(self):
        assert ci_overlap([1.0, 1.1, 0.9], [1.05, 0.95, 1.0])
        assert not ci_overlap([1.0, 1.001, 0.999] * 20, [2.0, 2.001, 1.999] * 20)
