"""Sequential stopping rule: schedule, alignment, satisfaction, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import PrecisionTarget, achieved_rse, next_total


class TestAchievedRse:
    def test_known_value(self):
        x = [1.0, 1.1, 0.9, 1.05, 0.95]
        import math

        half = 1.959964 * np.std(x, ddof=1) / math.sqrt(len(x))
        assert achieved_rse(x) == pytest.approx(half / np.mean(x), rel=1e-5)

    @pytest.mark.parametrize("times", [[], [1.0]])
    def test_inestimable_is_inf(self, times):
        assert achieved_rse(times) == float("inf")

    def test_zero_mean_zero_spread(self):
        assert achieved_rse([0.0, 0.0, 0.0]) == 0.0

    def test_zero_mean_with_spread(self):
        assert achieved_rse([-1.0, 1.0]) == float("inf")

    def test_tighter_level_wider(self):
        x = np.random.default_rng(2).exponential(size=30)
        assert achieved_rse(x, level=0.99) > achieved_rse(x, level=0.90)


class TestPrecisionTarget:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            PrecisionTarget()

    @pytest.mark.parametrize(
        "kw",
        [
            {"rse": 0.0},
            {"rse": -0.1},
            {"abs_halfwidth": 0.0},
            {"rse": 0.1, "level": 1.0},
            {"rse": 0.1, "level": 0.0},
            {"rse": 0.1, "min_runs": 1},
            {"rse": 0.1, "min_runs": 8, "max_runs": 4},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            PrecisionTarget(**kw)

    def test_doc_roundtrip(self):
        t = PrecisionTarget(rse=0.02, level=0.9, min_runs=8, max_runs=64)
        assert PrecisionTarget.from_doc(t.to_doc()) == t
        assert "abs_halfwidth" not in t.to_doc()
        t2 = PrecisionTarget(abs_halfwidth=1e-6)
        assert PrecisionTarget.from_doc(t2.to_doc()) == t2
        assert "rse" not in t2.to_doc()

    def test_satisfied_needs_min_runs(self):
        t = PrecisionTarget(rse=10.0, min_runs=8)
        tight = [1.0, 1.0001, 0.9999, 1.0]
        assert not t.satisfied(tight)  # only 4 < min_runs=8
        assert t.satisfied(tight * 2)

    def test_satisfied_rse_bound(self):
        noisy = list(np.random.default_rng(0).exponential(size=8))
        assert PrecisionTarget(rse=100.0).satisfied(noisy)
        assert not PrecisionTarget(rse=1e-6).satisfied(noisy)

    def test_satisfied_abs_bound(self):
        x = [1.0, 1.1, 0.9, 1.0]
        assert PrecisionTarget(abs_halfwidth=10.0).satisfied(x)
        assert not PrecisionTarget(abs_halfwidth=1e-9).satisfied(x)

    def test_satisfied_both_bounds_must_hold(self):
        x = [1.0, 1.1, 0.9, 1.0]
        assert not PrecisionTarget(rse=100.0, abs_halfwidth=1e-9).satisfied(x)

    def test_satisfied_zero_mean(self):
        t = PrecisionTarget(rse=0.01, min_runs=2)
        assert t.satisfied([0.0, 0.0])
        assert not t.satisfied([-1.0, 1.0])


class TestNextTotal:
    def test_doubling_schedule(self):
        t = PrecisionTarget(rse=0.01, min_runs=4, max_runs=256)
        totals = []
        done = 0
        while done < t.max_runs:
            done = next_total(done, t)
            totals.append(done)
        assert totals == [4, 8, 16, 32, 64, 128, 256]

    def test_cap_is_sticky(self):
        t = PrecisionTarget(rse=0.01, max_runs=16)
        assert next_total(16, t) == 16

    def test_cap_can_be_partial(self):
        t = PrecisionTarget(rse=0.01, min_runs=4, max_runs=100)
        assert next_total(64, t) == 100

    def test_batch_alignment(self):
        t = PrecisionTarget(rse=0.01, min_runs=4, max_runs=256)
        assert next_total(0, t, batch=16) == 16
        assert next_total(16, t, batch=16) == 32
        assert next_total(0, t, batch=3) == 6  # 4 aligned up to 3s

    def test_cap_beats_alignment(self):
        t = PrecisionTarget(rse=0.01, min_runs=4, max_runs=10)
        assert next_total(8, t, batch=16) == 10

    def test_bad_batch(self):
        t = PrecisionTarget(rse=0.01)
        with pytest.raises(ValueError):
            next_total(0, t, batch=0)

    @given(
        min_runs=st.integers(2, 32),
        max_runs_extra=st.integers(0, 300),
        batch=st.one_of(st.none(), st.integers(1, 64)),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_always_terminates_at_cap(self, min_runs, max_runs_extra, batch):
        t = PrecisionTarget(rse=0.01, min_runs=min_runs, max_runs=min_runs + max_runs_extra)
        done, steps = 0, 0
        while done < t.max_runs:
            nxt = next_total(done, t, batch=batch)
            assert nxt > done  # strict progress until the cap
            assert nxt <= t.max_runs
            if batch is not None and nxt < t.max_runs:
                assert nxt % batch == 0  # whole chunks below the cap
            done = nxt
            steps += 1
            assert steps < 10_000
        assert done == t.max_runs
