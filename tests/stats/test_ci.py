"""Confidence-interval layer: normal quantiles, mean CIs, quantile CIs."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import ConfidenceInterval, mean_ci, norm_ppf, quantile_ci
from repro.stats.ci import bootstrap_quantile_ci, z_for_level


class TestNormPpf:
    @pytest.mark.parametrize("p", [1e-9, 0.001, 0.02, 0.25, 0.5, 0.75, 0.975, 0.999, 1 - 1e-9])
    def test_matches_scipy(self, p):
        assert norm_ppf(p) == pytest.approx(sps.norm.ppf(p), rel=1e-8, abs=1e-8)

    def test_symmetry(self):
        for p in (0.01, 0.2, 0.45):
            assert norm_ppf(p) == pytest.approx(-norm_ppf(1 - p), rel=1e-9)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_out_of_domain(self, p):
        with pytest.raises(ValueError):
            norm_ppf(p)

    def test_z_for_level(self):
        assert z_for_level(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_for_level(0.99) == pytest.approx(2.575829, abs=1e-5)


class TestMeanCI:
    def test_matches_hand_formula(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10.0, 2.0, size=50)
        ci = mean_ci(x, 0.95)
        half = 1.959964 * np.std(x, ddof=1) / math.sqrt(50)
        assert ci.estimate == pytest.approx(np.mean(x))
        assert ci.half_width == pytest.approx(half, rel=1e-5)
        assert ci.n == 50

    def test_single_sample_degenerates_to_point(self):
        ci = mean_ci([3.5])
        assert (ci.estimate, ci.lo, ci.hi, ci.n) == (3.5, 3.5, 3.5, 1)
        assert ci.half_width == 0.0

    def test_empty_is_zero_point(self):
        ci = mean_ci([])
        assert (ci.estimate, ci.n) == (0.0, 0)

    def test_coverage_about_nominal(self):
        """~95% of 95% CIs on N(0,1) means contain 0."""
        rng = np.random.default_rng(7)
        hits = sum(
            mean_ci(rng.normal(size=20), 0.95).contains(0.0)
            for _ in range(400)
        )
        assert 0.90 <= hits / 400 <= 0.99

    def test_overlaps(self):
        a = ConfidenceInterval(1.0, 0.5, 1.5, 0.95, 10)
        b = ConfidenceInterval(1.6, 1.4, 1.8, 0.95, 10)
        c = ConfidenceInterval(3.0, 2.5, 3.5, 0.95, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_relative_half_width_zero_mean(self):
        degenerate = ConfidenceInterval(0.0, 0.0, 0.0, 0.95, 3)
        assert degenerate.relative_half_width == 0.0
        spread = ConfidenceInterval(0.0, -1.0, 1.0, 0.95, 3)
        assert spread.relative_half_width == float("inf")


class TestQuantileCI:
    def test_brackets_true_quantile_mostly(self):
        rng = np.random.default_rng(3)
        hits = 0
        trials = 200
        for _ in range(trials):
            x = rng.exponential(size=100)
            ci = quantile_ci(x, 0.5, 0.95)
            true_median = math.log(2.0)
            hits += ci.lo <= true_median <= ci.hi
        assert hits / trials >= 0.90

    def test_interval_is_order_statistics(self):
        x = np.arange(1.0, 101.0)
        ci = quantile_ci(x, 0.9, 0.95)
        assert ci.lo in x and ci.hi in x
        assert ci.lo <= ci.estimate <= ci.hi

    def test_small_n_clamps_to_extremes(self):
        ci = quantile_ci([1.0, 2.0, 3.0], 0.99, 0.95)
        assert ci.lo >= 1.0 and ci.hi <= 3.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile_ci([1.0, 2.0], 0.0)

    def test_bootstrap_deterministic(self):
        x = np.random.default_rng(5).exponential(size=60)
        a = bootstrap_quantile_ci(x, 0.9, seed=11)
        b = bootstrap_quantile_ci(x, 0.9, seed=11)
        assert (a.lo, a.hi) == (b.lo, b.hi)
        c = bootstrap_quantile_ci(x, 0.9, seed=12)
        assert (a.lo, a.hi) != (c.lo, c.hi)
