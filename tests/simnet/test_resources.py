"""Tests for FIFO bandwidth resources, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.resources import BandwidthResource


def _drain(sim, res, sizes, gap=0.0):
    """Submit transfers of the given sizes back-to-back (separated by *gap*)
    and return their completion times."""
    done = []

    def submit():
        for n in sizes:
            ev = res.transmit(n)
            ev.add_callback(lambda e: done.append(sim.now))
            if gap:
                yield sim.timeout(gap)
        if False:
            yield  # make this a generator even when gap == 0

    if gap:
        sim.spawn(submit())
    else:
        for n in sizes:
            ev = res.transmit(n)
            ev.add_callback(lambda e: done.append(sim.now))
    sim.run(detect_deadlock=False)
    return done


def test_single_transfer_takes_service_time():
    sim = Simulator()
    res = BandwidthResource(sim, rate=1000.0)  # 1000 B/s
    times = _drain(sim, res, [500])
    assert times == [pytest.approx(0.5)]


def test_back_to_back_transfers_serialise():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    times = _drain(sim, res, [100, 100, 100])
    assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_backlog_reflects_queued_work():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    assert res.backlog == 0.0
    res.transmit(100)
    assert res.backlog == pytest.approx(1.0)
    res.transmit(50)
    assert res.backlog == pytest.approx(1.5)


def test_pipe_idles_between_separated_transfers():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    done = []

    def proc():
        ev = res.transmit(100)  # finishes at 1.0
        yield ev
        done.append(sim.now)
        yield sim.timeout(5.0)  # idle gap
        ev = res.transmit(100)  # starts fresh at 6.0, finishes 7.0
        yield ev
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(7.0)]


def test_service_scale_inflates_occupancy():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    res.transmit(100, service_scale=2.0)
    # The slow transfer occupies the pipe for 2s, so a second arrival
    # queues behind the full inflated time.
    assert res.backlog == pytest.approx(2.0)


def test_zero_byte_transfer_completes_instantly():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    times = _drain(sim, res, [0])
    assert times == [pytest.approx(0.0)]


def test_stats_accumulate():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    _drain(sim, res, [100, 200])
    assert res.stats.messages == 2
    assert res.stats.bytes == 300
    assert res.stats.busy_time == pytest.approx(3.0)
    assert res.stats.queued_messages == 1  # the second arrival queued
    assert res.stats.max_backlog == pytest.approx(1.0)


def test_utilisation_bounded():
    sim = Simulator()
    res = BandwidthResource(sim, rate=100.0)
    _drain(sim, res, [100])
    assert res.utilisation() == pytest.approx(1.0)
    assert 0.0 <= res.utilisation(elapsed=10.0) <= 1.0
    assert res.utilisation(elapsed=0.0) == 0.0


def test_invalid_arguments():
    sim = Simulator()
    with pytest.raises(ValueError):
        BandwidthResource(sim, rate=0.0)
    res = BandwidthResource(sim, rate=1.0)
    with pytest.raises(ValueError):
        res.transmit(-1)
    with pytest.raises(ValueError):
        res.transmit(1, service_scale=0.0)
    with pytest.raises(ValueError):
        res.service_time(-5)


# -- property-based -----------------------------------------------------------


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30),
    rate=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_fifo_completion_order_and_conservation(sizes, rate):
    """Transfers complete in submission order, and the total busy time
    equals the sum of individual service times (work conservation)."""
    sim = Simulator()
    res = BandwidthResource(sim, rate=rate)
    completions: list[tuple[int, float]] = []
    for idx, n in enumerate(sizes):
        ev = res.transmit(n)
        ev.add_callback(lambda e, i=idx: completions.append((i, sim.now)))
    sim.run(detect_deadlock=False)

    order = [i for i, _t in completions]
    assert order == sorted(order)

    times = [t for _i, t in completions]
    assert times == sorted(times)
    # Last completion = total work / rate (all submitted at t=0).
    assert times[-1] == pytest.approx(sum(sizes) / rate, rel=1e-9, abs=1e-12)
    assert res.stats.busy_time == pytest.approx(sum(sizes) / rate, rel=1e-9, abs=1e-12)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=20)
)
@settings(max_examples=40, deadline=None)
def test_backlog_never_negative_and_decreases_with_time(sizes):
    sim = Simulator()
    res = BandwidthResource(sim, rate=1000.0)
    for n in sizes:
        res.transmit(n)
        assert res.backlog >= 0.0
    total = sum(sizes) / 1000.0
    observed = []

    def watcher():
        while res.backlog > 0:
            observed.append(res.backlog)
            yield sim.timeout(total / 10)

    sim.spawn(watcher())
    sim.run(detect_deadlock=False)
    assert all(b >= 0 for b in observed)
    assert observed == sorted(observed, reverse=True)
