"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
)


def test_timeout_ordering():
    sim = Simulator()
    log = []

    def proc(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.spawn(proc("late", 3.0))
    sim.spawn(proc("early", 1.0))
    sim.spawn(proc("mid", 2.0))
    sim.run()
    assert log == [(1.0, "early"), (2.0, "mid"), (3.0, "late")]


def test_fifo_at_equal_times():
    sim = Simulator()
    log = []

    def proc(name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abcde":
        sim.spawn(proc(name))
    sim.run()
    assert log == list("abcde")


def test_zero_delay_timeout_runs_at_current_time():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value_propagates():
    sim = Simulator()
    result = {}

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.spawn(child())
        result["v"] = value

    sim.spawn(parent())
    sim.run()
    assert result["v"] == 42


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def trigger():
        yield sim.timeout(2.5)
        ev.succeed("payload")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [(2.5, "payload")]


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_multiple_waiters_on_one_event():
    sim = Simulator()
    ev = sim.event()
    woken = []

    def waiter(i):
        v = yield ev
        woken.append((i, v))

    for i in range(3):
        sim.spawn(waiter(i))

    def trigger():
        yield sim.timeout(1.0)
        ev.succeed("x")

    sim.spawn(trigger())
    sim.run()
    assert woken == [(0, "x"), (1, "x"), (2, "x")]


def test_wait_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    got = []

    def waiter():
        v = yield ev
        got.append(v)

    sim.spawn(waiter())
    sim.run()
    assert got == [7]


def test_any_of_fires_on_first():
    sim = Simulator()
    t1 = sim.timeout(1.0, "one")
    t2 = sim.timeout(2.0, "two")
    got = []

    def waiter():
        values = yield sim.any_of([t1, t2])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got[0][0] == 1.0
    assert got[0][1] == {t1: "one"}


def test_all_of_waits_for_every_event():
    sim = Simulator()
    t1 = sim.timeout(1.0, "one")
    t2 = sim.timeout(3.0, "two")
    got = []

    def waiter():
        values = yield sim.all_of([t1, t2])
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(3.0, {t1: "one", t2: "two"})]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    got = []

    def waiter():
        yield sim.all_of([])
        got.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert got == [0.0]


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_condition_with_non_event_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        AllOf(sim, [object()])


def test_deadlock_detection():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    sim.spawn(stuck())
    with pytest.raises(DeadlockError):
        sim.run()


def test_deadlock_detection_can_be_disabled():
    sim = Simulator()

    def stuck():
        yield sim.event()

    sim.spawn(stuck())
    sim.run(detect_deadlock=False)  # must not raise


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0, detect_deadlock=False)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_interrupt_is_catchable():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        yield sim.timeout(1.0)
        log.append(("done", sim.now))

    proc = sim.spawn(victim())

    def attacker():
        yield sim.timeout(2.0)
        proc.interrupt(cause="why")

    sim.spawn(attacker())
    sim.run()
    assert log == [("interrupted", 2.0, "why"), ("done", 3.0)]


def test_unhandled_interrupt_is_an_error():
    sim = Simulator()

    def victim():
        yield sim.timeout(100.0)

    proc = sim.spawn(victim())

    def attacker():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.spawn(attacker())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 5

    with pytest.raises(TypeError):
        sim.spawn(not_a_generator())


def test_yielding_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_call_at_runs_callable():
    sim = Simulator()
    calls = []
    sim.call_at(3.0, calls.append, "hello")
    sim.run()
    assert calls == ["hello"]
    assert sim.now == 3.0


def test_call_at_in_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    sim.spawn(proc())
    sim.run()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 0.0 or sim.peek() == 4.0  # timeout schedules at 4.0
    # A fresh simulator with only that timeout:
    sim2 = Simulator()
    sim2.timeout(4.0)
    assert sim2.peek() == 4.0


def test_chain_of_processes_waiting_on_each_other():
    sim = Simulator()
    order = []

    def stage(name, prev):
        if prev is not None:
            yield prev
        yield sim.timeout(1.0)
        order.append((sim.now, name))
        return name

    p1 = sim.spawn(stage("first", None))
    p2 = sim.spawn(stage("second", p1))
    sim.spawn(stage("third", p2))
    sim.run()
    assert order == [(1.0, "first"), (2.0, "second"), (3.0, "third")]


def test_nested_event_trigger_from_callback_keeps_fifo():
    """An event callback that triggers another event must not starve or
    reorder the first event's remaining callbacks."""
    sim = Simulator()
    log = []
    ev1 = sim.event()
    ev2 = sim.event()
    ev1.add_callback(lambda e: log.append("a"))
    ev1.add_callback(lambda e: ev2.succeed())
    ev1.add_callback(lambda e: log.append("b"))
    ev2.add_callback(lambda e: log.append("c"))

    def trigger():
        yield sim.timeout(1.0)
        ev1.succeed()

    sim.spawn(trigger())
    sim.run()
    assert log == ["a", "b", "c"]


def test_child_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield sim.spawn(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(parent())
    sim.run()
    assert caught == ["child died"]


def test_unwaited_process_exception_surfaces_at_run():
    sim = Simulator()

    def lonely():
        yield sim.timeout(1.0)
        raise RuntimeError("nobody is listening")

    sim.spawn(lonely())
    with pytest.raises(RuntimeError, match="nobody is listening"):
        sim.run()


def test_failed_child_fails_all_of_waiter():
    sim = Simulator()
    caught = []

    def child_ok():
        yield sim.timeout(2.0)

    def child_bad():
        yield sim.timeout(1.0)
        raise ValueError("bad child")

    def parent():
        try:
            yield sim.all_of([sim.spawn(child_ok()), sim.spawn(child_bad())])
        except ValueError as exc:
            caught.append(str(exc))
        # Let the surviving child finish so the run drains cleanly.
        yield sim.timeout(5.0)

    sim.spawn(parent())
    sim.run()
    assert caught == ["bad child"]
