"""Tests for end-to-end transport across the simulated fabric."""

import numpy as np
import pytest

from repro.simnet import (
    Network,
    NetworkMonitor,
    RngRegistry,
    Simulator,
    TransmissionAborted,
    ideal_cluster,
    perseus,
)
from repro.simnet.topology import TcpModel


def _run_sends(spec, sends, seed=0):
    """Run a batch of (src, dst, payload) sends started at t=0; return the
    (network, [Delivery]) pair."""
    sim = Simulator()
    net = Network(sim, spec, RngRegistry(seed))
    out = []

    def sender(src, dst, size):
        d = yield net.send(src, dst, size)
        out.append(d)

    for src, dst, size in sends:
        sim.spawn(sender(src, dst, size))
    sim.run()
    return net, out


class TestIdealDeterminism:
    def test_single_transfer_matches_analytic_time(self):
        spec = ideal_cluster(4)
        net, [d] = _run_sends(spec, [(0, 1, 16384)])
        expected = (
            spec.tcp.wire_bytes(16384) / spec.link_bandwidth
            + net.path_latency(0, 1)
        )
        assert d.transit_time == pytest.approx(expected, rel=1e-12)
        assert d.attempts == 1
        assert d.rto_stall == 0.0

    def test_zero_byte_message_still_takes_latency(self):
        spec = ideal_cluster(4)
        net, [d] = _run_sends(spec, [(0, 1, 0)])
        assert d.transit_time > net.path_latency(0, 1)  # one header frame

    def test_intra_node_message_uses_shared_memory(self):
        spec = ideal_cluster(4)
        _, [d] = _run_sends(spec, [(2, 2, 4096)])
        expected = spec.host.smp_latency + 4096 / spec.host.smp_bandwidth
        assert d.transit_time == pytest.approx(expected, rel=1e-12)

    def test_intra_node_faster_than_inter_node(self):
        spec = ideal_cluster(4)
        _, [dsm] = _run_sends(spec, [(1, 1, 8192)])
        _, [dnet] = _run_sends(spec, [(0, 1, 8192)])
        assert dsm.transit_time < dnet.transit_time

    def test_transfer_time_monotonic_in_size(self):
        spec = ideal_cluster(4)
        times = []
        for size in [0, 64, 1024, 16384, 262144]:
            _, [d] = _run_sends(spec, [(0, 1, size)])
            times.append(d.transit_time)
        assert times == sorted(times)

    def test_reproducible_given_seed(self):
        spec = perseus(8)
        _, a = _run_sends(spec, [(0, 1, 1024), (2, 3, 1024)], seed=5)
        _, b = _run_sends(spec, [(0, 1, 1024), (2, 3, 1024)], seed=5)
        assert [d.arrive_time for d in a] == [d.arrive_time for d in b]


class TestContention:
    def test_shared_nic_serialises_two_senders(self):
        """Two processes on one node sending at once share the 100 Mbit
        uplink: the second message finishes roughly one service time later."""
        spec = ideal_cluster(4)
        _, out = _run_sends(spec, [(0, 1, 16384), (0, 2, 16384)])
        t1, t2 = sorted(d.transit_time for d in out)
        service = spec.tcp.wire_bytes(16384) / spec.link_bandwidth
        assert t2 - t1 == pytest.approx(service, rel=1e-9)

    def test_distinct_nics_do_not_contend(self):
        spec = ideal_cluster(8)
        _, out = _run_sends(spec, [(0, 1, 16384), (2, 3, 16384)])
        times = [d.transit_time for d in out]
        assert times[0] == pytest.approx(times[1], rel=1e-12)

    def test_receiver_nic_is_a_bottleneck(self):
        """Many senders to one receiver queue at its RX pipe (incast)."""
        spec = ideal_cluster(8)
        _, out = _run_sends(spec, [(i, 7, 16384) for i in range(4)])
        finish = sorted(d.arrive_time for d in out)
        service = spec.tcp.wire_bytes(16384) / spec.link_bandwidth
        # Arrivals are spaced by at least one RX service time.
        gaps = np.diff(finish)
        assert np.all(gaps >= service * 0.999)

    def test_contention_raises_mean_transit_on_perseus(self):
        """Sustained traffic from 32 pairs is slower on average than the
        same traffic pattern run by a single pair (Figure 1's effect)."""
        spec = perseus(64)

        def repeated(pairs, seed, reps=30):
            sim = Simulator()
            net = Network(sim, spec, RngRegistry(seed))
            times = []

            def sender(src, dst):
                for _ in range(reps):
                    d = yield net.send(src, dst, 1024)
                    times.append(d.transit_time)

            for src, dst in pairs:
                sim.spawn(sender(src, dst))
            sim.run()
            return float(np.mean(times))

        solo = repeated([(0, 1)], seed=2)
        crowd = repeated([(2 * i, 2 * i + 1) for i in range(32)], seed=2)
        assert crowd > solo * 1.05

    def test_backplane_crossing_uses_stack_links(self):
        spec = perseus(64)
        net, _ = _run_sends(spec, [(0, 40, 65536)])  # switch 0 -> switch 1
        stats = net.stack[(0, "+")].stats
        assert stats.messages == 1
        assert stats.bytes == spec.tcp.wire_bytes(65536)
        assert net.stack[(0, "-")].stats.messages == 0

    def test_reverse_direction_uses_minus_link(self):
        spec = perseus(64)
        net, _ = _run_sends(spec, [(40, 0, 65536)])
        assert net.stack[(0, "-")].stats.messages == 1


class TestLossAndRto:
    def _lossy_spec(self):
        # Negative threshold: even an empty queue (backlog 0) is "over
        # threshold", so every attempt is dropped.
        return perseus(8).with_(
            tcp=TcpModel(
                loss_max_probability=1.0,
                loss_backlog_threshold=-1.0,
                loss_backlog_scale=1e-12,
                max_retransmits=2,
                rto_jitter=0.0,
            )
        )

    def test_total_loss_aborts_after_max_retransmits(self):
        spec = self._lossy_spec()
        sim = Simulator()
        net = Network(sim, spec, RngRegistry(0))
        failures = []

        def sender():
            try:
                yield net.send(0, 1, 1024)
            except TransmissionAborted as exc:
                failures.append(exc.attempts)

        sim.spawn(sender())
        sim.run()
        assert failures == [3]  # initial attempt + 2 retransmits

    def test_partial_loss_adds_rto_stalls(self):
        spec = perseus(8).with_(
            tcp=TcpModel(
                loss_max_probability=0.5,
                loss_backlog_threshold=-1.0,
                loss_backlog_scale=1e-12,
                max_retransmits=50,
                rto_jitter=0.0,
            )
        )
        _, out = _run_sends(spec, [(0, 1, 1024) for _ in range(1)] * 1, seed=3)
        # With p=0.5 per attempt some runs stall; run several seeds to find one.
        stalled = False
        for seed in range(10):
            _, out = _run_sends(spec, [(0, 1, 1024)], seed=seed)
            d = out[0]
            if d.attempts > 1:
                stalled = True
                assert d.rto_stall == pytest.approx((d.attempts - 1) * 0.2)
                assert d.transit_time > 0.2
        assert stalled, "expected at least one retransmission across seeds"

    def test_lossless_spec_never_stalls(self):
        spec = ideal_cluster(8)
        _, out = _run_sends(spec, [(0, 1, 65536) for _ in range(4)])
        assert all(d.attempts == 1 and d.rto_stall == 0.0 for d in out)


class TestValidationAndMonitor:
    def test_bad_nodes_rejected(self):
        spec = ideal_cluster(4)
        sim = Simulator()
        net = Network(sim, spec, RngRegistry(0))
        with pytest.raises(ValueError):
            net.send(0, 4, 10)
        with pytest.raises(ValueError):
            net.send(-1, 0, 10)
        with pytest.raises(ValueError):
            net.send(0, 1, -10)

    def test_path_resources_structure(self):
        spec = perseus(64)
        sim = Simulator()
        net = Network(sim, spec, RngRegistry(0))
        same_switch = net.path_resources(0, 1)
        assert len(same_switch) == 3  # tx + switch fabric + rx
        cross = net.path_resources(0, 40)
        assert len(cross) == 5  # tx + fabric + 1 stack link + fabric + rx
        assert net.path_resources(5, 5) == []

    def test_path_latency_grows_with_switch_hops(self):
        spec = perseus(116)
        sim = Simulator()
        net = Network(sim, spec, RngRegistry(0))
        near = net.path_latency(0, 1)
        far = net.path_latency(0, 115)
        assert far > near

    def test_monitor_reports_and_summary(self):
        spec = perseus(16)
        net, _ = _run_sends(spec, [(i, (i + 8) % 16, 16384) for i in range(8)])
        mon = NetworkMonitor(net)
        reports = mon.reports()
        assert reports, "expected per-resource reports"
        assert reports[0].utilisation >= reports[-1].utilisation
        summary = mon.summary()
        # NIC counters see wire bytes (payload + framing).
        assert summary["total_inter_node_bytes"] == 8 * spec.tcp.wire_bytes(16384)
        assert summary["busiest"] is not None

    def test_resource_stats_keys(self):
        spec = ideal_cluster(2)
        net, _ = _run_sends(spec, [(0, 1, 100)])
        stats = net.resource_stats()
        assert "nic_tx[0]" in stats and "nic_rx[1]" in stats
        assert stats["nic_tx[0]"]["messages"] == 1
