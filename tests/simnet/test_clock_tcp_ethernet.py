"""Tests for clocks, TCP loss behaviour and Ethernet framing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import ethernet
from repro.simnet.clock import ClockManager, NodeClock
from repro.simnet.rng import RngRegistry
from repro.simnet.tcp import TcpBehaviour
from repro.simnet.topology import ClusterSpec, TcpModel, perseus


class TestNodeClock:
    def test_identity_clock(self):
        c = NodeClock(0)
        assert c.local_time(10.0) == 10.0
        assert c.true_time(10.0) == 10.0

    def test_offset_and_drift(self):
        c = NodeClock(1, offset=0.5, drift=1e-4)
        assert c.local_time(0.0) == pytest.approx(0.5)
        assert c.local_time(100.0) == pytest.approx(100.01 + 0.5)

    def test_roundtrip_inversion(self):
        c = NodeClock(2, offset=-3e-3, drift=42e-6)
        for t in [0.0, 1.0, 123.456, 1e6]:
            assert c.true_time(c.local_time(t)) == pytest.approx(t, rel=1e-12)

    def test_extreme_negative_drift_rejected(self):
        with pytest.raises(ValueError):
            NodeClock(0, drift=-1.0)


class TestClockManager:
    def test_perfect_clocks_agree(self):
        mgr = ClockManager(8, RngRegistry(1), perfect=True)
        assert mgr.max_disagreement(1000.0) == 0.0

    def test_skewed_clocks_disagree(self):
        mgr = ClockManager(8, RngRegistry(1))
        assert mgr.max_disagreement(0.0) > 0.0

    def test_reproducible_from_seed(self):
        a = ClockManager(4, RngRegistry(9))
        b = ClockManager(4, RngRegistry(9))
        for i in range(4):
            assert a.clocks[i].offset == b.clocks[i].offset
            assert a.clocks[i].drift == b.clocks[i].drift

    def test_local_true_roundtrip(self):
        mgr = ClockManager(4, RngRegistry(3))
        local = mgr.local_time(2, 55.5)
        assert mgr.true_time(2, local) == pytest.approx(55.5, rel=1e-12)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ClockManager(0, RngRegistry(1))
        with pytest.raises(ValueError):
            ClockManager(2, RngRegistry(1), offset_spread=-1.0)


class TestTcpBehaviour:
    def _behaviour(self, **kw):
        return TcpBehaviour(TcpModel(**kw), RngRegistry(0))

    def test_no_loss_below_threshold(self):
        tcp = self._behaviour()
        assert tcp.loss_probability(0.0) == 0.0
        assert tcp.loss_probability(tcp.model.loss_backlog_threshold) == 0.0

    def test_loss_ramps_to_ceiling(self):
        tcp = self._behaviour()
        m = tcp.model
        deep = m.loss_backlog_threshold + 100 * m.loss_backlog_scale
        assert tcp.loss_probability(deep) == pytest.approx(m.loss_max_probability)

    def test_loss_monotonic_in_backlog(self):
        tcp = self._behaviour()
        backlogs = np.linspace(0, 0.1, 50)
        probs = [tcp.loss_probability(b) for b in backlogs]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_zero_loss_model_never_drops(self):
        tcp = self._behaviour(loss_max_probability=0.0)
        assert not any(tcp.attempt_is_lost(1.0) for _ in range(100))

    def test_certain_loss_always_drops(self):
        tcp = self._behaviour(
            loss_max_probability=1.0,
            loss_backlog_threshold=0.0,
            loss_backlog_scale=1e-9,
        )
        assert all(tcp.attempt_is_lost(1.0) for _ in range(100))

    def test_rto_sample_within_jitter_band(self):
        tcp = self._behaviour()
        m = tcp.model
        for _ in range(100):
            rto = tcp.sample_rto()
            assert m.rto <= rto <= m.rto + m.rto_jitter

    def test_rto_without_jitter_is_exact(self):
        tcp = self._behaviour(rto_jitter=0.0)
        assert tcp.sample_rto() == tcp.model.rto

    def test_expected_stall_zero_when_lossless(self):
        tcp = self._behaviour()
        assert tcp.expected_stall(0.0) == 0.0

    def test_expected_stall_positive_under_saturation(self):
        tcp = self._behaviour()
        assert tcp.expected_stall(1.0) > 0.0

    def test_describe_contains_parameters(self):
        d = self._behaviour().describe()
        assert d["rto_s"] == pytest.approx(0.2)
        assert "loss_max_probability" in d


class TestEthernet:
    tcp = TcpModel()

    def test_zero_payload_one_frame(self):
        assert ethernet.frame_count(0, self.tcp) == 1

    def test_efficiency_increases_with_payload(self):
        # Compare at whole-frame payloads: efficiency sawtooths within a
        # frame (a nearly-empty last frame wastes headers), so monotonicity
        # only holds at frame boundaries.
        per = self.tcp.payload_per_frame
        effs = [
            ethernet.framing_efficiency(s, self.tcp)
            for s in [1, 100, per, 10 * per, 100 * per]
        ]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.9

    def test_goodput(self):
        assert ethernet.payload_goodput(1000, 2.0) == 500.0
        with pytest.raises(ValueError):
            ethernet.payload_goodput(1000, 0.0)

    def test_wire_rate_exceeds_goodput(self):
        rate = ethernet.wire_rate_for_goodput(16384, 10e6, self.tcp)
        assert rate > 10e6

    def test_framing_overhead_rate_matches_papers_ratio(self):
        """The paper's decomposition: 81 Mbit/s goodput for 16 KB messages
        costs ~3-4 Mbit/s of framing overhead on the wire."""
        goodput = 81e6 / 8  # bytes/s
        overhead = ethernet.framing_overhead_rate(16384, goodput, self.tcp)
        overhead_mbit = overhead * 8 / 1e6
        assert 2.0 < overhead_mbit < 6.0

    def test_backplane_load_aggregates_cross_switch_flows(self):
        spec = perseus()
        flows = [(i, i + 24, 10e6, 16384) for i in range(24)]  # sw0 -> sw1
        loads = ethernet.backplane_load(spec, flows)
        assert len(loads) == 4
        assert loads[0] > 24 * 10e6  # wire rate above payload rate
        assert loads[1] == loads[2] == loads[3] == 0.0

    def test_backplane_load_ignores_same_switch_flows(self):
        spec = perseus()
        loads = ethernet.backplane_load(spec, [(0, 1, 10e6, 1024)])
        assert all(v == 0.0 for v in loads)

    def test_backplane_load_multi_hop(self):
        spec = perseus()
        loads = ethernet.backplane_load(spec, [(0, 115, 1e6, 1024)])  # sw0 -> sw4
        assert all(v > 0 for v in loads)

    def test_zero_goodput_flow_errors(self):
        with pytest.raises(ValueError):
            ethernet.wire_rate_for_goodput(0, 1e6, self.tcp)


@given(payload=st.integers(min_value=0, max_value=1 << 22))
@settings(max_examples=100, deadline=None)
def test_wire_bytes_bounds(payload):
    """wire_bytes is payload plus per-frame overhead: strictly more than the
    payload, and at most payload + 78 * frames."""
    tcp = TcpModel()
    wb = tcp.wire_bytes(payload)
    frames = tcp.frames_for(payload)
    assert wb == payload + 78 * frames
    assert frames >= max(1, payload // tcp.payload_per_frame)
