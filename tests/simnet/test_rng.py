"""Tests for named, seeded RNG streams."""

import numpy as np
import pytest

from repro.simnet.rng import RngRegistry


def test_same_name_returns_same_stream():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=99).stream("tcp.loss").random(8)
    b = RngRegistry(seed=99).stream("tcp.loss").random(8)
    assert np.array_equal(a, b)


def test_different_names_give_different_sequences():
    rngs = RngRegistry(seed=5)
    a = rngs.stream("one").random(16)
    b = rngs.stream("two").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_sequences():
    a = RngRegistry(seed=1).stream("x").random(16)
    b = RngRegistry(seed=2).stream("x").random(16)
    assert not np.array_equal(a, b)


def test_stream_independent_of_creation_order():
    r1 = RngRegistry(seed=7)
    r1.stream("first")
    v1 = r1.stream("second").random(4)

    r2 = RngRegistry(seed=7)
    v2 = r2.stream("second").random(4)  # created without touching "first"
    assert np.array_equal(v1, v2)


def test_reseed_clears_streams():
    rngs = RngRegistry(seed=1)
    old = rngs.stream("s")
    first_draw = old.random()
    rngs.reseed(1)
    new = rngs.stream("s")
    assert new is not old
    assert new.random() == pytest.approx(first_draw)


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry(seed="abc")
