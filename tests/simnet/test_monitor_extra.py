"""Additional monitor / transport diagnostics tests."""

import pytest

from repro.simnet import (
    Network,
    NetworkMonitor,
    RngRegistry,
    Simulator,
    gigabit_cluster,
    ideal_cluster,
    perseus,
)


def _flood(spec, sends, seed=0):
    sim = Simulator()
    net = Network(sim, spec, RngRegistry(seed))

    def sender(src, dst, size, reps):
        for _ in range(reps):
            yield net.send(src, dst, size)

    for src, dst, size, reps in sends:
        sim.spawn(sender(src, dst, size, reps))
    sim.run()
    return net


class TestSaturationDetection:
    def test_saturated_flags_hot_links(self):
        spec = perseus(48)
        # 24 sustained cross-switch flows: the first stacking link chokes.
        net = _flood(spec, [(i, i + 24, 65536, 12) for i in range(24)])
        mon = NetworkMonitor(net)
        sat = mon.saturated()
        assert sat, "expected saturated resources under a cross-switch flood"
        names = {r.name for r in sat}
        assert any("stack[0]" in n for n in names) or any(
            "nic" in n for n in names
        )

    def test_idle_network_reports_nothing_saturated(self):
        net = _flood(ideal_cluster(4), [(0, 1, 1024, 2)])
        mon = NetworkMonitor(net)
        assert mon.saturated() == []

    def test_backplane_reports_cover_all_links(self):
        spec = perseus(116)
        net = _flood(spec, [(0, 100, 1024, 1)])
        mon = NetworkMonitor(net)
        reports = mon.backplane_reports()
        assert len(reports) == 2 * (spec.n_switches - 1)  # both directions

    def test_summary_fields(self):
        net = _flood(perseus(8), [(0, 4, 4096, 3)])
        s = NetworkMonitor(net).summary()
        assert s["elapsed_s"] > 0
        assert s["busiest"] is not None
        assert s["total_inter_node_bytes"] > 3 * 4096  # wire > payload
        assert s["n_saturated"] >= 0

    def test_queued_fraction_rises_under_load(self):
        spec = perseus(8)
        light = _flood(spec, [(0, 4, 1024, 2)])
        heavy = _flood(spec, [(0, 4, 16384, 30), (1, 4, 16384, 30)])
        q_light = max(r.queued_fraction for r in NetworkMonitor(light).reports())
        q_heavy = max(r.queued_fraction for r in NetworkMonitor(heavy).reports())
        assert q_heavy > q_light


class TestGigabitTransport:
    def test_transfer_faster_than_fast_ethernet(self):
        for size in (1024, 65536):
            tg = _one_transfer(gigabit_cluster(4), size)
            tf = _one_transfer(perseus(4), size)
            assert tg < tf

    def test_single_switch_path(self):
        spec = gigabit_cluster(64)
        sim = Simulator()
        net = Network(sim, spec, RngRegistry(0))
        # Single switch: no stacking links on any path.
        path = net.path_resources(0, 63)
        assert len(path) == 3  # tx + fabric + rx
        assert net.stack == {}


def _one_transfer(spec, size):
    sim = Simulator()
    net = Network(sim, spec, RngRegistry(1))
    out = {}

    def sender():
        d = yield net.send(0, 1, size)
        out["t"] = d.transit_time

    sim.spawn(sender())
    sim.run()
    return out["t"]
