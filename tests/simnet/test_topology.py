"""Tests for cluster topology specifications."""

import pytest

from repro.simnet.topology import (
    GBIT,
    MBIT,
    ClusterSpec,
    HostModel,
    TcpModel,
    ideal_cluster,
    perseus,
)


class TestPerseus:
    def test_matches_paper_description(self):
        spec = perseus()
        assert spec.n_nodes == 116
        assert spec.processors_per_node == 2
        assert spec.link_bandwidth == pytest.approx(100 * MBIT)
        assert spec.ports_per_switch == 24
        assert spec.n_switches == 5
        assert spec.backplane_bandwidth == pytest.approx(2.1 * GBIT)
        assert spec.eager_threshold == 16 * 1024

    def test_truncation(self):
        assert perseus(8).n_nodes == 8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            perseus(0)
        with pytest.raises(ValueError):
            perseus(117)

    def test_total_processors(self):
        assert perseus(64).total_processors == 128


class TestPlacement:
    def test_switch_assignment_blocks_of_24(self):
        spec = perseus()
        assert spec.switch_of(0) == 0
        assert spec.switch_of(23) == 0
        assert spec.switch_of(24) == 1
        assert spec.switch_of(115) == 4

    def test_switch_of_out_of_range(self):
        spec = perseus(10)
        with pytest.raises(ValueError):
            spec.switch_of(10)
        with pytest.raises(ValueError):
            spec.switch_of(-1)

    def test_stacking_links_same_switch(self):
        assert perseus().stacking_links(2, 2) == []

    def test_stacking_links_adjacent(self):
        assert perseus().stacking_links(0, 1) == [0]
        assert perseus().stacking_links(1, 0) == [0]

    def test_stacking_links_span(self):
        assert perseus().stacking_links(0, 3) == [0, 1, 2]
        assert perseus().stacking_links(4, 1) == [1, 2, 3]

    def test_stacking_links_out_of_range(self):
        with pytest.raises(ValueError):
            perseus().stacking_links(0, 5)


class TestValidation:
    def test_too_few_switches_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=30, ports_per_switch=24, n_switches=1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(link_bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(link_latency=-1e-6)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)

    def test_with_functional_update(self):
        spec = perseus()
        spec2 = spec.with_(eager_threshold=8192)
        assert spec2.eager_threshold == 8192
        assert spec.eager_threshold == 16 * 1024  # original untouched
        assert spec2.n_nodes == spec.n_nodes


class TestTcpModel:
    def test_frames_for_zero_payload_is_one(self):
        tcp = TcpModel()
        assert tcp.frames_for(0) == 1

    def test_frames_for_exact_multiple(self):
        tcp = TcpModel()
        per = tcp.payload_per_frame
        assert tcp.frames_for(per) == 1
        assert tcp.frames_for(per + 1) == 2
        assert tcp.frames_for(10 * per) == 10

    def test_wire_bytes_monotonic_in_payload(self):
        tcp = TcpModel()
        sizes = [0, 1, 100, 1460, 1461, 16384, 65536]
        wires = [tcp.wire_bytes(s) for s in sizes]
        assert wires == sorted(wires)
        for s, w in zip(sizes, wires):
            assert w > s  # overhead is strictly positive

    def test_wire_bytes_overhead_per_frame(self):
        tcp = TcpModel()
        # One frame carries 78 bytes of overhead: 18 Eth + 20 IP + 20 TCP
        # + 20 preamble/IFG.
        assert tcp.wire_bytes(0) == 78
        assert tcp.wire_bytes(1000) == 1000 + 78

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            TcpModel().frames_for(-1)

    def test_invalid_models_rejected(self):
        with pytest.raises(ValueError):
            TcpModel(mtu=40).validate()
        with pytest.raises(ValueError):
            TcpModel(rto=0).validate()
        with pytest.raises(ValueError):
            TcpModel(loss_max_probability=1.5).validate()
        with pytest.raises(ValueError):
            TcpModel(max_retransmits=-1).validate()


class TestHostModel:
    def test_defaults_validate(self):
        HostModel().validate()

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            HostModel(send_overhead=-1e-6).validate()

    def test_zero_smp_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            HostModel(smp_bandwidth=0).validate()


class TestIdealCluster:
    def test_is_deterministic_and_lossless(self):
        spec = ideal_cluster(8)
        assert spec.jitter_base_sigma == 0.0
        assert spec.jitter_contention_sigma == 0.0
        assert spec.congestion_delay_mean == 0.0
        assert spec.tcp.loss_max_probability == 0.0

    def test_enough_switches_for_large_counts(self):
        spec = ideal_cluster(100)
        assert spec.n_switches * spec.ports_per_switch >= 100
