"""End-to-end tests for the prediction service.

The contract under test (ISSUE: the service's tentpole guarantee): a
response served through the whole funnel -- HTTP parsing, cache tiers,
singleflight, admission, micro-batching, the evaluator thread -- carries
``times`` bit-identical to the same :func:`repro.pevpm.predict` call
made directly with the seed and engine flags the response echoes back.

HTTP-level tests run a real server on a background thread
(:class:`~repro.service.ServiceThread`); funnel-stage tests
(singleflight, coalescing, backpressure) drive
:meth:`PredictionService.handle_predict` directly on one event loop,
where request interleaving is deterministic.
"""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.apps.fft import fft_model
from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.pevpm.machine import ModelDeadlock
from repro.service import MODELS, PredictionService, ServiceClient, ServiceThread
from repro.service import records as service_records
from repro.simnet import perseus

pytestmark = pytest.mark.service

SPEC = perseus(16)
ITER = 20  # keep served jacobi evaluations fast


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@contextmanager
def serve(db, **kwargs):
    service = PredictionService(db, spec=SPEC, **kwargs)
    with ServiceThread(service) as thread:
        host, port = thread.address
        client = ServiceClient(host, port)
        try:
            yield service, client
        finally:
            client.close()


def jacobi_request(**overrides) -> dict:
    request = {
        "model": "jacobi",
        "model_params": {"iterations": ITER},
        "nprocs": 4,
        "runs": 4,
        "seed": 7,
    }
    request.update(overrides)
    return request


def direct_jacobi(db, request: dict):
    """The direct ``predict(...)`` call a served request must match."""
    params = {
        "iterations": request.get("model_params", {}).get("iterations", 100),
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }
    return predict(
        parse_jacobi(),
        request["nprocs"],
        timing_from_db(db, mode="distribution", nprocs=request["nprocs"]),
        runs=request.get("runs", 16),
        seed=request.get("seed", 0),
        params=params,
        vector_runs=request.get("vector_runs", True),
    )


def run_service(db, scenario, **kwargs):
    """Run an async *scenario(service)* against a funnel (no sockets)."""
    service = PredictionService(db, spec=SPEC, **kwargs)

    async def main():
        try:
            return await scenario(service)
        finally:
            service.close()

    return asyncio.run(main())


class TestReproducibilityContract:
    def test_served_times_bit_identical_to_direct_predict(self, db):
        request = jacobi_request()
        with serve(db) as (_service, client):
            record = client.predict(**request)
        direct = direct_jacobi(db, request)
        assert record["times"] == direct.times
        # The response echoes everything needed to replay it.
        assert record["seed"] == 7
        assert record["engine"]["vector_runs"] is True
        assert record["engine"]["nic_serialisation"] == "tx"
        assert record["served_from"] == "engine"
        assert record["db_fingerprint"] == db.fingerprint()
        assert record["runs"] == 4

    def test_scalar_engine_requests_match_too(self, db):
        request = jacobi_request(vector_runs=False, runs=3)
        with serve(db) as (_service, client):
            record = client.predict(**request)
        direct = direct_jacobi(db, request)
        assert record["times"] == direct.times
        assert record["engine"]["vector_runs"] is False

    def test_repeat_request_served_from_cache_identically(self, db, tmp_path):
        request = jacobi_request()
        with serve(db, cache_dir=tmp_path) as (service, client):
            first = client.predict(**request)
            second = client.predict(**request)
            assert first["served_from"] == "engine"
            assert second["served_from"] == "cache"
            assert second["times"] == first["times"]
            assert second["cached"] is True
            assert service.metrics.counter(
                "repro_cache_hits_total", tier="memory"
            ) == 1
        # A fresh service over the same disk tier still serves the entry.
        with serve(db, cache_dir=tmp_path) as (service, client):
            third = client.predict(**request)
            assert third["served_from"] == "cache"
            assert third["times"] == first["times"]
            assert service.metrics.counter(
                "repro_cache_hits_total", tier="disk"
            ) == 1

    def test_naive_mode_serves_identical_numbers(self, db):
        # Batching, dedup and caching are throughput features only: with
        # all of them off the numbers must not change.
        request = jacobi_request()
        with serve(db, batching=False, dedup=False, caching=False) as (
            _service,
            client,
        ):
            first = client.predict(**request)
            second = client.predict(**request)
        assert first["served_from"] == second["served_from"] == "engine"
        assert first["times"] == second["times"]
        assert first["times"] == direct_jacobi(db, request).times

    def test_concurrent_mixed_requests_all_bit_identical(self, db):
        jacobi_reqs = [jacobi_request(seed=s) for s in range(4)]
        fft_reqs = [
            {"model": "fft", "nprocs": 4, "runs": 3, "seed": s}
            for s in range(2)
        ]
        requests = jacobi_reqs + fft_reqs
        with serve(db, max_wait=0.05) as (_service, client):
            with ThreadPoolExecutor(len(requests)) as pool:
                def call(request):
                    own = ServiceClient(client.host, client.port)
                    try:
                        return own.predict(**request)
                    finally:
                        own.close()

                records = list(pool.map(call, requests))
        for request, record in zip(jacobi_reqs, records):
            assert record["times"] == direct_jacobi(db, request).times
        timing = timing_from_db(db, mode="distribution", nprocs=4)
        for request, record in zip(fft_reqs, records[len(jacobi_reqs):]):
            direct = predict(
                fft_model(4096), 4, timing, runs=3,
                seed=request["seed"], vector_runs=True,
            )
            assert record["times"] == direct.times


class TestFunnelStages:
    def test_singleflight_collapses_identical_inflight_requests(self, db):
        body = jacobi_request()

        async def scenario(service):
            return await asyncio.gather(
                *(service.handle_predict(body) for _ in range(6))
            )

        service = PredictionService(db, spec=SPEC)

        async def main():
            try:
                return await scenario(service), service.metrics
            finally:
                service.close()

        responses, metrics = asyncio.run(main())
        assert all(status == 200 for status, _, _ in responses)
        served_from = sorted(doc["served_from"] for _, _, doc in responses)
        assert served_from == ["engine"] + ["singleflight"] * 5
        times = {tuple(doc["times"]) for _, _, doc in responses}
        assert len(times) == 1  # every follower got the leader's numbers
        assert metrics.counter("repro_singleflight_leads_total") == 1
        assert metrics.counter("repro_singleflight_hits_total") == 5
        # Only the leader occupied an engine slot.
        assert metrics.counter("repro_jobs_admitted_total") == 1

    def test_microbatch_coalesces_distinct_requests(self, db):
        bodies = [jacobi_request(seed=s) for s in range(5)]

        async def scenario(service):
            responses = await asyncio.gather(
                *(service.handle_predict(b) for b in bodies)
            )
            return responses, service.metrics

        responses, metrics = run_service(
            db, scenario, max_batch=8, max_wait=0.2
        )
        assert all(status == 200 for status, _, _ in responses)
        # All five distinct requests landed in one engine batch...
        assert metrics.counter("repro_batches_total") == 1
        assert metrics.counter("repro_coalesced_requests_total") == 4
        # ...and coalescing never mixed their random draws.
        for body, (_, _, doc) in zip(bodies, responses):
            assert doc["times"] == direct_jacobi(db, body).times

    def test_queue_full_sheds_with_429(self, db):
        bodies = [jacobi_request(seed=s) for s in range(4)]

        async def scenario(service):
            responses = await asyncio.gather(
                *(service.handle_predict(b) for b in bodies)
            )
            return responses, service.metrics

        # One slot and a long batching window: the first request holds
        # the slot while it waits, the rest must be shed immediately.
        responses, metrics = run_service(
            db, scenario, queue_limit=1, max_wait=0.3, caching=False
        )
        statuses = sorted(status for status, _, _ in responses)
        assert statuses == [200, 429, 429, 429]
        for status, headers, doc in responses:
            if status == 429:
                assert headers["Retry-After"] == "1"
                assert doc["inflight_limit"] == 1
                assert doc["retry_after_s"] == 1.0
        assert metrics.counter("repro_jobs_shed_total") == 3

    def test_deadline_exceeded_returns_504(self, db):
        body = jacobi_request(
            deadline_s=0.001,
            runs=32,
            model_params={"iterations": 200},
        )

        async def scenario(service):
            status, _, doc = await service.handle_predict(body)
            assert status == 504
            assert doc["error"] == "deadline exceeded"
            assert doc["deadline_s"] == 0.001
            assert service.metrics.counter(
                "repro_deadline_exceeded_total"
            ) == 1
            # The shielded evaluation completes anyway and warms the
            # cache: the retry without a deadline is a cache hit.
            retry = dict(body)
            del retry["deadline_s"]
            status, _, doc = await service.handle_predict(retry)
            assert status == 200
            assert doc["served_from"] in ("cache", "singleflight")
            return doc

        doc = run_service(db, scenario)
        direct = direct_jacobi(
            db, jacobi_request(runs=32, model_params={"iterations": 200})
        )
        assert doc["times"] == direct.times

    def test_model_deadlock_returns_422(self, db, monkeypatch):
        def all_receive(ctx):
            yield ctx.recv((ctx.procnum + 1) % 2)

        monkeypatch.setitem(
            service_records.MODELS,
            "deadlock",
            ({}, lambda spec, params: (all_receive, None)),
        )
        good = jacobi_request()
        bad = {"model": "deadlock", "nprocs": 2, "runs": 2, "vector_runs": False}

        async def scenario(service):
            # Fired together so both land in one micro-batch: the
            # deadlocking request must fail alone, not its batch-mate.
            return await asyncio.gather(
                service.handle_predict(bad), service.handle_predict(good)
            )

        (bad_status, _, bad_doc), (good_status, _, good_doc) = run_service(
            db, scenario, max_wait=0.2
        )
        assert bad_status == 422
        assert bad_doc["error"] == "model deadlock"
        assert good_status == 200
        assert good_doc["times"] == direct_jacobi(db, good).times


class TestHttpSurface:
    def test_healthz(self, db):
        with serve(db, queue_limit=7) as (_service, client):
            doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["queue_limit"] == 7
        assert doc["db_fingerprint"] == db.fingerprint()
        assert set(MODELS) <= set(doc["models"])
        assert doc["batching"] and doc["dedup"] and doc["caching"]

    def test_metrics_exposition(self, db):
        with serve(db) as (_service, client):
            client.predict(**jacobi_request())
            text = client.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="/predict"} 1' in text
        assert 'repro_responses_total{code="200"} 1' in text
        assert 'repro_request_latency_seconds{endpoint="/predict"' in text

    def test_distributions_listing_and_query(self, db):
        with serve(db) as (_service, client):
            listing = client.distributions()
            detail = client.distributions(op="isend", size=700, contention=8)
            status, _, err = client._request(
                "GET", "/distributions?op=bogus&size=1024"
            )
        assert "isend" in listing["ops"]
        assert "8x1" in listing["configs"]["isend"]
        assert detail["op"] == "isend"
        assert detail["bracketing_sizes"] == [512, 1024]
        assert detail["nearest_size"] == 512
        assert detail["mean"] > 0
        assert detail["quantiles"]["0.5"] <= detail["quantiles"]["0.99"]
        assert detail["db_fingerprint"] == db.fingerprint()
        assert status == 400

    def test_error_statuses(self, db):
        with serve(db) as (_service, client):
            bad_model, _, doc = client.predict_raw({"model": "nope", "nprocs": 4})
            not_json = client._request("POST", "/predict", None)
            missing = client._request("GET", "/nope")
            wrong_method = client._request("GET", "/predict")
        assert bad_model == 400
        assert "model must be one of" in doc["error"]
        assert not_json[0] == 400  # empty body -> no model field
        assert missing[0] == 404
        assert wrong_method[0] == 405

    def test_http_429_and_504_end_to_end(self, db):
        # The backpressure paths over a real socket: one slot, a long
        # batching window, four concurrent clients.
        with serve(db, queue_limit=1, max_wait=0.5, caching=False) as (
            _service,
            client,
        ):
            def call(seed):
                own = ServiceClient(client.host, client.port)
                try:
                    return own.predict_raw(jacobi_request(seed=seed))
                finally:
                    own.close()

            with ThreadPoolExecutor(4) as pool:
                responses = list(pool.map(call, range(4)))
            statuses = sorted(status for status, _, _ in responses)
            assert statuses[0] == 200
            assert 429 in statuses
            retry_after = [
                headers for status, headers, _ in responses if status == 429
            ]
            assert all("Retry-After" in h for h in retry_after)
            status, _, doc = client.predict_raw(
                jacobi_request(
                    seed=99, runs=32, deadline_s=0.001,
                    model_params={"iterations": 200},
                )
            )
            assert status == 504
            assert doc["error"] == "deadline exceeded"
