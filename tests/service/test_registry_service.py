"""End-to-end tests for the distribution registry behind the API.

The tentpole contract (ISSUE 8): the service reads through a
content-addressed registry of versioned :class:`DistributionDB`
artifacts -- uploads register under their fingerprint, aliases promote
hot with zero restart, tenant traffic for different databases never
mixes results across fingerprints, and every served response stays
bit-identical to the direct ``predict(...)`` call against the same
database object.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.registry import RegistryStore, TenantManager, TenantQuota
from repro.service import (
    PredictionService,
    ServiceClient,
    ServiceThread,
    Supervisor,
)
from repro.service.faults import FaultInjector
from repro.simnet import perseus

pytestmark = pytest.mark.service

SPEC = perseus(16)
ITER = 20  # keep served jacobi evaluations fast


def _bench_db(seed: int):
    bench = MPIBench(SPEC, seed=seed, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@pytest.fixture(scope="module")
def db():
    """The startup database (the service's injected entry zero)."""
    return _bench_db(3)


@pytest.fixture(scope="module")
def db_b():
    """A second database on the same cluster: same spec, different
    measurement seed, so its distributions -- and its fingerprint --
    genuinely differ while jacobi stays servable."""
    return _bench_db(11)


@pytest.fixture(scope="module")
def db_c():
    return _bench_db(12)


@contextmanager
def serve(db, **kwargs):
    service = PredictionService(db, spec=SPEC, **kwargs)
    with ServiceThread(service) as thread:
        host, port = thread.address
        client = ServiceClient(host, port, timeout=120.0)
        try:
            yield service, client
        finally:
            client.close()


def jacobi_request(**overrides) -> dict:
    request = {
        "model": "jacobi",
        "model_params": {"iterations": ITER},
        "nprocs": 4,
        "runs": 4,
        "seed": 7,
    }
    request.update(overrides)
    return request


def direct_jacobi(db, request: dict):
    """The direct ``predict(...)`` call a served request must match."""
    params = {
        "iterations": request.get("model_params", {}).get("iterations", 100),
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }
    return predict(
        parse_jacobi(),
        request["nprocs"],
        timing_from_db(db, mode="distribution", nprocs=request["nprocs"]),
        runs=request.get("runs", 16),
        seed=request.get("seed", 0),
        params=params,
        vector_runs=request.get("vector_runs", True),
    )


def doc_of(db) -> dict:
    return db.to_doc(include_samples=True)


class TestMultiTenantFlow:
    def test_two_tenants_upload_and_predict_bit_identically(
        self, db, db_b, db_c
    ):
        """The acceptance flow: two tenants upload two distinct
        databases; ``POST /predict`` with a ``db`` ref serves each
        tenant numbers bit-identical to ``predict()`` against their
        own database -- and the ref-less path still serves the startup
        database untouched."""
        request = jacobi_request()
        with serve(db) as (_service, client):
            alice = ServiceClient(*client_addr(client), tenant="alice",
                                  timeout=120.0)
            bob = ServiceClient(*client_addr(client), tenant="bob",
                                timeout=120.0)
            try:
                meta_b = alice.registry_add(
                    results=doc_of(db_b), alias="alice@v1"
                )
                meta_c = bob.registry_add(results=doc_of(db_c), alias="bob@v1")
                assert meta_b["fingerprint"] == db_b.fingerprint()
                assert meta_b["tenant"] == "alice"
                assert meta_c["fingerprint"] == db_c.fingerprint()

                for tenant_client, ref, served_db in (
                    (alice, "alice@v1", db_b),
                    (bob, "bob@v1", db_c),
                ):
                    record = tenant_client.predict(**request, db=ref)
                    assert record["times"] == direct_jacobi(
                        served_db, request
                    ).times
                    assert record["db_fingerprint"] == served_db.fingerprint()
                    assert record["db_ref"] == ref

                # Ref-less requests keep the original single-db contract.
                record = client.predict(**request)
                assert record["times"] == direct_jacobi(db, request).times
                assert record["db_fingerprint"] == db.fingerprint()
                assert "db_ref" not in record

                # The fleet listing shows all three databases.
                registry = client.registry_list()
                fingerprints = {e["fingerprint"] for e in registry["dbs"]}
                assert fingerprints == {
                    db.fingerprint(), db_b.fingerprint(), db_c.fingerprint()
                }
                assert registry["aliases"]["alice@v1"] == db_b.fingerprint()
                assert registry["aliases"]["default"] == db.fingerprint()
            finally:
                alice.close()
                bob.close()

    def test_unknown_and_malformed_refs(self, db):
        with serve(db) as (_service, client):
            status, _, doc = client.predict_raw(
                jacobi_request(db="no-such-db")
            )
            assert status == 404
            assert "no-such-db" in doc["error"]
            status, _, doc = client.predict_raw(
                jacobi_request(db="bad ref!")
            )
            assert status == 400

    def test_cache_keys_disambiguate_databases(self, db, db_b):
        """Identical request bodies against different dbs must occupy
        different cache entries (the request key hashes the resolved
        fingerprint)."""
        request = jacobi_request()
        with serve(db) as (_service, client):
            client.registry_add(results=doc_of(db_b), alias="other")
            first = client.predict(**request)
            second = client.predict(**request, db="other")
            assert first["request_key"] != second["request_key"]
            assert first["times"] != second["times"]
            # Both are now cache hits under their own keys, still
            # bit-identical to their own database's direct call.
            assert client.predict(**request)["times"] == first["times"]
            repeat = client.predict(**request, db="other")
            assert repeat["times"] == second["times"]
            assert repeat["served_from"] == "cache"


def client_addr(client: ServiceClient) -> tuple[str, int]:
    return client.host, client.port


class TestHotSwap:
    def test_alias_promotion_swaps_with_zero_restart(self, db, db_b, db_c):
        request = jacobi_request()
        expected_b = direct_jacobi(db_b, request).times
        expected_c = direct_jacobi(db_c, request).times
        with serve(db) as (_service, client):
            client.registry_add(results=doc_of(db_b))
            client.registry_add(results=doc_of(db_c))
            promoted = client.registry_promote(db_b.fingerprint(), "prod")
            assert promoted["fingerprint"] == db_b.fingerprint()
            assert promoted["previous"] is None
            assert client.predict(**request, db="prod")["times"] == expected_b

            # Hot-swap: repoint the alias -- no restart, next resolution
            # serves the new database.
            promoted = client.registry_promote(db_c.fingerprint(), "prod")
            assert promoted["previous"] == db_b.fingerprint()
            swapped = client.predict(**request, db="prod")
            assert swapped["times"] == expected_c
            assert swapped["db_fingerprint"] == db_c.fingerprint()

            # Requests pinned to the old fingerprint keep serving the
            # old results, bit-identically.
            pinned = client.predict(**request, db=db_b.fingerprint())
            assert pinned["times"] == expected_b
            assert pinned["db_fingerprint"] == db_b.fingerprint()

    def test_promotion_mid_load_never_mixes_fingerprints(self, db, db_b,
                                                         db_c):
        """ISSUE satellite: drive predictions at an alias while it is
        promoted back and forth.  Every response must carry times
        bit-identical to the database its echoed fingerprint names --
        old or new is fine mid-swap, a mix is not."""
        with serve(db) as (_service, client):
            client.registry_add(results=doc_of(db_b))
            client.registry_add(results=doc_of(db_c))
            client.registry_promote(db_b.fingerprint(), "prod")
            expected = {}
            for seed in range(4):
                request = jacobi_request(seed=seed)
                expected[(db_b.fingerprint(), seed)] = direct_jacobi(
                    db_b, request
                ).times
                expected[(db_c.fingerprint(), seed)] = direct_jacobi(
                    db_c, request
                ).times

            mixes = []
            stop = threading.Event()

            def drive():
                worker = ServiceClient(*client_addr(client), timeout=120.0)
                seed = 0
                while not stop.is_set():
                    record = worker.predict(
                        **jacobi_request(seed=seed % 4), db="prod"
                    )
                    want = expected[(record["db_fingerprint"], seed % 4)]
                    if record["times"] != want:  # pragma: no cover
                        mixes.append(record)
                        break
                    seed += 1
                worker.close()

            threads = [threading.Thread(target=drive) for _ in range(3)]
            for t in threads:
                t.start()
            targets = (db_b.fingerprint(), db_c.fingerprint())
            for i in range(10):
                client.registry_promote(targets[i % 2], "prod")
            stop.set()
            for t in threads:
                t.join(timeout=60.0)
            assert mixes == []


class TestTenantLimits:
    def test_quota_exhaustion_returns_429_with_retry_after(self, db, db_b,
                                                           db_c):
        registry = RegistryStore()
        tenants = TenantManager(
            registry, TenantQuota(max_dbs=1, retry_after=3.0)
        )
        with serve(db, registry=registry, tenants=tenants) as (_s, client):
            alice = ServiceClient(*client_addr(client), tenant="alice",
                                  timeout=120.0)
            try:
                alice.registry_add(results=doc_of(db_b))
                status, headers, doc = alice._request(
                    "POST", "/distributions", {"results": doc_of(db_c)},
                    idempotent=False,
                )
                assert status == 429
                retry_after = {
                    k.lower(): v for k, v in headers.items()
                }["retry-after"]
                assert float(retry_after) == pytest.approx(3.0)
                assert "limit 1" in doc["error"]
                # Re-uploading already-stored content stays free: the
                # content-addressed no-op skips the quota entirely.
                again = alice.registry_add(results=doc_of(db_b))
                assert again["fingerprint"] == db_b.fingerprint()
                text = client.metrics_text()
                assert "repro_registry_quota_rejections_total 1" in text
            finally:
                alice.close()

    def test_tenant_rate_limit_returns_429_with_retry_after(self, db):
        registry = RegistryStore()
        tenants = TenantManager(
            registry, TenantQuota(rate=0.001, burst=1)
        )
        with serve(db, registry=registry, tenants=tenants) as (_s, client):
            alice = ServiceClient(*client_addr(client), tenant="alice",
                                  timeout=120.0)
            try:
                # Burst of one: the first engine-bound request passes...
                first = alice.predict(**jacobi_request(seed=0))
                assert first["served_from"] == "engine"
                # ...the next distinct one is throttled before any
                # engine work, with the token bucket's own hint.
                status, headers, doc = alice.predict_raw(
                    jacobi_request(seed=1)
                )
                assert status == 429
                retry_after = {
                    k.lower(): v for k, v in headers.items()
                }["retry-after"]
                assert float(retry_after) > 100.0  # ~1000 s at 0.001/s
                assert "alice" in doc["error"]
                # Cache hits bypass admission: replaying the already
                # served request costs no token and still succeeds.
                assert alice.predict(**jacobi_request(seed=0))[
                    "served_from"
                ] == "cache"
                # Other tenants have their own bucket.
                assert client.predict(**jacobi_request(seed=2))[
                    "times"
                ]
                text = client.metrics_text()
                assert 'repro_tenant_throttled_total{tenant="alice"} 1' in text
            finally:
                alice.close()


class TestOwnershipAndHealth:
    def test_delete_enforces_ownership(self, db, db_b):
        with serve(db) as (_service, client):
            alice = ServiceClient(*client_addr(client), tenant="alice",
                                  timeout=120.0)
            bob = ServiceClient(*client_addr(client), tenant="bob",
                                timeout=120.0)
            try:
                alice.registry_add(results=doc_of(db_b), alias="mine")
                status, _, doc = bob._request(
                    "DELETE", f"/distributions/{db_b.fingerprint()}",
                    idempotent=False,
                )
                assert status == 403
                assert "alice" in doc["error"]
                deleted = alice.registry_delete("mine")
                assert deleted["deleted"] == db_b.fingerprint()
                status, _, _ = client.predict_raw(
                    jacobi_request(db=db_b.fingerprint())
                )
                assert status == 404
            finally:
                alice.close()
                bob.close()

    def test_healthz_and_metrics_report_registry_state(self, db, db_b):
        with serve(db) as (_service, client):
            health = client.healthz()
            assert health["registry"]["dbs"] == 1
            assert health["registry"]["aliases"] == 1  # "default"
            client.registry_add(results=doc_of(db_b))
            health = client.healthz()
            assert health["registry"]["dbs"] == 2
            assert health["registry"]["bytes"] > 0
            text = client.metrics_text()
            assert "repro_registry_dbs 2" in text
            assert "repro_registry_bytes" in text
            assert 'repro_registry_uploads_total{tenant="public"} 1' in text
            assert 'repro_tenant_requests_total' not in text  # no predicts yet
            client.predict(**jacobi_request())
            assert 'repro_tenant_requests_total{tenant="public"} 1' in (
                client.metrics_text()
            )

    def test_registry_get_and_legacy_distributions(self, db, db_b):
        with serve(db) as (_service, client):
            client.registry_add(results=doc_of(db_b), alias="b@v1")
            doc = client.registry_get("b@v1")
            assert doc["fingerprint"] == db_b.fingerprint()
            assert doc["aliases"] == ["b@v1"]
            described = client.registry_get("b@v1", size=1024)
            assert described["distribution"]["requested_size"] == 1024
            # The legacy describe endpoint still serves the startup db.
            legacy = client.distributions(size=1024)
            assert legacy["requested_size"] == 1024
            listing = client.distributions()
            assert listing["db_fingerprint"] == db.fingerprint()
            assert listing["cluster"] == db.cluster


class TestChaosQuarantine:
    def test_corrupt_cas_entry_quarantined_and_reuploadable(
        self, db, db_b, tmp_path
    ):
        """ISSUE satellite: the chaos ``corrupt_cache`` fault also
        targets registry CAS entries; a poisoned database is
        quarantined to ``*.corrupt``, reads turn into plain 404 misses,
        and re-uploading the same content restores service."""
        injector = FaultInjector(seed=1)
        registry = RegistryStore(tmp_path / "registry", lru_size=0)
        with serve(
            db, registry=registry, fault_injector=injector
        ) as (service, client):
            assert injector.registry_root == registry.root
            client.registry_add(results=doc_of(db_b))
            poisoned = injector.corrupt_now()
            assert poisoned is not None
            assert poisoned.parent == registry.root / "cas"
            fpr = poisoned.stem[len("db-"):]
            victim = db if fpr == db.fingerprint() else db_b

            # Reading through the registry quarantines the entry...
            status, _, doc = client._request(
                "GET", f"/distributions/{fpr}?size=1024"
            )
            assert status == 404
            assert "quarantined" in doc["error"]
            assert not poisoned.exists()
            assert poisoned.with_suffix(".corrupt").exists()
            assert registry.corruptions == 1
            # ...later reads are plain misses...
            status, _, _ = client._request("GET", f"/distributions/{fpr}")
            assert status == 404
            # ...and re-uploading the same content repairs it.
            meta = client.registry_add(results=doc_of(victim))
            assert meta["fingerprint"] == fpr
            doc = client.registry_get(fpr, size=1024)
            assert doc["distribution"]["requested_size"] == 1024
            assert client.healthz()["registry"]["corruptions"] == 1


class TestCASRaceOverHTTP:
    def test_concurrent_same_content_uploads_converge(self, db, db_b):
        """ISSUE satellite: N clients racing identical uploads all
        succeed, one CAS entry results, and the index is never torn."""
        with serve(db) as (_service, client):
            doc = doc_of(db_b)
            results: list = []

            def upload(i):
                worker = ServiceClient(*client_addr(client),
                                       tenant=f"t{i}", timeout=120.0)
                try:
                    results.append(
                        worker.registry_add(results=doc, alias="race")
                    )
                except Exception as exc:  # pragma: no cover
                    results.append(exc)
                finally:
                    worker.close()

            threads = [
                threading.Thread(target=upload, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert len(results) == 6
            fingerprints = {
                r["fingerprint"] for r in results if isinstance(r, dict)
            }
            assert fingerprints == {db_b.fingerprint()}
            registry = client.registry_list()
            assert len(registry["dbs"]) == 2  # startup + the one upload
            assert registry["aliases"]["race"] == db_b.fingerprint()
            # The stored entry still serves, bit-identically.
            request = jacobi_request()
            assert client.predict(**request, db="race")[
                "times"
            ] == direct_jacobi(db_b, request).times


@pytest.mark.slow
def test_sharded_registry_plane_end_to_end(db, db_b, tmp_path):
    """A supervised 2-shard deployment over one shared registry plane:
    an upload through the router lands once, is visible on every shard,
    serves bit-identically through the router and through each shard
    directly, shards by ref, and hot-swaps with zero restart."""
    supervisor = Supervisor(
        db, 2, cache_dir=tmp_path / "cache",
        registry_dir=tmp_path / "registry", tracing=False, drain_grace=5.0,
    )
    try:
        host, port = supervisor.start()
        client = ServiceClient(host, port, timeout=120.0)
        request = jacobi_request(seed=5)
        expected_startup = direct_jacobi(db, request).times
        expected_b = direct_jacobi(db_b, request).times

        meta = client.registry_add(results=doc_of(db_b), alias="prod")
        assert meta["fingerprint"] == db_b.fingerprint()

        # Visible on every shard (the shared plane, not a broadcast).
        for shard in range(2):
            shard_client = ServiceClient(
                *supervisor.shard_address(shard), timeout=120.0
            )
            doc = shard_client.registry_get("prod")
            assert doc["fingerprint"] == db_b.fingerprint()
            record = shard_client.predict(**request, db="prod")
            assert record["times"] == expected_b
            assert record["db_fingerprint"] == db_b.fingerprint()
            shard_client.close()

        # Through the router: ref-less and ref-ful, both bit-identical.
        assert client.predict(**request)["times"] == expected_startup
        routed = client.predict(**request, db="prod")
        assert routed["times"] == expected_b

        # Hot-swap on the shared plane: promote "prod" back to the
        # startup database; every shard resolves the new target on its
        # next request, no restart anywhere.
        promoted = client.registry_promote(db.fingerprint(), "prod")
        assert promoted["previous"] == db_b.fingerprint()
        swapped = client.predict(**request, db="prod")
        assert swapped["times"] == expected_startup
        assert swapped["db_fingerprint"] == db.fingerprint()
        # The old fingerprint stays directly addressable.
        assert client.predict(
            **request, db=db_b.fingerprint()
        )["times"] == expected_b

        # Aggregated metrics carry the registry gauges from both shards.
        text = client.metrics_text()
        assert "repro_registry_dbs" in text
        client.close()
    finally:
        supervisor.stop()
