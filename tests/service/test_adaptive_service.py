"""Adaptive (precision-targeted) requests through the service funnel.

The service-level contract: ``target_rse`` replaces ``runs`` (mutually
exclusive), the engine decides the spend, the response carries the
decision trail in ``precision``, and the achieved result is cached so a
later fixed-``runs`` request for the same content hits it bit-identically.
"""

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.service import PredictionService
from repro.simnet import perseus

from .test_service_e2e import jacobi_request, run_service, serve

pytestmark = pytest.mark.service

SPEC = perseus(16)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def adaptive_request(**overrides) -> dict:
    request = jacobi_request()
    del request["runs"]
    request["target_rse"] = 0.5
    request.update(overrides)
    return request


class TestAdaptiveServing:
    def test_engine_served_with_precision_block(self, db):
        with serve(db) as (_service, client):
            record = client.predict(**adaptive_request())
        assert record["served_from"] == "engine"
        p = record["precision"]
        assert p["target"]["rse"] == 0.5
        assert p["converged"] is True
        assert record["runs"] == sum(r["added"] for r in p["rounds"])
        assert len(record["times"]) == record["runs"]

    def test_runs_vary_with_target(self, db):
        loose = adaptive_request()
        tight = adaptive_request(target_rse=1e-9, max_runs=8)
        with serve(db) as (_service, client):
            a = client.predict(**loose)
            b = client.predict(**tight)
        assert a["runs"] < b["runs"]
        assert b["runs"] == 8
        assert b["precision"]["converged"] is False

    def test_loose_target_spends_fewer_runs_than_fixed_16(self, db):
        """The issue's acceptance criterion at the service boundary."""
        with serve(db) as (_service, client):
            adaptive = client.predict(**adaptive_request(target_rse=0.05))
            fixed = client.predict(**jacobi_request(runs=16))
        assert adaptive["runs"] < fixed["runs"] == 16

    def test_fixed_runs_request_hits_adaptive_result(self, db, tmp_path):
        # Adaptive vector requests chunk at min_runs, so the equivalent
        # fixed request must pin the same vector_batch to share content.
        with serve(db, cache_dir=tmp_path) as (_service, client):
            adaptive = client.predict(**adaptive_request(min_runs=4))
            fixed = client.predict(
                **jacobi_request(runs=adaptive["runs"], vector_batch=4)
            )
        assert fixed["served_from"] == "cache"
        assert fixed["times"] == adaptive["times"]
        assert "precision" not in fixed

    def test_repeat_adaptive_request_cached(self, db, tmp_path):
        request = adaptive_request()
        with serve(db, cache_dir=tmp_path) as (_service, client):
            first = client.predict(**request)
            second = client.predict(**request)
        assert first["served_from"] == "engine"
        assert second["served_from"] == "cache"
        assert second["times"] == first["times"]
        assert second["precision"] == first["precision"]


class TestValidation:
    @pytest.mark.parametrize(
        "overrides,needle",
        [
            ({"runs": 4}, "not both"),
            ({"target_rse": 0.0}, "target_rse"),
            ({"target_rse": -1.0}, "target_rse"),
            ({"target_rse": "tight"}, "target_rse"),
            ({"min_runs": 1}, "min_runs"),
            ({"min_runs": 32, "max_runs": 8}, "max_runs"),
        ],
    )
    def test_rejected_with_400(self, db, overrides, needle):
        body = adaptive_request(**overrides)

        async def scenario(service):
            return await service.handle_predict(body)

        status, _, doc = run_service(db, scenario)
        assert status == 400
        assert needle in doc["error"]

    def test_bounds_require_target(self, db):
        body = jacobi_request(min_runs=4)

        async def scenario(service):
            return await service.handle_predict(body)

        status, _, doc = run_service(db, scenario)
        assert status == 400
        assert "min_runs" in doc["error"] or "target_rse" in doc["error"]


class TestRunsMetrics:
    def test_histogram_counts_by_mode(self, db):
        with serve(db) as (service, client):
            client.predict(**adaptive_request())
            client.predict(**jacobi_request(runs=3))
            client.predict(**jacobi_request(runs=3, seed=8))
            text = client.metrics_text()
        assert service.metrics.runs_count("adaptive") == 1
        assert service.metrics.runs_count("fixed") == 2
        assert service.metrics.runs_sum("fixed") == 6
        assert 'repro_prediction_runs_bucket{mode="adaptive"' in text
        assert 'repro_prediction_runs_count{mode="fixed"} 2' in text

    def test_cache_hits_not_counted(self, db, tmp_path):
        request = adaptive_request()
        with serve(db, cache_dir=tmp_path) as (service, client):
            client.predict(**request)
            client.predict(**request)  # cache hit
            assert service.metrics.runs_count("adaptive") == 1
