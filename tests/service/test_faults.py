"""Fault-tolerance tests: crash recovery, retries, breaker, chaos harness.

The contract under test (ISSUE 4): under injected faults -- a SIGKILLed
pool worker, a corrupted disk-cache entry, a stalled evaluator -- the
service still returns *correct, bit-identical* predictions for every
request it admits.  Recovery must never change numbers: re-dispatched
work units carry the same per-run seed streams they had the first time,
a quarantined cache entry is simply re-evaluated, and client retries
re-request content-addressed (idempotent) documents.
"""

import asyncio
import http.client
import os
import signal
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.pevpm import parallel as _parallel
from repro.pevpm.parallel import (
    POOL_REBUILD_LIMIT,
    PredictionCache,
    RunGroup,
    as_seed_sequence,
    evaluate_groups,
    install_fault_injector,
)
from repro.service import (
    BreakerOpen,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    JobQueue,
    LeaderCancelled,
    LoadGenerator,
    PredictionService,
    PredictRequest,
    QueueFull,
    RetryPolicy,
    ServiceClient,
    ServiceMetrics,
    ServiceThread,
    SingleFlight,
)
from repro.simnet import perseus

pytestmark = [pytest.mark.service, pytest.mark.chaos]

SPEC = perseus(16)
ITER = 20


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def jacobi_request(**overrides) -> dict:
    request = {
        "model": "jacobi",
        "model_params": {"iterations": ITER},
        "nprocs": 4,
        "runs": 4,
        "seed": 7,
    }
    request.update(overrides)
    return request


def direct_jacobi(db, request: dict):
    params = {
        "iterations": request.get("model_params", {}).get("iterations", 100),
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }
    return predict(
        parse_jacobi(),
        request["nprocs"],
        timing_from_db(db, mode="distribution", nprocs=request["nprocs"]),
        runs=request.get("runs", 16),
        seed=request.get("seed", 0),
        params=params,
        vector_runs=request.get("vector_runs", True),
    )


def run_service(db, scenario, **kwargs):
    service = PredictionService(db, spec=SPEC, **kwargs)

    async def main():
        try:
            return await scenario(service)
        finally:
            service.close()

    return asyncio.run(main())


def jacobi_group(db, runs=8, seed=5, vector_batch=1) -> RunGroup:
    params = {
        "iterations": ITER,
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }
    return RunGroup(
        model=parse_jacobi(),
        nprocs=4,
        timing=timing_from_db(db, mode="distribution", nprocs=4),
        seed=as_seed_sequence(seed),
        runs=runs,
        params=params,
        vector_runs=True,
        vector_batch=vector_batch,
    )


# -- the fault injector itself -------------------------------------------------
class TestFaultInjector:
    def test_seeded_plans_are_replayable(self):
        one = FaultPlan.seeded(11, length=6)
        two = FaultPlan.seeded(11, length=6)
        assert one == two
        assert len(one.faults) == 6
        assert all(spec.kind in ("kill_worker", "corrupt_cache",
                                 "delay_cache", "stall_evaluator")
                   for spec in one.faults)
        assert FaultPlan.seeded(12, length=6) != one

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(kind="delay_cache", seconds=-1)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, length=0)

    def test_fault_fires_at_counted_site_event(self):
        injector = FaultInjector(seed=0)
        injector.arm("stall_evaluator", seconds=0.0, at=2)
        injector.on_evaluate()  # event 1: not yet
        assert injector.injected["stall_evaluator"] == 0
        injector.on_evaluate()  # event 2: fires
        assert injector.injected["stall_evaluator"] == 1
        injector.on_evaluate()  # spec consumed: nothing left to fire
        assert injector.injected["stall_evaluator"] == 1
        assert injector.events["evaluate"] == 3

    def test_corrupt_now_without_cache_is_a_noop(self, tmp_path):
        injector = FaultInjector(seed=0)
        assert injector.corrupt_now() is None
        injector.cache_root = tmp_path  # exists but empty
        assert injector.corrupt_now() is None

    def test_corrupt_now_poisons_a_stored_entry(self, tmp_path):
        cache = PredictionCache(tmp_path)
        cache.put("aa", {"times": [1.0]})
        injector = FaultInjector(seed=0, cache_root=tmp_path)
        path = injector.corrupt_now()
        assert path is not None and path.exists()
        assert cache.get("aa") is None  # corrupt -> miss + quarantine
        assert injector.snapshot()["injected"]["corrupt_cache"] == 1

    def test_snapshot_shape(self):
        injector = FaultInjector(seed=3)
        injector.arm("delay_cache", seconds=0.01)
        snap = injector.snapshot()
        assert snap["armed"]["delay_cache"] == 1
        assert set(snap["events"]) == {"evaluate", "cache_read", "dispatch"}


# -- engine crash recovery (tentpole part 2) -----------------------------------
class TestEngineRecovery:
    def test_worker_kill_recovers_bit_identical(self, db):
        group = jacobi_group(db)
        baseline = evaluate_groups([jacobi_group(db)], workers=1)
        rebuilds = []
        injector = FaultInjector(seed=0)
        injector.arm("kill_worker")
        install_fault_injector(injector)
        try:
            recovered = evaluate_groups(
                [group], workers=2, on_rebuild=rebuilds.append
            )
        finally:
            install_fault_injector(None)
        assert injector.injected["kill_worker"] == 1
        assert [o.elapsed for o in recovered[0]] == [
            o.elapsed for o in baseline[0]
        ]

    def test_persistent_pool_failure_falls_back_to_serial(self, db):
        class AlwaysKill:
            kills = 0

            def on_pool_dispatch(self, pool):
                procs = list(getattr(pool, "_processes", {}).values())
                if procs:
                    os.kill(procs[0].pid, signal.SIGKILL)
                    self.kills += 1

        group = jacobi_group(db, runs=6)
        baseline = evaluate_groups([jacobi_group(db, runs=6)], workers=1)
        rebuilds = []
        killer = AlwaysKill()
        install_fault_injector(killer)
        try:
            recovered = evaluate_groups(
                [group], workers=2, on_rebuild=rebuilds.append
            )
        finally:
            install_fault_injector(None)
        # Every pool was killed at dispatch; past the rebuild limit the
        # remaining units must have finished on the serial path -- with
        # the same numbers either way.
        assert killer.kills >= 1
        assert rebuilds == list(range(1, len(rebuilds) + 1))
        assert len(rebuilds) <= POOL_REBUILD_LIMIT + 1
        assert [o.elapsed for o in recovered[0]] == [
            o.elapsed for o in baseline[0]
        ]

    @pytest.mark.slow
    def test_wedged_pool_is_killed_and_recovered(self, db, monkeypatch):
        # A forked child that inherits a held lock deadlocks without
        # ever crashing, so no BrokenProcessPool is raised on its own.
        # SIGSTOP models that: the workers stay alive but silent.  The
        # watchdog must kill the pool and recover bit-identically.
        class StopAllOnce:
            stopped = 0

            def on_pool_dispatch(self, pool):
                if self.stopped:
                    return
                for proc in getattr(pool, "_processes", {}).values():
                    os.kill(proc.pid, signal.SIGSTOP)
                    self.stopped += 1

        monkeypatch.setattr(_parallel, "POOL_WEDGE_TIMEOUT", 1.0)
        group = jacobi_group(db, runs=6)
        baseline = evaluate_groups([jacobi_group(db, runs=6)], workers=1)
        rebuilds = []
        wedger = StopAllOnce()
        install_fault_injector(wedger)
        try:
            recovered = evaluate_groups(
                [group], workers=2, on_rebuild=rebuilds.append
            )
        finally:
            install_fault_injector(None)
        assert wedger.stopped == 2
        assert rebuilds == [1]
        assert [o.elapsed for o in recovered[0]] == [
            o.elapsed for o in baseline[0]
        ]

    def test_served_prediction_survives_worker_kill(self, db):
        # Scalar mode: each of the 8 runs is its own pool work unit.
        request = jacobi_request(runs=8, vector_runs=False)
        injector = FaultInjector(seed=1)
        injector.arm("kill_worker")
        service = PredictionService(
            db, spec=SPEC, workers=2, fault_injector=injector
        )
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                record = client.predict(**request)
            finally:
                client.close()
        assert record["times"] == direct_jacobi(db, request).times
        assert injector.injected["kill_worker"] == 1


# -- cache corruption quarantine (satellite a) ---------------------------------
class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = PredictionCache(tmp_path)
        seen = []
        cache.on_corrupt = seen.append
        cache.put("deadbeef", {"times": [1.0, 2.0]})
        path = cache._path("deadbeef")
        path.write_text('{"version": 2, "times": [1.0')  # truncated
        assert cache.get("deadbeef") is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert cache.corruptions == 1
        assert seen == [path]
        # The quarantined file is out of the lookup path: the next get
        # is a plain miss, not another quarantine.
        assert cache.get("deadbeef") is None
        assert cache.corruptions == 1

    def test_non_object_json_is_quarantined_too(self, tmp_path):
        cache = PredictionCache(tmp_path)
        cache.put("aa", {"times": []})
        cache._path("aa").write_text("[1, 2, 3]")
        assert cache.get("aa") is None
        assert cache.corruptions == 1

    def test_version_mismatch_is_a_miss_not_a_quarantine(self, tmp_path):
        cache = PredictionCache(tmp_path)
        cache._path("aa").parent.mkdir(parents=True, exist_ok=True)
        cache._path("aa").write_text('{"version": 1, "times": []}')
        assert cache.get("aa") is None
        assert cache.corruptions == 0
        assert cache._path("aa").exists()

    def test_served_request_reevaluates_after_corruption(self, db, tmp_path):
        request = jacobi_request()
        service = PredictionService(db, spec=SPEC, cache_dir=tmp_path)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                first = client.predict(**request)
            finally:
                client.close()
        assert first["served_from"] == "engine"
        FaultInjector(seed=0, cache_root=tmp_path).corrupt_now()
        # A fresh service over the poisoned disk tier: the corrupt entry
        # must quarantine, count, and re-evaluate to the same bits.
        service = PredictionService(db, spec=SPEC, cache_dir=tmp_path)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                second = client.predict(**request)
            finally:
                client.close()
        assert second["served_from"] == "engine"
        assert second["times"] == first["times"]
        assert service.metrics.counter("repro_cache_corrupt_total") == 1


# -- client retry/backoff (tentpole part 3) ------------------------------------
class TestRetryPolicy:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(retries=5, base=0.1, cap=0.5, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped

    def test_jitter_is_seeded_and_bounded(self):
        one = RetryPolicy(base=0.1, cap=1.0, jitter=0.5, seed=9)
        two = RetryPolicy(base=0.1, cap=1.0, jitter=0.5, seed=9)
        delays = [one.backoff(k) for k in range(4)]
        assert delays == [two.backoff(k) for k in range(4)]
        for k, delay in enumerate(delays):
            nominal = min(1.0, 0.1 * 2 ** k)
            assert nominal / 2 <= delay <= nominal

    def test_retry_after_overrides_but_stays_capped(self):
        policy = RetryPolicy(cap=0.5, jitter=0.0)
        assert policy.backoff(0, retry_after=0.25) == 0.25
        assert policy.backoff(0, retry_after=60.0) == 0.5
        assert policy.backoff(0, retry_after=-1.0) == 0.0

    def test_retry_after_gets_additive_jitter(self):
        # Every client shed by the same 429/503 receives the same hint;
        # without a spread they all wake and retry in lockstep against a
        # just-recovered server.
        policy = RetryPolicy(cap=2.0, jitter=0.5, seed=11)
        delays = [policy.backoff(0, retry_after=0.25) for _ in range(16)]
        for delay in delays:
            assert 0.25 <= delay <= 0.25 * 1.5  # hint + up to jitter*hint
        assert len(set(delays)) > 1  # spread, not one synchronised sleep
        other = RetryPolicy(cap=2.0, jitter=0.5, seed=99)
        assert [
            RetryPolicy(cap=2.0, jitter=0.5, seed=11).backoff(0, retry_after=0.25)
        ] != [other.backoff(0, retry_after=0.25)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class _ScriptedClient(ServiceClient):
    """A client whose HTTP attempts are scripted (no sockets)."""

    def __init__(self, script, **kwargs):
        super().__init__("test", 0, **kwargs)
        self.script = list(script)
        self.attempts = 0
        self.slept = []
        self._sleep = self.slept.append

    def _attempt(self, method, path, payload, headers):
        self.attempts += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientRetries:
    def test_retries_retryable_statuses_until_success(self):
        client = _ScriptedClient(
            [
                (503, {"Retry-After": "0.25"}, {"error": "breaker"}),
                (504, {}, {"error": "deadline"}),
                (200, {}, {"ok": True}),
            ],
            retry=RetryPolicy(retries=3, base=0.05, jitter=0.0),
        )
        status, _, doc = client._request("POST", "/predict", {"x": 1})
        assert status == 200 and doc == {"ok": True}
        assert client.attempts == 3
        # First sleep honoured the server's Retry-After exactly; the
        # second used the policy's own backoff for attempt 1.
        assert client.slept == [0.25, pytest.approx(0.1)]
        assert client.metrics.counter(
            "repro_client_retries_total", reason="503"
        ) == 1
        assert client.metrics.counter(
            "repro_client_retries_total", reason="504"
        ) == 1

    def test_transport_errors_reconnect_and_retry(self):
        client = _ScriptedClient(
            [ConnectionResetError(), (200, {}, {"ok": True})],
            retry=RetryPolicy(retries=2, base=0.01, jitter=0.0),
        )
        status, _, _ = client._request("GET", "/healthz")
        assert status == 200
        assert client.metrics.counter(
            "repro_client_retries_total", reason="transport"
        ) == 1

    def test_exhausted_retries_return_last_status(self):
        client = _ScriptedClient(
            [(429, {}, {})] * 3,
            retry=RetryPolicy(retries=2, base=0.01, jitter=0.0),
        )
        status, _, _ = client._request("POST", "/predict", {})
        assert status == 429
        assert client.attempts == 3

    def test_non_idempotent_requests_never_retry(self):
        client = _ScriptedClient(
            [(503, {}, {"error": "breaker"})],
            retry=RetryPolicy(retries=3),
        )
        status, _, _ = client.predict_raw({"model": "jacobi"})
        assert status == 503
        assert client.attempts == 1
        with pytest.raises(ConnectionResetError):
            _ScriptedClient(
                [ConnectionResetError()], retry=RetryPolicy(retries=3)
            ).predict_raw({})

    def test_default_client_does_not_retry(self):
        client = _ScriptedClient([(503, {}, {})])
        status, _, _ = client._request("POST", "/predict", {})
        assert status == 503
        assert client.attempts == 1


# -- circuit breaker + admission slots (tentpole part 4 + satellite c) ---------
class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = {"now": 0.0}
        metrics = ServiceMetrics()
        breaker = CircuitBreaker(
            metrics=metrics, clock=lambda: clock["now"], **kwargs
        )
        return breaker, clock, metrics

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _, metrics = self.make(threshold=3, cooldown=1.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_success()  # success resets the streak
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0 < breaker.retry_after <= 1.0
        assert metrics.counter("repro_breaker_open_total") == 1
        assert metrics.counter("repro_breaker_rejected_total") == 1

    def test_half_open_single_probe_then_close(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock["now"] = 1.5
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_full_cooldown(self):
        breaker, clock, metrics = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock["now"] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after == pytest.approx(1.0)
        assert metrics.counter("repro_breaker_open_total") == 2

    def test_released_probe_frees_the_slot(self):
        # Regression: a probe that ends without a health verdict (shed
        # by admission, model deadlock, cancelled) must give the slot
        # back -- otherwise allow() returns False forever and the
        # breaker wedges open until restart.
        breaker, clock, _ = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock["now"] = 1.5
        assert breaker.allow()       # the probe goes through
        assert not breaker.allow()   # slot held
        breaker.release_probe()      # probe shed: no success, no failure
        assert breaker.state == "half-open"
        assert breaker.allow()       # a fresh probe may go through
        breaker.record_success()
        assert breaker.state == "closed"

    def test_release_probe_when_closed_is_a_noop(self):
        breaker, _, _ = self.make(threshold=2, cooldown=1.0)
        breaker.release_probe()
        assert breaker.state == "closed" and breaker.allow()


class TestJobSlot:
    def test_slot_releases_exactly_once(self):
        queue = JobQueue(2, ServiceMetrics())
        with queue.admit() as slot:
            assert queue.inflight == 1
            slot.release()   # early release (e.g. handler cleanup)
            assert queue.inflight == 0
        # __exit__ after an explicit release must not double-release.
        assert queue.inflight == 0
        queue.admit().__enter__()
        assert queue.inflight == 1  # no underflow corrupted the count

    def test_exception_path_releases(self):
        queue = JobQueue(1, ServiceMetrics())
        with pytest.raises(RuntimeError):
            with queue.admit():
                raise RuntimeError("engine blew up")
        assert queue.inflight == 0
        with queue.admit():  # the slot is reusable
            with pytest.raises(QueueFull):
                queue.admit().__enter__()

    def test_failed_acquire_leaks_nothing(self):
        queue = JobQueue(1, ServiceMetrics())
        with queue.admit():
            slot = queue.admit()
            with pytest.raises(QueueFull):
                slot.__enter__()
            slot.release()  # releasing an unacquired slot is a no-op
            assert queue.inflight == 1
        assert queue.inflight == 0


class TestBreakerInService:
    def test_engine_failures_open_breaker_and_probe_recovers(self, db):
        clock = {"now": 0.0}

        async def scenario(service):
            service.breaker = CircuitBreaker(
                threshold=2, cooldown=1.0, metrics=service.metrics,
                clock=lambda: clock["now"],
            )
            healthy = service.batcher._evaluate

            def broken(reqs):
                raise RuntimeError("evaluator crashed")

            service.batcher._evaluate = broken
            out = []
            for seed in range(3):
                status, headers, doc = await service.handle_predict(
                    jacobi_request(seed=seed)
                )
                out.append((status, headers, doc))
            # Engine healthy again, cooldown elapsed: the probe closes it.
            service.batcher._evaluate = healthy
            clock["now"] = 2.0
            probe = await service.handle_predict(jacobi_request(seed=0))
            closed = service.breaker.state
            return out, probe, closed

        out, probe, closed = run_service(db, scenario, caching=False)
        assert [status for status, _, _ in out] == [500, 500, 503]
        status, headers, doc = out[2]
        assert doc["error"] == "circuit breaker open"
        assert float(headers["Retry-After"]) > 0
        assert probe[0] == 200
        assert closed == "closed"

    def test_shed_probe_does_not_wedge_breaker(self, db):
        # Regression: if the half-open probe is shed by admission (or
        # hits a model deadlock / bad request), the probe slot must be
        # released -- otherwise every later engine-bound request gets
        # 503 forever even though the engine is healthy again.
        clock = {"now": 0.0}

        async def scenario(service):
            service.breaker = CircuitBreaker(
                threshold=1, cooldown=1.0, metrics=service.metrics,
                clock=lambda: clock["now"],
            )
            service.breaker.record_failure()  # breaker opens
            clock["now"] = 2.0                # cooldown elapsed: half-open
            service.jobs.acquire()            # admission full: probe is shed
            shed = await service.handle_predict(jacobi_request())
            service.jobs.release()
            after = await service.handle_predict(jacobi_request())
            return shed, after, service.breaker.state

        shed, after, state = run_service(
            db, scenario, caching=False, queue_limit=1
        )
        assert shed[0] == 429   # shed by admission, not by the breaker
        assert after[0] == 200  # the next request probed: no wedge
        assert state == "closed"

    def test_cache_hits_served_while_breaker_open(self, db):
        async def scenario(service):
            body = jacobi_request()
            warm = await service.handle_predict(body)
            service.breaker._opened_at = service.breaker._clock()
            hit = await service.handle_predict(body)
            miss = await service.handle_predict(jacobi_request(seed=99))
            return warm, hit, miss

        warm, hit, miss = run_service(db, scenario)
        assert warm[0] == 200 and hit[0] == 200
        assert hit[2]["served_from"] == "cache"
        assert hit[2]["times"] == warm[2]["times"]
        assert miss[0] == 503  # only engine-bound work is shed


# -- singleflight leader cancellation (satellite d) ----------------------------
class TestLeaderCancellation:
    def test_followers_get_rejection_not_hang(self):
        async def main():
            flight = SingleFlight(ServiceMetrics())
            leader, fut = flight.claim("k")
            assert leader
            follower_sees = asyncio.ensure_future(asyncio.wait_for(fut, 5))
            await asyncio.sleep(0)
            flight.reject("k", asyncio.CancelledError())
            with pytest.raises(LeaderCancelled):
                await follower_sees
            assert flight.inflight == 0

        asyncio.run(main())

    def test_follower_gets_retryable_503_then_success(self, db):
        body = jacobi_request()

        async def scenario(service):
            req = PredictRequest.from_dict(body)
            key = req.key(service.db_fingerprint)
            leader = asyncio.ensure_future(service._predict(req, key))
            while service.dedup.inflight == 0:  # leader has claimed
                await asyncio.sleep(0.001)
            follower = asyncio.ensure_future(service.handle_predict(body))
            await asyncio.sleep(0.01)  # follower is awaiting the future
            leader.cancel()
            status, headers, doc = await follower
            with pytest.raises(asyncio.CancelledError):
                await leader
            retry = await service.handle_predict(body)
            return (status, doc), retry

        (status, doc), retry = run_service(
            db, scenario, max_wait=0.2, caching=False
        )
        assert status == 503
        assert "leader" in doc["error"]
        assert retry[0] == 200  # a retry elects a new leader
        assert retry[2]["times"] == direct_jacobi(db, body).times


# -- prometheus escaping (satellite b) -----------------------------------------
class TestPrometheusEscaping:
    HOSTILE = 'va"l\\ue\nwith everything'

    def test_escape_label_value(self):
        from repro.service.metrics import escape_label_value

        assert escape_label_value(self.HOSTILE) == (
            'va\\"l\\\\ue\\nwith everything'
        )
        assert escape_label_value("plain") == "plain"

    def test_render_escapes_counter_and_latency_labels(self):
        metrics = ServiceMetrics()
        metrics.inc("repro_requests_total", endpoint=self.HOSTILE)
        metrics.observe(self.HOSTILE, 0.001)
        text = metrics.render_prometheus()
        assert '\nrepro_requests_total{endpoint="va\\"l\\\\ue\\nwith everything"} 1' in text
        assert 'repro_request_latency_seconds{endpoint="va\\"l\\\\ue\\nwith everything",quantile="0.5"}' in text
        # No raw newline inside any sample line: every line is either a
        # comment or one whole `name{labels} value` sample.
        import re

        for line in text.splitlines():
            assert line.startswith("#") or re.fullmatch(
                r"[a-zA-Z_][\w:]*(\{.*\})? \S+", line
            ), line

    def test_hostile_endpoint_over_http_keeps_exposition_parseable(self, db):
        service = PredictionService(db, spec=SPEC)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                client._request("GET", '/nope"quoted')
                text = client.metrics_text()
            finally:
                client.close()
        assert 'endpoint="/nope\\"quoted"' in text


# -- chaos endpoint + drain (tentpole parts 1 and 4, over HTTP) ----------------
class TestChaosEndpoint:
    def test_chaos_routes_only_in_chaos_mode(self, db):
        service = PredictionService(db, spec=SPEC)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                status, _, _ = client._request("GET", "/chaos")
            finally:
                client.close()
        assert status == 404

    def test_arm_and_fire_over_http(self, db, tmp_path):
        injector = FaultInjector(seed=2)
        service = PredictionService(
            db, spec=SPEC, cache_dir=tmp_path, fault_injector=injector
        )
        request = jacobi_request()
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                snap = client.chaos()
                assert snap["chaos"]["armed"]["stall_evaluator"] == 0
                armed = client.chaos(
                    {"kind": "stall_evaluator", "seconds": 0.01}
                )
                assert armed["armed"] == [
                    {"kind": "stall_evaluator", "seconds": 0.01}
                ]
                record = client.predict(**request)
                snap = client.chaos()
                health = client.healthz()
                bad = client._request("POST", "/chaos", {"kind": "nope"})
            finally:
                client.close()
        assert record["times"] == direct_jacobi(db, request).times
        assert snap["chaos"]["injected"]["stall_evaluator"] == 1
        assert health["chaos"]["events"]["evaluate"] >= 1
        assert health["breaker"] == "closed"
        assert health["draining"] is False
        assert bad[0] == 400

    def test_arm_plan_over_http(self, db):
        injector = FaultInjector(seed=2)
        service = PredictionService(db, spec=SPEC, fault_injector=injector)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                doc = client.chaos({"plan": {"seed": 5, "length": 3}})
            finally:
                client.close()
        assert len(doc["armed"]) == 3
        expected = [s.to_dict() for s in FaultPlan.seeded(5, length=3).faults]
        assert doc["armed"] == expected


class TestDrain:
    def test_draining_sheds_new_predictions_with_503(self, db):
        service = PredictionService(db, spec=SPEC)
        with ServiceThread(service) as thread:
            client = ServiceClient(*thread.address)
            try:
                ok = client.predict(**jacobi_request())
                service.draining = True
                status, headers, doc = client.predict_raw(jacobi_request())
            finally:
                client.close()
        assert ok["times"]
        assert status == 503
        assert doc["error"] == "server draining"
        assert headers.get("Connection") == "close"
        assert service.metrics.counter("repro_drain_rejected_total") == 1

    def test_drain_finishes_inflight_then_stops(self, db):
        request = jacobi_request(runs=16, seed=21)
        service = PredictionService(db, spec=SPEC, max_wait=0.1)
        thread = ServiceThread(service)
        host, port = thread.start()
        pool = ThreadPoolExecutor(1)
        try:
            client = ServiceClient(host, port)
            inflight = pool.submit(client.predict, **request)
            while service.jobs.inflight == 0 and not inflight.done():
                pass  # busy-wait: the request has reached admission
            thread.drain(grace=30.0)
            record = inflight.result(timeout=30)
        finally:
            pool.shutdown(wait=False)
            thread.stop()
        # The admitted request got its full, correct response...
        assert record["times"] == direct_jacobi(db, request).times
        # ...and the listener is gone: new connections are refused.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(host, port, timeout=2)
            try:
                conn.request("GET", "/healthz")
                conn.getresponse()
            finally:
                conn.close()


# -- loadgen resilience (acceptance: no malformed responses) -------------------
class TestLoadGeneratorRetries:
    @pytest.mark.slow
    def test_retries_mask_backpressure(self, db):
        service = PredictionService(
            db, spec=SPEC, queue_limit=1, max_wait=0.1, caching=False,
            dedup=False,
        )
        with ServiceThread(service) as thread:
            host, port = thread.address
            gen = LoadGenerator(
                host, port,
                lambda seq: jacobi_request(seed=seq % 4),
                concurrency=4,
                retry=RetryPolicy(retries=4, base=0.05, jitter=0.5, seed=0),
            )
            result = gen.run(total_requests=8)
        summary = result.summary()
        assert summary["errors"] == 0
        assert summary["retries"] > 0
        # With retries every logical request eventually succeeded.
        assert summary["status_counts"].keys() == {"200"}
