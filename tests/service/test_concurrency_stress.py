"""Concurrency stress tests for singleflight + micro-batcher.

The funnel's coalescing contract under load: however many concurrent
``/predict`` requests arrive for the same content key, the engine
evaluates that key **exactly once** (singleflight elects one leader;
followers share its future; later arrivals hit the cache), every
caller still gets a 200 with the key's bit-identical ``times``, and
nothing leaks -- no in-flight singleflight entries left behind, no
futures whose exceptions are never retrieved.

Two drivers: an asyncio variant where interleaving is adversarially
shuffled but deterministic (seeded), and a threaded HTTP variant that
hammers a live ``ServiceThread`` through real sockets.
"""

import asyncio
import gc
import random
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.service import PredictionService, ServiceClient, ServiceThread
from repro.simnet import perseus

from .test_service_e2e import jacobi_request

pytestmark = pytest.mark.service

SPEC = perseus(16)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def _count_evaluations(service) -> Counter:
    """Wrap the batcher's evaluator to count engine calls per key.

    The batcher holds the only reference that reaches the engine, so
    every path that actually evaluates -- batched or unbatched -- is
    counted; cache hits and singleflight followers never get here.
    """
    counts = Counter()
    inner = service.batcher._evaluate

    def counting(reqs):
        for req in reqs:
            counts[req.key(service.db_fingerprint)] += 1
        return inner(reqs)

    service.batcher._evaluate = counting
    return counts


class TestAsyncStress:
    """48 interleaved tasks over 6 keys on one event loop."""

    def test_exactly_once_evaluation_per_key(self, db):
        n_keys, n_tasks = 6, 48
        service = PredictionService(db, spec=SPEC, queue_limit=n_tasks)
        counts = _count_evaluations(service)
        requests = [
            jacobi_request(seed=i % n_keys) for i in range(n_tasks)
        ]
        random.Random(2026).shuffle(requests)

        async def main():
            loop_errors = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, ctx: loop_errors.append(ctx)
            )
            try:
                results = await asyncio.gather(
                    *(service.handle_predict(r) for r in requests)
                )
            finally:
                service.close()
            # Collect any resolved-but-unawaited futures now, while the
            # exception handler is still ours: a future whose exception
            # is never retrieved reports through it at GC time.
            gc.collect()
            await asyncio.sleep(0)
            return results, loop_errors

        results, loop_errors = asyncio.run(main())
        assert loop_errors == []
        assert [status for status, _h, _d in results] == [200] * n_tasks
        # Exactly-once: one engine evaluation per distinct key, total.
        assert len(counts) == n_keys
        assert set(counts.values()) == {1}
        # Every caller of a key saw the same bit-identical answer.
        by_seed = {}
        for _status, _headers, doc in results:
            times = by_seed.setdefault(doc["seed"], doc["times"])
            assert doc["times"] == times
        assert len(by_seed) == n_keys
        # Nothing left in flight once the dust settles.
        assert service.dedup.inflight == 0
        assert service.metrics.counter("repro_singleflight_leads_total") >= 1

    def test_follower_counts_add_up(self, db):
        """leaders + followers + cache hits account for every request."""
        n_keys, n_tasks = 3, 24
        service = PredictionService(db, spec=SPEC, queue_limit=n_tasks)
        counts = _count_evaluations(service)
        requests = [jacobi_request(seed=i % n_keys) for i in range(n_tasks)]

        async def main():
            try:
                return await asyncio.gather(
                    *(service.handle_predict(r) for r in requests)
                )
            finally:
                service.close()

        results = asyncio.run(main())
        assert all(status == 200 for status, _h, _d in results)
        assert sum(counts.values()) == n_keys
        m = service.metrics
        served = (
            m.counter("repro_singleflight_leads_total")
            + m.counter("repro_singleflight_hits_total")
            + m.counter("repro_cache_hits_total", tier="memory")
            + m.counter("repro_cache_hits_total", tier="disk")
        )
        assert served == n_tasks


@pytest.mark.slow
class TestThreadedHttpStress:
    """32 socket requests from 8 threads against a live server."""

    def test_exactly_once_over_real_sockets(self, db):
        n_keys, n_requests, n_threads = 4, 32, 8
        service = PredictionService(db, spec=SPEC, queue_limit=n_requests)
        counts = _count_evaluations(service)
        requests = [
            jacobi_request(seed=i % n_keys) for i in range(n_requests)
        ]
        random.Random(7).shuffle(requests)

        def fire(address, request):
            client = ServiceClient(*address)
            try:
                return client.predict(**request)
            finally:
                client.close()

        with ServiceThread(service) as thread:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                records = list(
                    pool.map(lambda r: fire(thread.address, r), requests)
                )

        assert len(records) == n_requests
        # Exactly-once per key, however the requests raced.
        assert sum(counts.values()) == n_keys
        assert set(counts.values()) == {1}
        by_seed = {}
        for record in records:
            times = by_seed.setdefault(record["seed"], record["times"])
            assert record["times"] == times
        assert len(by_seed) == n_keys
        assert service.dedup.inflight == 0
