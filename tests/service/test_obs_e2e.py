"""End-to-end tests for tracing and per-phase profiling in the funnel.

The observability tentpole's contract: (1) a traced ``POST /predict``
is **bit-identical** to an untraced one (spans observe wall clocks
only, never the seeded RNG streams); (2) a cold request's trace shows
every funnel stage -- admission, dedup, cache, batch, engine -- with
the engine span subdivided into sweep/match/sample buckets; (3) traces
propagate over the ``X-Repro-Trace`` header and export via
``GET /trace``; (4) stage durations land in per-stage Prometheus
histograms next to the queue-depth and batch-occupancy gauges; and (5)
``--log-json`` emits one structured line per request.
"""

import io
import json

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.obs import Tracer
from repro.service import PredictionService, ServiceClient, ServiceThread
from repro.simnet import perseus

from .test_service_e2e import (
    direct_jacobi,
    jacobi_request,
    run_service,
    serve,
)

pytestmark = pytest.mark.service

SPEC = perseus(16)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


class TestTracedBitIdentity:
    """Tracing must not perturb the reproducibility contract."""

    @pytest.mark.parametrize("vector_runs", [True, False])
    def test_traced_equals_untraced_and_direct(self, db, vector_runs):
        request = jacobi_request(vector_runs=vector_runs, runs=4)
        with serve(db) as (_svc, client):
            untraced = client.predict(**request)
        with serve(db, tracer=Tracer()) as (_svc, client):
            traced = client.predict(**request)
        assert traced["times"] == untraced["times"]
        direct = direct_jacobi(db, request)
        assert traced["times"] == direct.times
        assert traced["engine"]["vector_runs"] is vector_runs

    def test_untraced_service_has_no_trace_surface(self, db):
        async def scenario(service):
            status, headers, _doc = await service.handle_predict(
                jacobi_request()
            )
            return status, headers

        status, headers = run_service(db, scenario)
        assert status == 200
        assert "X-Repro-Trace" not in headers


class TestTraceStages:
    def test_cold_request_traces_every_funnel_stage(self, db):
        tracer = Tracer()

        async def scenario(service):
            status, headers, _doc = await service.handle_predict(
                jacobi_request(), {"x-repro-trace": "stage-probe"}
            )
            return status, headers

        status, headers = run_service(db, scenario, tracer=tracer)
        assert status == 200
        assert headers["X-Repro-Trace"] == "stage-probe"
        doc = tracer.get("stage-probe")
        assert doc is not None
        names = [s["name"] for s in doc["spans"]]
        # The acceptance bar: at least five distinct funnel stages.
        for stage in ("admission", "dedup", "cache", "batch", "engine",
                      "request"):
            assert stage in names, f"missing stage {stage!r} in {names}"
        assert len(set(names)) >= 5
        # Engine time is subdivided into the PEVPM-style phase buckets.
        for phase in ("engine.sweep", "engine.match", "engine.sample",
                      "engine.serialize"):
            assert phase in names, f"missing phase {phase!r} in {names}"
        spans = {s["name"]: s for s in doc["spans"]}
        assert spans["cache"]["attrs"]["tier"] == "miss"
        assert spans["dedup"]["attrs"]["role"] == "leader"
        assert spans["admission"]["attrs"]["status"] == "admitted"
        assert spans["engine"]["attrs"]["batch_size"] == 1
        assert spans["request"]["attrs"]["served_from"] == "engine"
        # Synthetic phase children nest under the engine span and stay
        # within its envelope.
        engine = spans["engine"]
        sweep = spans["engine.sweep"]
        assert sweep["parent_id"] == engine["span_id"]
        assert sweep["attrs"]["synthetic"] is True
        assert sweep["start_ms"] >= engine["start_ms"] - 1e-6
        phase_total = sum(
            spans[p]["duration_ms"]
            for p in ("engine.sweep", "engine.match", "engine.sample",
                      "engine.serialize")
        )
        assert phase_total <= engine["duration_ms"] + 1e-3

    def test_cache_hit_trace_shows_tier(self, db):
        tracer = Tracer()

        async def scenario(service):
            await service.handle_predict(
                jacobi_request(), {"x-repro-trace": "warm-1"}
            )
            status, _h, doc = await service.handle_predict(
                jacobi_request(), {"x-repro-trace": "warm-2"}
            )
            return status, doc

        status, doc = run_service(db, scenario, tracer=tracer)
        assert status == 200
        assert doc["served_from"] == "cache"
        warm = tracer.get("warm-2")
        spans = {s["name"]: s for s in warm["spans"]}
        assert spans["cache"]["attrs"]["tier"] == "memory"
        # A cache hit never reaches the engine.
        assert "engine" not in spans
        assert spans["request"]["attrs"]["served_from"] == "cache"

    def test_hostile_header_value_falls_back_to_generated_id(self, db):
        tracer = Tracer()

        async def scenario(service):
            _s, headers, _d = await service.handle_predict(
                jacobi_request(), {"x-repro-trace": "bad id\nwith junk"}
            )
            return headers

        headers = run_service(db, scenario, tracer=tracer)
        assigned = headers["X-Repro-Trace"]
        assert assigned != "bad id\nwith junk"
        assert tracer.get(assigned) is not None


class TestTraceHttpSurface:
    def test_header_propagation_and_trace_endpoint(self, db):
        tracer = Tracer()
        service = PredictionService(db, spec=SPEC, tracer=tracer)
        with ServiceThread(service) as thread:
            host, port = thread.address
            client = ServiceClient(host, port, trace=True)
            try:
                record = client.predict(**jacobi_request())
                assert record["served_from"] == "engine"
                tid = client.last_trace_id
                assert tid is not None
                doc = client.trace(tid)
                assert doc["trace_id"] == tid
                names = {s["name"] for s in doc["spans"]}
                assert {"cache", "engine", "request"} <= names
                listing = client.trace(limit=10)
                assert tid in [t["trace_id"] for t in listing["traces"]]
                # /metrics over HTTP carries the stage histograms and
                # the live gauges the trace fed.
                text = client.metrics_text()
                assert 'repro_stage_seconds_bucket{stage="engine"' in text
                assert 'repro_stage_seconds_bucket{stage="engine.sweep"' in text
                assert "repro_queue_depth" in text
                assert "repro_batch_occupancy" in text
                assert "repro_trace_buffer_traces" in text
            finally:
                client.close()

    def test_trace_endpoint_404_when_tracing_disabled(self, db):
        with serve(db) as (_svc, client):
            from repro.service import ServiceError

            with pytest.raises(ServiceError) as err:
                client.trace(limit=1)
            assert err.value.status == 404

    def test_unknown_trace_id_is_404(self, db):
        with serve(db, tracer=Tracer()) as (_svc, client):
            from repro.service import ServiceError

            with pytest.raises(ServiceError) as err:
                client.trace("no-such-trace")
            assert err.value.status == 404


class TestStageMetrics:
    def test_stage_histograms_and_gauges_after_traced_request(self, db):
        tracer = Tracer()

        async def scenario(service):
            await service.handle_predict(jacobi_request())
            return service.metrics

        metrics = run_service(db, scenario, tracer=tracer)
        for stage in ("admission", "dedup", "cache", "batch", "engine",
                      "engine.sweep", "engine.sample", "request"):
            assert metrics.stage_count(stage) >= 1, stage
        assert metrics.gauge("repro_queue_depth") == 0
        assert metrics.gauge("repro_batch_occupancy") == 1
        snap = metrics.snapshot()
        assert snap["stage_seconds"]["engine"]["count"] >= 1
        assert snap["gauges"]["repro_queue_depth"] == 0
        text = metrics.render_prometheus()
        assert "# TYPE repro_stage_seconds histogram" in text
        assert 'repro_stage_seconds_bucket{stage="engine",le="+Inf"}' in text
        assert "# TYPE repro_queue_depth gauge" in text

    def test_disabled_tracer_records_no_stages(self, db):
        async def scenario(service):
            await service.handle_predict(jacobi_request())
            return service.metrics

        metrics = run_service(db, scenario)
        assert metrics.stage_count("engine") == 0
        assert metrics.snapshot()["stage_seconds"] == {}


class TestJsonLogging:
    def test_one_line_per_request_with_correlation_fields(self, db):
        stream = io.StringIO()
        tracer = Tracer()

        async def scenario(service):
            await service.handle_predict(
                jacobi_request(), {"x-repro-trace": "log-probe"}
            )
            await service.handle_predict(
                jacobi_request(),
                {"x-repro-trace": "log-probe-2", "x-repro-attempt": "2"},
            )
            await service.handle_predict({"model": "nope"})

        run_service(
            db, scenario, tracer=tracer, log_json=True, log_stream=stream
        )
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert len(lines) == 3
        cold, warm, bad = lines
        assert cold["event"] == "predict"
        assert cold["trace_id"] == "log-probe"
        assert cold["status"] == 200
        assert cold["served_from"] == "engine"
        assert cold["cache_tier"] == "miss"
        assert cold["batch_id"] >= 1
        assert "attempt" not in cold
        assert warm["served_from"] == "cache"
        assert warm["cache_tier"] == "memory"
        assert warm["attempt"] == 2
        assert "batch_id" not in warm
        assert bad["status"] == 400
        assert "error" in bad

    def test_log_json_without_tracer_still_logs(self, db):
        stream = io.StringIO()

        async def scenario(service):
            await service.handle_predict(jacobi_request())

        run_service(db, scenario, log_json=True, log_stream=stream)
        (line,) = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert line["status"] == 200
        assert line["served_from"] == "engine"
        assert "trace_id" not in line
