"""The model catalogue and the imported-program surface of the service.

* ``GET /models`` lists every registered workload (including the
  collectives-era halo/amg and the ``imported`` pseudo-model) with its
  defaulted parameters; unknown names are a 404 naming the known set.
* ``POST /programs`` imports a trace, after which ``model=imported``
  predictions are byte-identical to a direct :func:`repro.pevpm.predict`
  of the replayed program; malformed traces are a 422 taxonomy
  (structure, conservation, deadlock) that never reaches the evaluator.
* Imported refs participate in shard routing: the program fingerprint
  folds into the routing key, so a router pins each program's requests
  to one shard (stub-backend test, same harness as test_sharding).
"""

import asyncio
import json
from contextlib import contextmanager

import pytest

from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.registry import TenantManager, TenantQuota
from repro.registry.store import RegistryStore
from repro.service import (
    Backend,
    HashRing,
    MODELS,
    PredictionService,
    ServiceClient,
    ServiceError,
    ServiceThread,
    ShardRouter,
    routing_key_for,
)
from repro.simnet import perseus
from repro.trace_import import sample_trace
from .test_sharding import StubShard, _send

pytestmark = pytest.mark.service

SPEC = perseus(16)
RING = sample_trace(nprocs=4)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


@contextmanager
def serve(db, **kwargs):
    service = PredictionService(db, spec=SPEC, **kwargs)
    with ServiceThread(service) as thread:
        host, port = thread.address
        client = ServiceClient(host, port)
        try:
            yield service, client
        finally:
            client.close()


class TestModelCatalogue:
    def test_listing_names_every_registered_workload(self, db):
        with serve(db) as (_service, client):
            doc = client.models()
        assert set(doc["models"]) == set(MODELS)
        for name in ("halo", "amg", "imported"):
            assert name in doc["models"]
        assert doc["models"]["halo"]["defaults"]["nx"] == 64

    def test_single_model_and_unknown_404(self, db):
        with serve(db) as (_service, client):
            halo = client.models("halo")
            assert halo["defaults"]["dims"] == 2
            with pytest.raises(ServiceError) as err:
                client.models("conjugate-gradient")
            assert err.value.status == 404
            assert "halo" in str(err.value)

    def test_unknown_model_on_predict_is_a_request_error(self, db):
        with serve(db) as (_service, client):
            status, _headers, doc = client.predict_raw(
                {"model": "conjugate-gradient", "nprocs": 4}
            )
        assert status == 400
        assert "model" in doc["error"]


class TestImportedPrograms:
    def test_upload_predict_bit_identical_to_direct(self, db):
        with serve(db) as (_service, client):
            meta = client.program_add(RING.to_jsonl(), name="ring4")
            assert meta["fingerprint"] == RING.fingerprint
            record = client.predict(
                model="imported",
                model_params={"program": meta["fingerprint"]},
                nprocs=4,
                runs=4,
                seed=9,
            )
        direct = predict(
            RING.model(),
            4,
            timing_from_db(db, mode="distribution", nprocs=4),
            runs=4,
            seed=9,
            vector_runs=True,
        )
        assert record["times"] == direct.times

    def test_wrong_nprocs_and_unknown_ref(self, db):
        with serve(db) as (_service, client):
            meta = client.program_add(RING.to_jsonl())
            status, _h, doc = client.predict_raw({
                "model": "imported",
                "model_params": {"program": meta["fingerprint"]},
                "nprocs": 8,
            })
            assert status == 400 and "4 rank" in doc["error"]
            status, _h, doc = client.predict_raw({
                "model": "imported",
                "model_params": {"program": "0" * 64},
                "nprocs": 4,
            })
            assert status == 404

    def test_predict_without_ref_is_a_request_error(self, db):
        with serve(db) as (_service, client):
            status, _h, doc = client.predict_raw(
                {"model": "imported", "nprocs": 4}
            )
        assert status == 400
        assert "program" in doc["error"]

    def test_export_reimports_to_same_fingerprint(self, db):
        with serve(db) as (_service, client):
            meta = client.program_add(RING.to_jsonl(), name="ring4")
            doc = client.program_get(meta["fingerprint"])
            again = client.program_add(doc["trace"])
            assert again["fingerprint"] == meta["fingerprint"]
            listing = client.programs_list()
        assert meta["fingerprint"] in {
            entry["fingerprint"] for entry in listing["programs"]
        }

    def test_delete_enforces_tenancy(self, db):
        with serve(db) as (_service, client):
            host, port = client.host, client.port
            alice = ServiceClient(host, port, tenant="alice")
            bob = ServiceClient(host, port, tenant="bob")
            try:
                meta = alice.program_add(RING.to_jsonl())
                with pytest.raises(ServiceError) as err:
                    bob.program_delete(meta["fingerprint"])
                assert err.value.status == 403
                alice.program_delete(meta["fingerprint"])
                with pytest.raises(ServiceError) as err:
                    alice.program_get(meta["fingerprint"])
                assert err.value.status == 404
            finally:
                alice.close()
                bob.close()

    def test_storage_quota_429(self, db):
        registry = RegistryStore()
        tenants = TenantManager(registry, TenantQuota(max_bytes=64))
        with serve(db, registry=registry, tenants=tenants) as (_s, client):
            status, _h, doc = client._request(
                "POST", "/programs", {"trace": RING.to_jsonl()},
                idempotent=False,
            )
        assert status == 429


class TestTraceRejection:
    """The 422 taxonomy: the trace importer's diagnosis travels to the
    client verbatim, and nothing reaches the evaluator."""

    def reject(self, client, text):
        with pytest.raises(ServiceError) as err:
            client.program_add(text)
        assert err.value.status == 422
        assert err.value.doc["error"] == "invalid trace"
        return err.value.doc["detail"]

    def test_unmatched_send(self, db):
        with serve(db) as (_service, client):
            detail = self.reject(client, "NPROCS 2\n0 MPI_SEND 1 8\n")
        assert "unmatched send" in detail

    def test_unknown_rank(self, db):
        with serve(db) as (_service, client):
            detail = self.reject(client, "NPROCS 2\n0 MPI_SEND 7 8\n7 MPI_RECV 0\n")
        assert "rank" in detail

    def test_deadlock_names_ranks_and_ops(self, db):
        text = (
            "NPROCS 2\n"
            "0 MPI_RECV 1\n1 MPI_RECV 0\n"
            "0 MPI_SEND 1 8\n1 MPI_SEND 0 8\n"
        )
        with serve(db) as (_service, client):
            detail = self.reject(client, text)
        assert "deadlock" in detail
        assert "at op 0" in detail

    def test_rejections_counted(self, db):
        with serve(db) as (service, client):
            self.reject(client, "NPROCS 2\n0 MPI_SEND 1 8\n")
            assert (
                service.metrics.counter("repro_trace_rejections_total") == 1
            )


class TestShardAffinity:
    def test_program_ref_folds_into_routing_key(self):
        other = sample_trace(nprocs=4, hops=3)
        body = lambda ref: {
            "model": "imported",
            "model_params": {"program": ref},
            "nprocs": 4,
        }
        a = routing_key_for(body(RING.fingerprint))
        b = routing_key_for(body(other.fingerprint))
        assert a is not None and b is not None
        assert a != b
        assert a == routing_key_for(body(RING.fingerprint))

    def test_router_pins_each_program_to_one_shard(self):
        """Repeated /predicts for one imported program land on the ring
        owner; different programs spread (stub shards echo their id)."""

        async def scenario(router, shards, _downs):
            ring = HashRing(range(len(shards)))
            refs = [
                sample_trace(nprocs=4, hops=h + 1).fingerprint
                for h in range(4)
            ]
            for ref in refs:
                body = {
                    "model": "imported",
                    "model_params": {"program": ref},
                    "nprocs": 4,
                }
                owner = ring.owner(routing_key_for(body))
                for _ in range(3):
                    status, _h, doc = await _send(
                        "127.0.0.1", router.port, "POST", "/predict", body
                    )
                    assert status == 200
                    assert doc["shard_id"] == owner

        from .test_sharding import _run_router_scenario

        _run_router_scenario(scenario)
