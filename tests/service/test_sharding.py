"""The sharded serving tier: ring, router, supervisor.

Three layers, tested bottom-up:

* :class:`HashRing` -- the consistent-hash properties the tier's
  correctness rests on: stable ownership, removal remaps *only* the
  removed node's keys, and each key's failover owner is exactly
  ``owners(key)[1]``;
* :class:`ShardRouter` -- driven against in-loop stub backends where
  failure injection is deterministic: affinity, transport-failure
  failover (plus ``on_down``), the 503-retry against the failover
  owner (circuit-breaker state is per-process; one shard shedding must
  not bounce the client), and the /metrics and /healthz aggregations;
* :class:`Supervisor` -- the real thing: spawned shard processes over
  a shared cache plane, bit-identity through the router, through every
  individual shard, and to a direct ``predict(...)`` call -- including
  while a shard is SIGKILLed mid-run and after its restart -- and the
  rolling drain.
"""

import asyncio
import json
import threading
import time
from collections import Counter

import pytest

from repro.apps.jacobi import parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.service import (
    Backend,
    HashRing,
    PredictRequest,
    ServiceClient,
    ServiceMetrics,
    ShardRouter,
    Supervisor,
    routing_key_for,
)
from repro.service.sharding import ring_hash
from repro.simnet import perseus

pytestmark = pytest.mark.service

SPEC = perseus(16)
ITER = 10  # keep spawned-shard evaluations fast


# -- the ring -----------------------------------------------------------------


def test_ring_hash_is_stable_and_seed_independent():
    # blake2b, not hash(): the value must be identical in every process.
    assert ring_hash("shard-0") == ring_hash("shard-0")
    assert ring_hash("shard-0") != ring_hash("shard-1")
    assert 0 <= ring_hash("x") < 2 ** 64


def test_ring_ownership_is_stable_and_spread():
    ring = HashRing(range(4))
    keys = [f"key-{i}" for i in range(2000)]
    owners = {key: ring.owner(key) for key in keys}
    # Deterministic: a second identical ring agrees on every key.
    again = HashRing(range(4))
    assert all(again.owner(key) == owners[key] for key in keys)
    counts = Counter(owners.values())
    assert set(counts) == {0, 1, 2, 3}
    # Virtual nodes keep the spread within a loose band (no shard owns
    # more than half or less than a twentieth of the keyspace).
    assert max(counts.values()) < 1000
    assert min(counts.values()) > 100


def test_ring_removal_remaps_only_owned_keys():
    ring = HashRing(range(4))
    keys = [f"key-{i}" for i in range(2000)]
    before = {key: ring.owner(key) for key in keys}
    prefs = {key: ring.owners(key) for key in keys}
    ring.remove(2)
    for key in keys:
        if before[key] == 2:
            # A removed node's keys fall to their failover owner...
            assert ring.owner(key) == prefs[key][1]
        else:
            # ...and nobody else's key moves at all.
            assert ring.owner(key) == before[key]
    # Re-adding snaps every key back to its original owner.
    ring.add(2)
    assert all(ring.owner(key) == before[key] for key in keys)


def test_ring_owners_preference_order():
    ring = HashRing(range(4))
    pref = ring.owners("some-key")
    assert sorted(pref) == [0, 1, 2, 3]  # all distinct members, once
    assert ring.owners("some-key", count=2) == pref[:2]
    assert ring.owner("some-key") == pref[0]


def test_ring_edge_cases():
    ring = HashRing()
    assert len(ring) == 0
    assert ring.owners("k") == []
    with pytest.raises(LookupError):
        ring.owner("k")
    ring.add("a")
    ring.add("a")  # idempotent
    assert len(ring) == 1 and "a" in ring
    assert ring.owner("anything") == "a"
    ring.remove("missing")  # idempotent
    ring.remove("a")
    assert len(ring) == 0
    with pytest.raises(ValueError):
        HashRing(replicas=0)


# -- routing keys -------------------------------------------------------------


def _request(**overrides) -> dict:
    request = {
        "model": "jacobi",
        "model_params": {"iterations": ITER},
        "nprocs": 4,
        "runs": 4,
        "seed": 7,
    }
    request.update(overrides)
    return request


def test_routing_key_is_canonical_and_db_free():
    # Defaults filled in: a sparse and an explicit request share a key.
    sparse = PredictRequest.from_dict({"model": "fft", "nprocs": 4})
    explicit = PredictRequest.from_dict(
        {"model": "fft", "nprocs": 4, "runs": 16, "seed": 0, "ppn": 1}
    )
    assert sparse.routing_key() == explicit.routing_key()
    # Unlike the cache key, no db fingerprint is involved -- but the
    # cache key for one db still disambiguates distinct dbs.
    assert sparse.key("db-a") != sparse.key("db-b")
    assert sparse.routing_key() != sparse.key("db-a")
    # Any field that changes the numbers changes the routing key.
    other = PredictRequest.from_dict({"model": "fft", "nprocs": 4, "seed": 1})
    assert other.routing_key() != sparse.routing_key()


def test_routing_key_shards_by_db_ref():
    # Tenant traffic for different registry dbs must shard separately:
    # the ref (not its resolution) enters the routing key, so routing
    # stays stable across alias promotions.
    plain = PredictRequest.from_dict({"model": "fft", "nprocs": 4})
    on_prod = PredictRequest.from_dict(
        {"model": "fft", "nprocs": 4, "db": "prod"}
    )
    on_v2 = PredictRequest.from_dict(
        {"model": "fft", "nprocs": 4, "db": "perseus@v2"}
    )
    keys = {plain.routing_key(), on_prod.routing_key(), on_v2.routing_key()}
    assert len(keys) == 3
    # Same ref -> same key (affinity holds for the tenant's traffic).
    again = PredictRequest.from_dict(
        {"model": "fft", "nprocs": 4, "db": "prod"}
    )
    assert again.routing_key() == on_prod.routing_key()
    # And routing_key_for sees the ref too.
    assert routing_key_for(
        {"model": "fft", "nprocs": 4, "db": "prod"}
    ) == on_prod.routing_key()


def test_routing_key_for_handles_garbage():
    assert routing_key_for({"model": "jacobi", "nprocs": 2}) is not None
    assert routing_key_for({"model": "nope", "nprocs": 2}) is None
    assert routing_key_for("not an object") is None
    assert routing_key_for({}) is None


# -- shard_id metrics labels --------------------------------------------------


def test_constant_labels_stamp_every_series():
    metrics = ServiceMetrics(constant_labels={"shard_id": "3"})
    metrics.inc("repro_requests_total", endpoint="/predict")
    metrics.set_gauge("repro_queue_depth", 2.0)
    metrics.observe_stage("engine", 0.01)
    metrics.observe("/predict", 0.02)
    text = metrics.render_prometheus()
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        assert 'shard_id="3"' in line, line
    # Recording/query API is unaffected by the rendering labels.
    assert metrics.counter("repro_requests_total", endpoint="/predict") == 1.0


def test_no_constant_labels_renders_identically():
    plain, labelled = ServiceMetrics(), ServiceMetrics(constant_labels=None)
    for metrics in (plain, labelled):
        metrics.inc("repro_requests_total", endpoint="/predict")
        metrics.observe_stage("engine", 0.01)
    assert plain.render_prometheus() == labelled.render_prometheus()
    assert "shard_id" not in plain.render_prometheus()


# -- the router, against stub backends ---------------------------------------


class StubShard:
    """An in-loop HTTP backend with scriptable behaviour."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.requests: list[str] = []
        self.shed_next = 0  # answer this many /predicts with 503
        self.server = None

    async def start(self) -> int:
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _handle(self, reader, writer):
        from repro.service.server import (
            read_http_request,
            render_http_response,
        )

        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, _headers, body = request
                self.requests.append(target)
                path = target.split("?", 1)[0]
                if path == "/predict" and self.shed_next > 0:
                    self.shed_next -= 1
                    doc = {"error": "circuit breaker open"}
                    status = 503
                elif path == "/healthz":
                    doc = {"status": "ok", "shard_id": self.shard_id}
                    status = 200
                elif path == "/metrics":
                    writer.write(
                        render_http_response(
                            200,
                            (
                                "# TYPE repro_requests_total counter\n"
                                f'repro_requests_total{{shard_id='
                                f'"{self.shard_id}"}} 1\n'
                            ).encode(),
                            "text/plain; version=0.0.4",
                        )
                    )
                    await writer.drain()
                    continue
                else:
                    doc = {
                        "shard_id": self.shard_id,
                        "echo": json.loads(body) if body else None,
                    }
                    status = 200
                writer.write(
                    render_http_response(
                        status, json.dumps(doc).encode(), "application/json"
                    )
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


async def _send(
    host: str, port: int, method: str, target: str, body: dict | None = None
):
    """One raw HTTP exchange; returns (status, headers, doc)."""
    payload = b"" if body is None else json.dumps(body).encode()
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"{method} {target} HTTP/1.1\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    raw = await reader.readexactly(int(headers.get("content-length", 0)))
    writer.close()
    if headers.get("content-type", "").startswith("application/json"):
        doc = json.loads(raw) if raw else None
    else:
        doc = raw.decode()
    return status, headers, doc


def _run_router_scenario(scenario, n_shards: int = 3):
    """Start *n_shards* stubs and a router in one loop, run *scenario*."""

    async def _main():
        shards = [StubShard(i) for i in range(n_shards)]
        backends = []
        for shard in shards:
            port = await shard.start()
            backends.append(Backend(shard.shard_id, "127.0.0.1", port))
        downs: list[int] = []
        router = ShardRouter(
            backends, backend_timeout=10.0, on_down=downs.append
        )
        await router.start()
        try:
            return await scenario(router, shards, downs)
        finally:
            await router.stop()
            for shard in shards:
                await shard.stop()

    return asyncio.run(_main())


def test_router_routes_by_key_with_affinity():
    async def scenario(router, shards, downs):
        ring = HashRing(range(len(shards)))
        for seed in range(6):
            body = _request(seed=seed)
            expected = ring.owner(routing_key_for(body))
            for _ in range(2):  # affinity: same key, same shard, twice
                status, headers, doc = await _send(
                    router.host, router.port, "POST", "/predict", body
                )
                assert status == 200
                assert doc["shard_id"] == expected
                assert headers["x-repro-shard"] == str(expected)
        assert not downs

    _run_router_scenario(scenario)


def test_router_unroutable_body_still_served():
    async def scenario(router, shards, downs):
        # Garbage that fails validation routes anywhere; the shard
        # answers (stubs echo instead of 400ing, which is fine here).
        status, _, doc = await _send(
            router.host, router.port, "POST", "/predict", {"model": "nope"}
        )
        assert status == 200 and doc["shard_id"] in (0, 1, 2)

    _run_router_scenario(scenario)


def test_router_fails_over_dead_shard_and_recovers():
    async def scenario(router, shards, downs):
        ring = HashRing(range(len(shards)))
        body = _request(seed=1)
        key = routing_key_for(body)
        owner, failover = ring.owners(key)[:2]
        await shards[owner].stop()  # dead: connections refused
        status, headers, doc = await _send(
            router.host, router.port, "POST", "/predict", body
        )
        assert status == 200
        assert doc["shard_id"] == failover  # the key's failover owner
        assert headers["x-repro-shard"] == str(failover)
        assert downs == [owner]
        assert router.metrics.counter(
            "repro_router_retries_total", reason="transport"
        ) == 1.0
        # Keys owned by live shards are untouched by the failover.
        for seed in range(8):
            other = _request(seed=seed)
            expected = ring.owner(routing_key_for(other))
            if expected == owner:
                continue
            _, _, doc = await _send(
                router.host, router.port, "POST", "/predict", other
            )
            assert doc["shard_id"] == expected
        # Supervisor restarted it: mark_up restores the range.
        port = await shards[owner].start()
        router.backends[owner].port = port
        router.mark_up(owner)
        _, _, doc = await _send(
            router.host, router.port, "POST", "/predict", body
        )
        assert doc["shard_id"] == owner

    _run_router_scenario(scenario)


def test_router_retries_503_on_failover_owner():
    async def scenario(router, shards, downs):
        ring = HashRing(range(len(shards)))
        body = _request(seed=2)
        owner, failover = ring.owners(routing_key_for(body))[:2]
        shards[owner].shed_next = 1  # per-process breaker: one 503
        status, _, doc = await _send(
            router.host, router.port, "POST", "/predict", body
        )
        # The client never sees the 503: the failover owner served it.
        assert status == 200
        assert doc["shard_id"] == failover
        assert router.metrics.counter(
            "repro_router_failovers_total", reason="503"
        ) == 1.0
        assert not downs  # shedding is not death

        # Both the owner and its failover shedding: the 503 surfaces.
        shards[owner].shed_next = 1
        shards[failover].shed_next = 1
        status, _, doc = await _send(
            router.host, router.port, "POST", "/predict", body
        )
        assert status == 503

    _run_router_scenario(scenario)


def test_router_all_shards_down_is_503():
    async def scenario(router, shards, downs):
        for shard in shards:
            await shard.stop()
        status, _, doc = await _send(
            router.host, router.port, "POST", "/predict", _request()
        )
        assert status == 503
        assert doc["error"] == "no shards available"
        assert sorted(downs) == [0, 1, 2]

    _run_router_scenario(scenario)


def test_router_healthz_and_metrics_aggregate():
    async def scenario(router, shards, downs):
        status, _, doc = await _send(
            router.host, router.port, "GET", "/healthz"
        )
        assert status == 200
        assert doc["router"] is True and doc["shards_up"] == 3
        assert doc["shards"]["1"]["shard_id"] == 1

        await shards[2].stop()
        router.mark_down(2)
        status, _, doc = await _send(
            router.host, router.port, "GET", "/healthz"
        )
        assert status == 200  # degraded but serving
        assert doc["shards_up"] == 2
        assert doc["shards"]["2"] == {"status": "down"}

        status, _, text = await _send(
            router.host, router.port, "GET", "/metrics"
        )
        assert status == 200
        # One TYPE header even though both live shards exposed it.
        assert text.count("# TYPE repro_requests_total counter") == 1
        assert 'repro_requests_total{shard_id="0"} 1' in text
        assert 'repro_requests_total{shard_id="1"} 1' in text
        assert 'shard_id="2"' not in text
        # The router's own series carry shard_id="router".
        assert 'repro_router_backends_up{shard_id="router"} 2' in text

    _run_router_scenario(scenario)


def test_router_draining_sheds():
    async def scenario(router, shards, downs):
        router.draining = True
        status, _, doc = await _send(
            router.host, router.port, "POST", "/predict", _request()
        )
        assert status == 503 and "draining" in doc["error"]

    _run_router_scenario(scenario)


def test_router_shard_pin_query():
    async def scenario(router, shards, downs):
        status, _, doc = await _send(
            router.host, router.port, "GET", "/trace?shard=1"
        )
        assert status == 200 and doc["shard_id"] == 1
        status, _, doc = await _send(
            router.host, router.port, "GET", "/trace?shard=9"
        )
        assert status == 503

    _run_router_scenario(scenario)


# -- the real thing: spawned shards ------------------------------------------


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def direct_jacobi(db, request: dict):
    params = {
        "iterations": request["model_params"]["iterations"],
        "xsize": 256,
        "serial_time": SPEC.jacobi_serial_time,
    }
    return predict(
        parse_jacobi(),
        request["nprocs"],
        timing_from_db(db, mode="distribution", nprocs=request["nprocs"]),
        runs=request["runs"],
        seed=request["seed"],
        params=params,
        vector_runs=True,
    )


@pytest.mark.slow
def test_sharded_deployment_end_to_end(db, tmp_path):
    """One supervised 2-shard deployment, exercised end to end: the
    reproducibility contract through every path, shard death and
    restart under load, the shared cache plane, and the rolling drain."""
    supervisor = Supervisor(
        db, 2, cache_dir=tmp_path / "cache", tracing=False, drain_grace=5.0
    )
    try:
        host, port = supervisor.start()
        client = ServiceClient(host, port, timeout=60.0)

        # Bit-identity: router == each individual shard == direct call.
        request = _request(seed=3)
        expected = direct_jacobi(db, request).times
        via_router = client.predict(**request)
        assert via_router["times"] == expected
        served_by = None
        for shard in range(2):
            shard_client = ServiceClient(
                *supervisor.shard_address(shard), timeout=60.0
            )
            doc = shard_client.predict(**request)
            assert doc["times"] == expected
            health = shard_client.healthz()
            assert health["shard_id"] == shard
            # Shared cache plane: whichever shard did not own the key
            # still serves it -- from the shared disk tier, not a
            # second evaluation.
            if doc["served_from"] != "engine":
                served_by = shard
            shard_client.close()
        assert served_by is not None

        # Per-shard Prometheus series, aggregated at the router.
        text = client.metrics_text()
        assert 'shard_id="0"' in text and 'shard_id="1"' in text
        assert text.count("# TYPE repro_requests_total counter") == 1

        # Kill one shard mid-run: the keep-driving thread must see
        # nothing but 200s (its keys fail over), and every response
        # must stay bit-identical.
        failures: list = []
        stop = threading.Event()

        def keep_driving():
            drive = ServiceClient(host, port, timeout=60.0)
            expected_times = {}
            sequence = 0
            while not stop.is_set():
                # Seeds 0..7 deterministically cover both shards' hash
                # ranges (4 and 6 are owned by shard 0, the one killed).
                req = _request(seed=sequence % 8)
                try:
                    doc = drive.predict(**req)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    break
                known = expected_times.setdefault(req["seed"], doc["times"])
                if doc["times"] != known:
                    failures.append((req["seed"], doc["times"], known))
                    break
                sequence += 1
            drive.close()

        driver = threading.Thread(target=keep_driving, daemon=True)
        driver.start()
        time.sleep(0.5)
        supervisor.kill_shard(0)
        # Drive through the death + failover + restart window.
        deadline = time.time() + 90.0
        while supervisor.restarts < 1 and time.time() < deadline:
            time.sleep(0.2)
        assert supervisor.restarts == 1
        while time.time() < deadline:
            if client.healthz().get("shards_up") == 2:
                break
            time.sleep(0.3)
        assert client.healthz()["shards_up"] == 2
        time.sleep(0.5)
        stop.set()
        driver.join(timeout=30.0)
        assert not failures, failures

        # The restarted shard serves its range bit-identically again.
        shard_client = ServiceClient(
            *supervisor.shard_address(0), timeout=60.0
        )
        assert shard_client.predict(**request)["times"] == expected
        shard_client.close()
        client.close()
    finally:
        supervisor.rolling_drain()
    assert not supervisor.procs  # every shard exited


@pytest.mark.slow
def test_supervisor_reuseport_topology(db):
    """SO_REUSEPORT mode: all shards share the public port, the kernel
    spreads connections, and served numbers keep the contract."""
    import socket as _socket

    if not hasattr(_socket, "SO_REUSEPORT"):
        pytest.skip("SO_REUSEPORT not available")
    supervisor = Supervisor(db, 2, reuse_port=True, tracing=False,
                            drain_grace=5.0)
    try:
        host, port = supervisor.start()
        assert supervisor.shard_ports == [port, port]
        assert supervisor.router_thread is None
        request = _request(seed=5)
        expected = direct_jacobi(db, request).times
        client = ServiceClient(host, port, timeout=60.0)
        for _ in range(3):
            assert client.predict(**request)["times"] == expected
        client.close()
    finally:
        supervisor.stop()
