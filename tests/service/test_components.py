"""Unit tests for the service building blocks.

Each funnel stage -- metrics, admission, singleflight, cache tiers,
micro-batcher, request schema -- is exercised in isolation here; the
end-to-end behaviour (and the reproducibility contract) is covered by
``test_service_e2e.py``.
"""

import asyncio

import pytest

from repro.pevpm.parallel import VECTOR_BATCH, PredictionCache
from repro.service import (
    JobQueue,
    MicroBatcher,
    PredictRequest,
    QueueFull,
    RequestError,
    ServiceMetrics,
    SingleFlight,
    TieredCache,
)

pytestmark = pytest.mark.service


class TestServiceMetrics:
    def test_counters_with_labels(self):
        m = ServiceMetrics()
        m.inc("repro_requests_total", endpoint="/predict")
        m.inc("repro_requests_total", endpoint="/predict")
        m.inc("repro_requests_total", endpoint="/healthz")
        assert m.counter("repro_requests_total", endpoint="/predict") == 2
        assert m.counter("repro_requests_total", endpoint="/healthz") == 1
        assert m.counter("repro_requests_total", endpoint="/nope") == 0

    def test_latency_quantiles(self):
        m = ServiceMetrics()
        for i in range(100):
            m.observe("/predict", (i + 1) / 1000)
        q = m.latency_quantiles("/predict")
        assert set(q) == {0.5, 0.9, 0.99}
        assert 0 < q[0.5] <= q[0.9] <= q[0.99] <= 0.101
        assert m.latency_quantiles("/never") == {}

    def test_reservoir_is_bounded(self):
        m = ServiceMetrics(reservoir=16)
        for i in range(100):
            m.observe("/predict", float(i))
        hist = m.latency_histogram("/predict")
        # Only the most recent 16 samples are kept.
        assert hist.min >= 84

    def test_render_prometheus(self):
        m = ServiceMetrics()
        m.inc("repro_responses_total", code="200")
        m.inc("repro_batches_total")
        m.observe("/predict", 0.01)
        text = m.render_prometheus()
        assert "# TYPE repro_responses_total counter" in text
        assert 'repro_responses_total{code="200"} 1' in text
        assert "repro_batches_total 1" in text
        assert "# TYPE repro_request_latency_seconds summary" in text
        assert 'repro_request_latency_seconds_count{endpoint="/predict"} 1' in text

    def test_snapshot(self):
        m = ServiceMetrics()
        m.inc("repro_batches_total", 3)
        m.observe("/predict", 0.5)
        snap = m.snapshot()
        assert snap["counters"]["repro_batches_total"] == 3
        assert snap["latency_seconds"]["/predict"]["count"] == 1

    def test_inc_is_thread_safe(self):
        # Counters are bumped from the evaluator thread (pool rebuilds,
        # fault hooks) concurrently with the event loop; racing unlocked
        # read-modify-writes would silently lose increments.
        import threading

        m = ServiceMetrics()
        per_thread = 5000

        def hammer():
            for _ in range(per_thread):
                m.inc("repro_pool_rebuilds_total")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("repro_pool_rebuilds_total") == 4 * per_thread


class TestJobQueue:
    def test_sheds_beyond_limit(self):
        m = ServiceMetrics()
        q = JobQueue(2, m, retry_after=0.5)
        q.acquire()
        q.acquire()
        with pytest.raises(QueueFull) as exc_info:
            q.acquire()
        assert exc_info.value.limit == 2
        assert exc_info.value.retry_after == 0.5
        assert q.inflight == 2
        assert q.peak == 2
        assert m.counter("repro_jobs_admitted_total") == 2
        assert m.counter("repro_jobs_shed_total") == 1

    def test_context_manager_releases_on_error(self):
        q = JobQueue(1, ServiceMetrics())
        with pytest.raises(RuntimeError):
            with q:
                assert q.inflight == 1
                raise RuntimeError("boom")
        assert q.inflight == 0

    def test_release_without_acquire_rejected(self):
        q = JobQueue(1, ServiceMetrics())
        with pytest.raises(RuntimeError):
            q.release()

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            JobQueue(0, ServiceMetrics())


class TestSingleFlight:
    def test_leader_and_followers_share_result(self):
        async def scenario():
            m = ServiceMetrics()
            sf = SingleFlight(m)
            leader, fut = sf.claim("k")
            follower, fut2 = sf.claim("k")
            assert leader and not follower
            assert fut is fut2
            assert sf.inflight == 1
            sf.resolve("k", 42)
            assert await fut2 == 42
            assert sf.inflight == 0
            # Key is released: the next claimant leads again.
            leader_again, _ = sf.claim("k")
            assert leader_again
            assert m.counter("repro_singleflight_hits_total") == 1
            assert m.counter("repro_singleflight_leads_total") == 2

        asyncio.run(scenario())

    def test_reject_propagates_to_followers(self):
        async def scenario():
            sf = SingleFlight(ServiceMetrics())
            _, fut = sf.claim("k")
            sf.claim("k")
            sf.reject("k", RuntimeError("engine failed"))
            with pytest.raises(RuntimeError, match="engine failed"):
                await fut

        asyncio.run(scenario())


class TestTieredCache:
    def test_lru_evicts_least_recently_used(self):
        m = ServiceMetrics()
        cache = TieredCache(2, None, m)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # touch "a": "b" becomes LRU
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert m.counter("repro_cache_evictions_total") == 1
        assert m.counter("repro_cache_misses_total") == 1
        assert m.counter("repro_cache_hits_total", tier="memory") == 3

    def test_disk_hits_promoted_to_memory(self, tmp_path):
        disk = PredictionCache(tmp_path)
        m = ServiceMetrics()
        first = TieredCache(4, disk, m)
        first.put("k", {"times": [1.0]})
        # A fresh memory tier over the same directory: first read comes
        # from disk, the second from the promoted memory entry.
        second = TieredCache(4, disk, m)
        doc = second.get("k")
        assert doc["times"] == [1.0]
        assert m.counter("repro_cache_hits_total", tier="disk") == 1
        second.get("k")
        assert m.counter("repro_cache_hits_total", tier="memory") == 1

    def test_zero_capacity_disables_memory_tier(self):
        cache = TieredCache(0, None, ServiceMetrics())
        cache.put("k", {"v": 1})
        assert len(cache) == 0
        assert cache.get("k") is None


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self):
        batches = []

        def evaluate(items):
            batches.append(list(items))
            return [i * 10 for i in items]

        async def scenario():
            m = ServiceMetrics()
            b = MicroBatcher(evaluate, m, max_batch=8, max_wait=0.2)
            try:
                results = await asyncio.gather(*(b.submit(i) for i in range(4)))
            finally:
                b.close()
            assert results == [0, 10, 20, 30]
            assert len(batches) == 1
            assert m.counter("repro_batches_total") == 1
            assert m.counter("repro_batched_requests_total") == 4
            assert m.counter("repro_coalesced_requests_total") == 3

        asyncio.run(scenario())

    def test_max_batch_bounds_coalescing(self):
        batches = []

        def evaluate(items):
            batches.append(list(items))
            return list(items)

        async def scenario():
            b = MicroBatcher(
                evaluate, ServiceMetrics(), max_batch=2, max_wait=0.2
            )
            try:
                await asyncio.gather(*(b.submit(i) for i in range(5)))
            finally:
                b.close()
            assert all(len(batch) <= 2 for batch in batches)

        asyncio.run(scenario())

    def test_per_item_exception_does_not_poison_batch(self):
        def evaluate(items):
            return [
                ValueError(f"bad {i}") if i % 2 else i for i in items
            ]

        async def scenario():
            b = MicroBatcher(evaluate, ServiceMetrics(), max_wait=0.05)
            try:
                good, bad = await asyncio.gather(
                    b.submit(2), b.submit(3), return_exceptions=True
                )
            finally:
                b.close()
            assert good == 2
            assert isinstance(bad, ValueError)

        asyncio.run(scenario())

    def test_wholesale_evaluator_failure_fails_every_item(self):
        def evaluate(items):
            raise RuntimeError("engine down")

        async def scenario():
            b = MicroBatcher(evaluate, ServiceMetrics(), max_wait=0.05)
            try:
                results = await asyncio.gather(
                    b.submit(1), b.submit(2), return_exceptions=True
                )
            finally:
                b.close()
            assert all(isinstance(r, RuntimeError) for r in results)

        asyncio.run(scenario())

    def test_disabled_mode_evaluates_each_submit_alone(self):
        batches = []

        def evaluate(items):
            batches.append(list(items))
            return list(items)

        async def scenario():
            b = MicroBatcher(
                evaluate, ServiceMetrics(), max_wait=0.2, enabled=False
            )
            try:
                await asyncio.gather(*(b.submit(i) for i in range(3)))
            finally:
                b.close()
            assert sorted(len(batch) for batch in batches) == [1, 1, 1]

        asyncio.run(scenario())

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, ServiceMetrics(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, ServiceMetrics(), max_wait=-1)

    def test_drain_waits_out_coalescing_window(self):
        # Regression: between the collector popping an item off the
        # queue and creating its dispatch task (up to max_wait), the
        # item is in neither _pending nor _dispatches; drain() must not
        # declare the batcher empty then, or stop() cancels a
        # connection still awaiting that batch.
        def evaluate(items):
            return [i * 2 for i in items]

        async def scenario():
            b = MicroBatcher(
                evaluate, ServiceMetrics(), max_batch=8, max_wait=0.1
            )
            try:
                fut = asyncio.ensure_future(b.submit(21))
                # Let the collector pop the item into its coalescing
                # window (it then waits max_wait for batch-mates).
                while not b._coalescing:
                    await asyncio.sleep(0.001)
                await b.drain()
                assert fut.done()
                assert fut.result() == 42
            finally:
                b.close()

        asyncio.run(scenario())


class TestPredictRequest:
    def test_defaults_filled(self):
        req = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        assert req.runs == 16
        assert req.seed == 0
        assert req.vector_runs is True
        assert req.vector_batch == VECTOR_BATCH
        assert req.model_params == {"iterations": 100, "xsize": 256}

    @pytest.mark.parametrize(
        "body",
        [
            "not an object",
            {"nprocs": 8},  # missing model
            {"model": "nope", "nprocs": 8},
            {"model": "jacobi", "nprocs": 8, "bogus": 1},
            {"model": "jacobi", "nprocs": 8, "model_params": {"bogus": 1}},
            {"model": "jacobi", "nprocs": 0},
            {"model": "jacobi", "nprocs": True},
            {"model": "jacobi", "nprocs": 8, "runs": 0},
            {"model": "jacobi", "nprocs": 8, "seed": -1},
            {"model": "jacobi", "nprocs": 8, "timing_mode": "psychic"},
            {"model": "jacobi", "nprocs": 8, "timing_source": "4x4"},
            {"model": "jacobi", "nprocs": 8, "nic_serialisation": "maybe"},
            {"model": "jacobi", "nprocs": 8, "deadline_s": 0},
        ],
    )
    def test_invalid_requests_rejected(self, body):
        with pytest.raises(RequestError):
            PredictRequest.from_dict(body)

    def test_key_is_content_addressed(self):
        a = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        b = PredictRequest.from_dict(
            {"model": "jacobi", "nprocs": 8, "runs": 16, "seed": 0}
        )
        assert a.key("db0") == b.key("db0")  # defaults fill identically

    @pytest.mark.parametrize(
        "variant",
        [
            {"seed": 1},
            {"runs": 8},
            {"nprocs": 4},
            {"ppn": 2},
            {"model_params": {"iterations": 50}},
            {"timing_mode": "average"},
            {"nic_serialisation": "off"},
            {"vector_runs": False},
        ],
    )
    def test_key_varies_with_request(self, variant):
        base = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        other = PredictRequest.from_dict(
            {"model": "jacobi", "nprocs": 8, **variant}
        )
        assert base.key("db0") != other.key("db0")

    def test_key_varies_with_db_fingerprint(self):
        req = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        assert req.key("db0") != req.key("db1")

    def test_deadline_excluded_from_key(self):
        base = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        other = PredictRequest.from_dict(
            {"model": "jacobi", "nprocs": 8, "deadline_s": 0.5}
        )
        # The deadline changes how long a caller waits, never the numbers.
        assert base.key("db0") == other.key("db0")
