"""Property tests for :mod:`repro.service.metrics` (Hypothesis).

Two families of invariants a scraper relies on:

* **latency quantiles** summarised through the MPIBench histogram are
  monotone in ``q`` and bounded by the observed min/max -- a violated
  order (p99 < p50) would silently corrupt every dashboard built on
  the exposition;
* **label escaping** round-trips arbitrary (including adversarial)
  label values through the Prometheus text format: what a scraper
  unescapes is exactly what the service observed.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import (
    STAGE_BUCKETS,
    ServiceMetrics,
    escape_label_value,
    unescape_label_value,
)

#: second-valued latency samples across the service's realistic range
#: (sub-microsecond LRU hits to multi-second evaluations)
latency_samples = st.lists(
    st.floats(min_value=1e-7, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=200,
)

quantile_sets = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=2,
    max_size=12,
)


class TestLatencyQuantiles:
    @given(samples=latency_samples, qs=quantile_sets)
    @settings(max_examples=200, deadline=None)
    def test_quantiles_monotone_in_q(self, samples, qs):
        metrics = ServiceMetrics()
        for s in samples:
            metrics.observe("predict", s)
        hist = metrics.latency_histogram("predict")
        ordered = sorted(qs)
        values = [hist.quantile(q) for q in ordered]
        for lo, hi in zip(values, values[1:]):
            assert lo <= hi + 1e-12

    @given(samples=latency_samples)
    @settings(max_examples=200, deadline=None)
    def test_quantiles_bounded_by_min_max(self, samples):
        metrics = ServiceMetrics()
        for s in samples:
            metrics.observe("predict", s)
        hist = metrics.latency_histogram("predict")
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            value = hist.quantile(q)
            assert min(samples) - 1e-12 <= value <= max(samples) + 1e-12

    @given(samples=latency_samples)
    @settings(max_examples=100, deadline=None)
    def test_published_quantiles_match_histogram(self, samples):
        metrics = ServiceMetrics()
        for s in samples:
            metrics.observe("predict", s)
        published = metrics.latency_quantiles("predict")
        hist = metrics.latency_histogram("predict")
        for q, value in published.items():
            assert value == hist.quantile(q)


class TestLabelEscaping:
    @given(value=st.text(max_size=200))
    @settings(max_examples=500, deadline=None)
    def test_escape_round_trips(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @given(value=st.text(max_size=100))
    @settings(max_examples=300, deadline=None)
    def test_escaped_value_has_no_raw_newlines_or_quotes(self, value):
        escaped = escape_label_value(value)
        assert "\n" not in escaped
        # Every quote in the escaped form is preceded by an odd number
        # of backslashes (i.e. it is escaped).
        for m in re.finditer('"', escaped):
            backslashes = 0
            i = m.start() - 1
            while i >= 0 and escaped[i] == "\\":
                backslashes += 1
                i -= 1
            assert backslashes % 2 == 1

    @given(value=st.text(max_size=100))
    @settings(max_examples=300, deadline=None)
    def test_rendered_exposition_recovers_label_verbatim(self, value):
        metrics = ServiceMetrics()
        metrics.inc("repro_probe_total", endpoint=value)
        text = metrics.render_prometheus()
        # The exposition format is \n-delimited; split on exactly that.
        # (str.splitlines would also split on \x1e/ -class characters
        # that the Prometheus spec deliberately leaves unescaped.)
        lines = [
            l for l in text.split("\n") if l.startswith("repro_probe_total{")
        ]
        assert len(lines) == 1  # hostile labels never split a line
        match = re.fullmatch(
            r'repro_probe_total\{endpoint="(.*)"\} 1', lines[0]
        )
        assert match is not None
        assert unescape_label_value(match.group(1)) == value


class TestStageHistogram:
    @given(
        observations=st.lists(
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_bucket_counts_cumulative_and_consistent(self, observations):
        metrics = ServiceMetrics()
        for s in observations:
            metrics.observe_stage("engine", s)
        text = metrics.render_prometheus()
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_stage_seconds_bucket{stage="engine"')
        ]
        assert len(counts) == len(STAGE_BUCKETS) + 1  # + the +Inf bucket
        for lo, hi in zip(counts, counts[1:]):
            assert lo <= hi  # cumulative by definition
        assert counts[-1] == len(observations)
        assert metrics.stage_count("engine") == len(observations)
