"""Tests for the prediction service (:mod:`repro.service`)."""
