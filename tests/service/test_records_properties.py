"""Property tests for request canonicalisation (:mod:`repro.service.records`).

The content-addressed request key is the backbone of every funnel
stage (cache, singleflight, disk store), so its equivalence relation
is pinned down with Hypothesis:

* the key is **invariant** under JSON key reordering, whitespace and
  elision of explicit defaults -- anything a client serialiser may do
  without changing meaning;
* **distinct semantic requests never collide**: two requests whose
  canonical forms differ get different keys (and the same request
  against a different distribution database does too).
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.records import PredictRequest

#: field-level defaults from_dict fills in (elision-invariance inputs)
_DEFAULTS = {
    "ppn": 1,
    "runs": 16,
    "seed": 0,
    "timing_mode": "distribution",
    "timing_source": "nxp",
    "nic_serialisation": "tx",
    "vector_runs": True,
}

request_docs = st.fixed_dictionaries(
    {
        "model": st.sampled_from(["jacobi", "fft", "taskfarm"]),
        "nprocs": st.integers(min_value=1, max_value=128),
        "ppn": st.integers(min_value=1, max_value=4),
        "runs": st.integers(min_value=1, max_value=64),
        "seed": st.integers(min_value=0, max_value=10_000),
        "timing_mode": st.sampled_from(
            ["distribution", "average", "minimum", "parametric"]
        ),
        "timing_source": st.sampled_from(["nxp", "2x1"]),
        "nic_serialisation": st.sampled_from(["off", "tx", "txrx"]),
        "vector_runs": st.booleans(),
    }
)

FP = "db-fingerprint-a"


def _reserialise(doc: dict, order_seed: int, indent: int) -> dict:
    """The same request as a client with different serialiser habits
    would send it: shuffled key order, different whitespace."""
    items = list(doc.items())
    random.Random(order_seed).shuffle(items)
    text = json.dumps(dict(items), indent=indent or None)
    return json.loads(text)


class TestKeyInvariance:
    @given(
        doc=request_docs,
        order_seed=st.integers(min_value=0, max_value=2**32 - 1),
        indent=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=300, deadline=None)
    def test_key_invariant_under_reordering_and_whitespace(
        self, doc, order_seed, indent
    ):
        original = PredictRequest.from_dict(doc)
        reshaped = PredictRequest.from_dict(
            _reserialise(doc, order_seed, indent)
        )
        assert reshaped.key(FP) == original.key(FP)
        assert reshaped.canonical() == original.canonical()

    @given(doc=request_docs)
    @settings(max_examples=300, deadline=None)
    def test_key_invariant_under_default_elision(self, doc):
        elided = {
            k: v
            for k, v in doc.items()
            if not (k in _DEFAULTS and _DEFAULTS[k] == v)
        }
        assert (
            PredictRequest.from_dict(elided).key(FP)
            == PredictRequest.from_dict(doc).key(FP)
        )

    def test_explicit_default_model_params_share_the_key(self):
        bare = PredictRequest.from_dict({"model": "jacobi", "nprocs": 8})
        explicit = PredictRequest.from_dict(
            {
                "model": "jacobi",
                "nprocs": 8,
                "model_params": {"iterations": 100, "xsize": 256},
            }
        )
        assert bare.key(FP) == explicit.key(FP)


class TestNoCollisions:
    @given(a=request_docs, b=request_docs)
    @settings(max_examples=300, deadline=None)
    def test_distinct_canonical_forms_never_collide(self, a, b):
        ra = PredictRequest.from_dict(a)
        rb = PredictRequest.from_dict(b)
        if ra.canonical() == rb.canonical():
            assert ra.key(FP) == rb.key(FP)
        else:
            assert ra.key(FP) != rb.key(FP)

    @given(doc=request_docs)
    @settings(max_examples=100, deadline=None)
    def test_key_binds_the_database_fingerprint(self, doc):
        req = PredictRequest.from_dict(doc)
        assert req.key(FP) != req.key("db-fingerprint-b")

    @given(
        doc=request_docs,
        iterations=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=200, deadline=None)
    def test_model_params_are_part_of_the_identity(self, doc, iterations):
        doc = dict(doc, model="jacobi")
        base = PredictRequest.from_dict(doc)
        varied = PredictRequest.from_dict(
            dict(doc, model_params={"iterations": iterations})
        )
        if iterations == 100:  # the jacobi default
            assert varied.key(FP) == base.key(FP)
        else:
            assert varied.key(FP) != base.key(FP)
