"""Tests for the example applications: correctness of the executable
versions and predicted-vs-measured agreement of their PEVPM models."""

import numpy as np
import pytest

from repro.apps.fft import (
    distribute_input,
    fft_local_work,
    fft_model,
    fft_serial_time,
    fft_smpi,
    gather_output,
)
from repro.apps.jacobi import jacobi_smpi
from repro.apps.taskfarm import (
    make_tasks,
    taskfarm_model,
    taskfarm_serial_time,
    taskfarm_smpi,
)
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.simnet import ideal_cluster, perseus
from repro.smpi import run_program

SPEC = perseus(16)


@pytest.fixture(scope="module")
def db():
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=30, warmup=3))
    return bench.sweep_isend([(2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048])


class TestJacobiSmpi:
    def test_runs_on_one_process(self):
        r = run_program(SPEC, jacobi_smpi, nprocs=1, seed=0, args=(10,))
        assert r.elapsed == pytest.approx(10 * SPEC.jacobi_serial_time, rel=0.01)

    def test_parallel_speedup_below_ideal(self):
        serial = run_program(SPEC, jacobi_smpi, nprocs=1, seed=0, args=(30,)).elapsed
        par = run_program(SPEC, jacobi_smpi, nprocs=8, seed=0, args=(30,)).elapsed
        speedup = serial / par
        assert 1.0 < speedup < 8.0

    def test_odd_process_count_works(self):
        r = run_program(SPEC, jacobi_smpi, nprocs=5, seed=0, args=(10,))
        assert r.elapsed > 0


class TestFft:
    @pytest.mark.parametrize("nprocs,n", [(2, 64), (4, 256), (8, 1024)])
    def test_matches_numpy(self, nprocs, n):
        rng = np.random.default_rng(7)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        chunks = distribute_input(x, nprocs)

        def prog(comm):
            out, _t = yield from fft_smpi(comm, chunks[comm.rank], n)
            return out

        r = run_program(ideal_cluster(8), prog, nprocs=nprocs)
        X = gather_output(r.returns)
        assert np.allclose(X, np.fft.fft(x))

    def test_input_validation(self):
        def prog(comm):
            with pytest.raises(ValueError):
                yield from fft_smpi(comm, np.zeros(3), 12)  # not a power of 2
            return True

        r = run_program(ideal_cluster(4), prog, nprocs=2)
        assert r.returns == [True, True]

    def test_local_work_model(self):
        assert fft_local_work(1024, 1024) == pytest.approx(
            60e-9 * 1024 * 10
        )
        assert fft_serial_time(1 << 16) > fft_serial_time(1 << 12)
        with pytest.raises(ValueError):
            fft_local_work(0, 8)

    def test_model_prediction_close_to_measured(self, db):
        n = 4096
        nprocs = 8
        rng = np.random.default_rng(1)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        chunks = distribute_input(x, nprocs)

        def prog(comm):
            _out, t = yield from fft_smpi(comm, chunks[comm.rank], n)
            return t

        measured = run_program(SPEC, prog, nprocs=nprocs, seed=42).elapsed
        pred = predict(
            fft_model(n), nprocs, timing_from_db(db, "distribution"),
            runs=4, seed=2,
        )
        err = abs(pred.mean_time - measured) / measured
        assert err < 0.2, f"FFT prediction off by {err * 100:.0f}%"

    def test_model_message_structure(self):
        from repro.pevpm.machine import ProcContext

        program = fft_model(1024)
        ops = list(program(ProcContext(0, 4)))
        sends = [op for op in ops if op[0] == "send"]
        recvs = [op for op in ops if op[0] == "recv"]
        serials = [op for op in ops if op[0] == "serial"]
        assert len(sends) == len(recvs) == 3  # P-1 exchange rounds
        assert len(serials) == 3  # step1, twiddle, step4


class TestTaskfarm:
    def test_all_tasks_done_exactly_once(self):
        tasks = make_tasks(40, seed=2)
        r = run_program(SPEC, taskfarm_smpi, nprocs=5, seed=1, args=(tasks,))
        handed, _ = r.returns[0]
        done = sum(d for d, _t in r.returns[1:])
        assert handed == done == 40

    def test_parallel_beats_one_worker(self):
        tasks = make_tasks(60, seed=3)
        t2 = run_program(SPEC, taskfarm_smpi, nprocs=2, seed=1, args=(tasks,)).elapsed
        t8 = run_program(SPEC, taskfarm_smpi, nprocs=8, seed=1, args=(tasks,)).elapsed
        assert t8 < t2

    def test_needs_two_ranks(self):
        with pytest.raises(ValueError):
            run_program(SPEC, taskfarm_smpi, nprocs=1, args=(make_tasks(3),))

    def test_make_tasks_properties(self):
        tasks = make_tasks(500, mean=4e-3, cv=0.5, seed=9)
        assert len(tasks) == 500
        assert np.mean(tasks) == pytest.approx(4e-3, rel=0.15)
        assert all(t > 0 for t in tasks)
        assert make_tasks(10, seed=1) == make_tasks(10, seed=1)
        with pytest.raises(ValueError):
            make_tasks(0)
        with pytest.raises(ValueError):
            make_tasks(5, mean=-1)

    def test_model_prediction_close_to_measured(self, db):
        tasks = make_tasks(80, seed=5)
        measured = run_program(
            SPEC, taskfarm_smpi, nprocs=8, seed=1, args=(tasks,)
        ).elapsed
        pred = predict(
            taskfarm_model(tasks), 8, timing_from_db(db, "distribution"),
            runs=4, seed=2,
        )
        err = abs(pred.mean_time - measured) / measured
        assert err < 0.15, f"task farm prediction off by {err * 100:.0f}%"

    def test_model_makespan_dominated_by_bag(self, db):
        """With many workers the makespan approaches the critical task."""
        tasks = make_tasks(10, seed=6)
        pred = predict(
            taskfarm_model(tasks), 12, timing_from_db(db, "distribution"),
            runs=3, seed=1,
        )
        assert pred.mean_time >= max(tasks)
        assert pred.mean_time < taskfarm_serial_time(tasks)
