#!/usr/bin/env python
"""Append the current service throughput measurement to BENCH_service.json.

Run from the repository root (``PYTHONPATH=src python
scripts/track_service.py``) after a change that could move served-
prediction throughput.  Three measurement families, selectable with
``--only``:

* **naive** -- one in-process server with batching, singleflight and
  caching disabled: one engine evaluation per request;
* **full**  -- the same server with the whole request funnel on;
* **sharded** -- the multi-process tier: a :class:`Supervisor` running
  N full server processes over one shared disk cache, driven
  direct-to-shard with client-side consistent-hash routing (the same
  ring the front router uses, minus the router hop).  Measured at
  N=1 and N=4 with an engine-bound workload (4096 distinct seeds, so
  the cache tiers cannot flatten the scaling signal).

Each row records the git commit, a ``dirty`` flag (measured on an
uncommitted tree -- kept for local trend-spotting, **excluded** from
every check), the registry plane the measurement ran over
(``"memory"`` for an in-process store, ``"shared-dir"`` for the
on-disk plane every multi-shard deployment shares), and for sharded
rows the host's usable CPU count::

    [{"commit": "...", "dirty": false, "date": "...", "workload": "...",
      "mode": "naive"|"full"|"sharded", "registry": "memory"|"shared-dir",
      "concurrency": 8, "shards": 4, "host_cpus": 4,
      "throughput_rps": ..., ...}, ...]

``--check`` is the CI gate: the history must parse, and the newest
clean same-commit sharded pair (1-shard and 4-shard rows) must show
zero transport errors and a 4-shard/1-shard throughput ratio of at
least the hardware-conditioned floor::

    floor = min(2.5, max(0.75, 0.7 * min(host_cpus, shards)))

On a >= 4-core host that demands near-linear scaling (2.8x of the
ideal 4x, capped at the acceptance bar 2.5x); on a single-core host --
where N processes cannot beat one CPU -- it degrades to a no-regression
bound (4 shards keep >= 0.75x of 1-shard throughput).  ``--floor``
overrides the formula.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.mpibench import BenchSettings, DistributionDB, MPIBench  # noqa: E402
from repro.service import (  # noqa: E402
    LoadGenerator,
    PredictionService,
    ServiceThread,
    Supervisor,
)
from repro.simnet import perseus  # noqa: E402

HISTORY = REPO / "BENCH_service.json"
DB_CACHE = REPO / "benchmarks" / "out" / "cache" / "fig6.json"

ITERATIONS = 20
NPROCS = 8
RUNS = 8
DISTINCT_SEEDS = 16
CONCURRENCY = [2, 8]
DURATION = 2.0  # seconds per (mode, concurrency) level

#: sharded arm: shard counts measured, closed-loop clients, and enough
#: distinct seeds that the run stays engine-bound (cache hits would
#: measure the cache plane, not the scale-out)
SHARD_COUNTS = [1, 4]
SHARD_CONCURRENCY = 8
SHARD_SEEDS = 4096
SHARD_DURATION = 3.0

MODES = ("naive", "full", "sharded")


def host_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def scaling_floor(cpus: int, shards: int) -> float:
    """The throughput ratio an N-shard deployment must reach vs 1 shard.

    0.7x per *usable* core up to the shard count, capped at the 2.5x
    acceptance bar and floored at 0.75 (a CPU-bound single-core host
    cannot scale out, but sharding must not cost it >25% either).
    """
    return min(2.5, max(0.75, 0.7 * min(cpus, shards)))


def _load_db() -> DistributionDB:
    if DB_CACHE.exists():
        return DistributionDB.load(DB_CACHE)
    bench = MPIBench(perseus(64), seed=1, settings=BenchSettings(reps=20, warmup=5))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def _git_state() -> tuple[str, bool]:
    """The commit actually checked out (``git rev-parse HEAD``, short)
    plus whether the working tree is dirty -- a measurement taken with
    uncommitted changes must not be attributed to the clean commit."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        return commit, bool(status)
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


def _request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % DISTINCT_SEEDS,
    }


def _shard_request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % SHARD_SEEDS,
    }


def measure(db, spec, naive: bool) -> dict[int, dict]:
    flags = dict(batching=False, dedup=False, caching=False) if naive else {}
    service = PredictionService(db, spec=spec, **flags)
    summaries: dict[int, dict] = {}
    with ServiceThread(service) as thread:
        host, port = thread.address
        for concurrency in CONCURRENCY:
            gen = LoadGenerator(host, port, _request, concurrency=concurrency)
            summaries[concurrency] = gen.run(duration=DURATION).summary()
    return summaries


def measure_sharded(db, shards: int) -> tuple[dict, str]:
    """Closed-loop throughput of an N-shard deployment, direct-to-shard.

    Router-less topology: the load generator routes each request on its
    routing key over the shard ring, exactly as the front router would,
    so the number isolates process scale-out from the router hop.
    Returns the load summary plus the registry-plane tag the deployment
    ran over (multi-shard supervisors always share an on-disk plane).
    """
    supervisor = Supervisor(db, shards, router=False, tracing=False,
                            drain_grace=3.0)
    try:
        supervisor.start()
        registry = "shared-dir" if supervisor.registry_dir else "memory"
        endpoints = [supervisor.shard_address(i) for i in range(shards)]
        gen = LoadGenerator(
            request_factory=_shard_request,
            concurrency=SHARD_CONCURRENCY,
            endpoints=endpoints,
        )
        return gen.run(duration=SHARD_DURATION).summary(), registry
    finally:
        supervisor.stop()


def sharded_pair(history: list) -> tuple[dict, dict] | None:
    """The newest clean same-commit (1-shard, 4-shard) row pair."""
    by_commit: dict[str, dict[int, dict]] = {}
    for row in history:
        if not isinstance(row, dict) or row.get("dirty"):
            continue
        if row.get("mode") != "sharded":
            continue
        shards = row.get("shards")
        if shards in SHARD_COUNTS:
            by_commit.setdefault(row["commit"], {})[shards] = row
    for row in reversed(history):
        if not isinstance(row, dict) or row.get("dirty"):
            continue
        pair = by_commit.get(row.get("commit"), {})
        if len(pair) == len(SHARD_COUNTS):
            return pair[SHARD_COUNTS[0]], pair[SHARD_COUNTS[-1]]
    return None


def check(history: list, floor_override: float | None) -> int:
    dirty = sum(
        1 for row in history if isinstance(row, dict) and row.get("dirty")
    )
    if dirty:
        print(
            f"note: ignoring {dirty} dirty row(s) "
            "(measured on an uncommitted tree)",
            file=sys.stderr,
        )
    pair = sharded_pair(history)
    if pair is None:
        print(
            f"{HISTORY.name}: no clean same-commit sharded row pair "
            f"(shards={SHARD_COUNTS}); run scripts/track_service.py "
            "--only sharded on a clean tree first",
            file=sys.stderr,
        )
        return 1
    one, many = pair
    errors = one.get("errors", 0) + many.get("errors", 0)
    if errors:
        print(
            f"{HISTORY.name}: sharded check FAILED: ratchet pair "
            f"({many.get('commit')}) recorded {errors} transport error(s)",
            file=sys.stderr,
        )
        return 1
    cpus = int(many.get("host_cpus", 1))
    shards = int(many.get("shards", SHARD_COUNTS[-1]))
    floor = (
        floor_override
        if floor_override is not None
        else scaling_floor(cpus, shards)
    )
    rps_one = float(one.get("throughput_rps", 0.0))
    rps_many = float(many.get("throughput_rps", 0.0))
    ratio = rps_many / max(rps_one, 1e-9)
    if ratio < floor:
        print(
            f"{HISTORY.name}: sharded scaling FAILED: "
            f"{shards} shards reach {rps_many:.1f} rps vs "
            f"{rps_one:.1f} rps at 1 shard ({ratio:.2f}x) on "
            f"{cpus} cpu(s); floor is {floor:.2f}x "
            f"(commit {many.get('commit')}, {many.get('date')})",
            file=sys.stderr,
        )
        return 1
    print(
        f"{HISTORY.name}: {len(history)} entries, ok; sharded ratchet "
        f"{many.get('commit')}: {shards} shards at {ratio:.2f}x >= "
        f"{floor:.2f}x (on {cpus} cpu(s), {rps_many:.1f} vs "
        f"{rps_one:.1f} rps, 0 errors)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="validate the history and enforce the sharded scaling floor "
             "on the newest clean same-commit 1/4-shard pair",
    )
    parser.add_argument(
        "--floor", type=float, default=None, metavar="X",
        help="override the hardware-conditioned scaling floor "
             "(default: min(2.5, max(0.75, 0.7 * min(host_cpus, shards))))",
    )
    parser.add_argument(
        "--only", choices=MODES, metavar="MODE",
        help=f"measure a single family ({', '.join(MODES)}) "
             "instead of all three",
    )
    args = parser.parse_args()

    history = []
    if HISTORY.exists():
        history = json.loads(HISTORY.read_text())
        if not isinstance(history, list):
            print(f"{HISTORY} is not a JSON list", file=sys.stderr)
            return 1
    if args.check:
        return check(history, args.floor)

    commit, dirty = _git_state()
    if dirty:
        print(
            "warning: working tree is dirty -- rows will be tagged "
            "dirty and excluded from --check",
            file=sys.stderr,
        )
    spec = perseus(64)
    db = _load_db()
    date = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    workload = f"jacobi-{ITERATIONS}it-{NPROCS}p-{RUNS}runs"
    modes = [args.only] if args.only else list(MODES)
    entries: list[dict] = []

    inproc = [m for m in modes if m in ("naive", "full")]
    if inproc:
        results = {
            mode: measure(db, spec, naive=(mode == "naive"))
            for mode in ("naive", "full")
            if mode in inproc or "full" in inproc
        }
        for mode in inproc:
            for concurrency in CONCURRENCY:
                summary = results[mode][concurrency]
                entry = {
                    "commit": commit,
                    "dirty": dirty,
                    "date": date,
                    "workload": workload,
                    "mode": mode,
                    "registry": "memory",  # in-process store, no plane
                    "concurrency": concurrency,
                    "requests": summary["requests"],
                    "errors": summary["errors"],
                    "throughput_rps": summary["throughput_rps"],
                    "p50_ms": summary["p50_ms"],
                    "p99_ms": summary["p99_ms"],
                }
                if mode == "full" and "naive" in results:
                    naive_rps = results["naive"][concurrency]["throughput_rps"]
                    entry["speedup_vs_naive"] = round(
                        summary["throughput_rps"] / max(naive_rps, 1e-9), 2
                    )
                entries.append(entry)
    if "sharded" in modes:
        cpus = host_cpus()
        shard_workload = (
            f"jacobi-{ITERATIONS}it-{NPROCS}p-{RUNS}runs-{SHARD_SEEDS}seeds"
        )
        rps: dict[int, float] = {}
        for shards in SHARD_COUNTS:
            summary, registry = measure_sharded(db, shards)
            rps[shards] = summary["throughput_rps"]
            entry = {
                "commit": commit,
                "dirty": dirty,
                "date": date,
                "workload": shard_workload,
                "mode": "sharded",
                "registry": registry,
                "shards": shards,
                "host_cpus": cpus,
                "topology": "direct",
                "concurrency": SHARD_CONCURRENCY,
                "requests": summary["requests"],
                "errors": summary["errors"],
                "throughput_rps": summary["throughput_rps"],
                "p50_ms": summary["p50_ms"],
                "p99_ms": summary["p99_ms"],
            }
            if shards > SHARD_COUNTS[0]:
                entry["scaling_vs_1shard"] = round(
                    summary["throughput_rps"]
                    / max(rps[SHARD_COUNTS[0]], 1e-9),
                    2,
                )
            entries.append(entry)
    for entry in entries:
        history.append(entry)
        print(json.dumps(entry, indent=2))
    HISTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {HISTORY}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
