#!/usr/bin/env python
"""Append the current service throughput measurement to BENCH_service.json.

Run from the repository root (``PYTHONPATH=src python
scripts/track_service.py``) after a change that could move served-
prediction throughput.  Each invocation starts an in-process prediction
server twice -- once in *naive* mode (batching, singleflight and caching
disabled: one engine evaluation per request) and once with the full
request funnel -- drives each with the closed-loop load generator at a
sweep of concurrency levels, and appends one row per (mode, concurrency)
cell::

    [{"commit": "...", "dirty": false, "date": "...",
      "workload": "jacobi-20it-8p-8runs", "mode": "naive"|"full",
      "concurrency": 8, "throughput_rps": ..., "p50_ms": ...,
      "p99_ms": ..., "speedup_vs_naive": ...}, ...]

``speedup_vs_naive`` is filled on the *full* rows so the funnel's gain
(the ISSUE acceptance bar is >= 2x at concurrency >= 8) is visible at a
glance across PRs.

Uses the cached ``benchmarks/out/cache/fig6.json`` distribution database
when present and measures a small fresh sweep otherwise, so the script
is runnable on a clean checkout.  ``--check`` only validates that the
history file parses (CI smoke).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.mpibench import BenchSettings, DistributionDB, MPIBench  # noqa: E402
from repro.service import LoadGenerator, PredictionService, ServiceThread  # noqa: E402
from repro.simnet import perseus  # noqa: E402

HISTORY = REPO / "BENCH_service.json"
DB_CACHE = REPO / "benchmarks" / "out" / "cache" / "fig6.json"

ITERATIONS = 20
NPROCS = 8
RUNS = 8
DISTINCT_SEEDS = 16
CONCURRENCY = [2, 8]
DURATION = 2.0  # seconds per (mode, concurrency) level


def _load_db() -> DistributionDB:
    if DB_CACHE.exists():
        return DistributionDB.load(DB_CACHE)
    bench = MPIBench(perseus(64), seed=1, settings=BenchSettings(reps=20, warmup=5))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def _git_state() -> tuple[str, bool]:
    """The commit actually checked out (``git rev-parse HEAD``, short)
    plus whether the working tree is dirty -- a measurement taken with
    uncommitted changes must not be attributed to the clean commit."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        return commit, bool(status)
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


def _request(sequence: int) -> dict:
    return {
        "model": "jacobi",
        "model_params": {"iterations": ITERATIONS},
        "nprocs": NPROCS,
        "runs": RUNS,
        "seed": sequence % DISTINCT_SEEDS,
    }


def measure(db, spec, naive: bool) -> dict[int, dict]:
    flags = dict(batching=False, dedup=False, caching=False) if naive else {}
    service = PredictionService(db, spec=spec, **flags)
    summaries: dict[int, dict] = {}
    with ServiceThread(service) as thread:
        host, port = thread.address
        for concurrency in CONCURRENCY:
            gen = LoadGenerator(host, port, _request, concurrency=concurrency)
            summaries[concurrency] = gen.run(duration=DURATION).summary()
    return summaries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="only validate that the history file parses",
    )
    args = parser.parse_args()

    history = []
    if HISTORY.exists():
        history = json.loads(HISTORY.read_text())
        if not isinstance(history, list):
            print(f"{HISTORY} is not a JSON list", file=sys.stderr)
            return 1
    if args.check:
        print(f"{HISTORY.name}: {len(history)} entries, ok")
        return 0

    spec = perseus(64)
    db = _load_db()
    commit, dirty = _git_state()
    date = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    workload = f"jacobi-{ITERATIONS}it-{NPROCS}p-{RUNS}runs"
    results = {
        "naive": measure(db, spec, naive=True),
        "full": measure(db, spec, naive=False),
    }
    for mode in ("naive", "full"):
        for concurrency in CONCURRENCY:
            summary = results[mode][concurrency]
            entry = {
                "commit": commit,
                "dirty": dirty,
                "date": date,
                "workload": workload,
                "mode": mode,
                "concurrency": concurrency,
                "requests": summary["requests"],
                "errors": summary["errors"],
                "throughput_rps": summary["throughput_rps"],
                "p50_ms": summary["p50_ms"],
                "p99_ms": summary["p99_ms"],
            }
            if mode == "full":
                naive_rps = results["naive"][concurrency]["throughput_rps"]
                entry["speedup_vs_naive"] = round(
                    summary["throughput_rps"] / max(naive_rps, 1e-9), 2
                )
            history.append(entry)
            print(json.dumps(entry, indent=2))
    HISTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {HISTORY}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
