#!/usr/bin/env python
"""Append the current eval-cost measurement to BENCH_eval_cost.json.

Run from the repository root (``PYTHONPATH=src python
scripts/track_eval_cost.py``) after a change that could move prediction
throughput.  Each entry records the paper's Section 6 metric (simulated
processor-seconds per host wall second) for a fixed Jacobi workload, so
the performance trajectory is visible across PRs::

    [{"commit": "...", "dirty": false, "engine": "per-run"|"batched",
      "compiled": true|false, "date": "...", "simulated_per_wall": ...,
      ...}, ...]

Each invocation appends one row per engine variant: the per-run machine
(compiled schedules), the batched vectorised machine interpreting
generators, the batched machine on compiled schedules -- the production
configuration -- and an adaptive row recording how many runs the
sequential stopping rule spends to reach 1% RSE on the same workload.
``--only batched-compiled`` measures just the ratchet variant (what CI
appends).

A measurement taken with uncommitted changes is tagged ``dirty`` and a
warning goes to stderr; dirty rows are kept for local trend-spotting but
are **excluded** from the ratchet -- they cannot be attributed to any
commit.

``--check`` is the CI ratchet: it validates that the history parses and
that the most recent *clean* batched+compiled row for the reference
workload meets the throughput floor (``--floor``, default 200 simulated
processor-seconds per wall second -- roughly 3x the paper's own 67.5x
claim).  A regression below the floor fails CI.

Uses the cached ``benchmarks/out/cache/fig6.json`` distribution database
when present (the benchmark suite's artefact) and measures a small fresh
sweep otherwise, so the script is runnable on a clean checkout.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.apps.jacobi import parse_jacobi  # noqa: E402
from repro.mpibench import BenchSettings, DistributionDB, MPIBench  # noqa: E402
from repro.pevpm import predict, timing_from_db  # noqa: E402
from repro.simnet import perseus  # noqa: E402

HISTORY = REPO / "BENCH_eval_cost.json"
DB_CACHE = REPO / "benchmarks" / "out" / "cache" / "fig6.json"

ITERATIONS = 100
NPROCS = 32
WORKLOAD = f"jacobi-{ITERATIONS}it-{NPROCS}p"
#: Monte Carlo runs for the per-run engine (each run pays the full
#: sweep/match cost, so a handful suffices for a stable wall number).
RUNS_PER_RUN = 8
#: Monte Carlo runs for the batched engine: one full vector chunk, so
#: the measurement is a single-core single-batch number -- no pool
#: scheduling noise in the ratchet.
RUNS_BATCHED = 64
#: Ratchet floor (simulated processor-seconds per host wall second) for
#: the clean batched+compiled reference row.
DEFAULT_FLOOR = 200.0

#: Precision target for the adaptive row: runs-to-1%-RSE on the
#: reference workload -- how much of the fixed spend the sequential
#: stopping rule actually needs.
ADAPTIVE_RSE = 0.01

#: (name, vector_runs, compiled, runs, workers, target_rse) variants;
#: ``target_rse`` is None for the fixed-runs measurements.
VARIANTS = {
    "per-run": ("per-run", False, True, RUNS_PER_RUN, None, None),
    "batched-interpreted": ("batched", True, False, RUNS_BATCHED, 1, None),
    "batched-compiled": ("batched", True, True, RUNS_BATCHED, 1, None),
    "adaptive": ("adaptive", False, True, None, 1, ADAPTIVE_RSE),
}


def _load_db() -> DistributionDB:
    if DB_CACHE.exists():
        return DistributionDB.load(DB_CACHE)
    bench = MPIBench(perseus(64), seed=1, settings=BenchSettings(reps=20, warmup=5))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def _git_state() -> tuple[str, bool]:
    """The commit actually checked out (``git rev-parse HEAD``, short)
    plus whether the working tree is dirty -- a measurement taken with
    uncommitted changes must not be attributed to the clean commit."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        return commit, bool(status)
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


def measure(variant: str, db: DistributionDB) -> dict:
    engine, vector_runs, compiled, runs, workers, target_rse = VARIANTS[variant]
    spec = perseus(64)
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(db, mode="distribution")
    kwargs = (
        {"target_rse": target_rse} if target_rse is not None else {"runs": runs}
    )
    t0 = time.perf_counter()
    pred = predict(
        parse_jacobi(), NPROCS, timing, seed=1, params=params,
        workers=workers,
        vector_runs=vector_runs,
        compiled=compiled,
        **kwargs,
    )
    wall = time.perf_counter() - t0
    commit, dirty = _git_state()
    entry = {
        "commit": commit,
        "dirty": dirty,
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "workload": WORKLOAD,
        "engine": engine,
        "compiled": compiled,
        "runs": pred.runs,
        "wall_seconds": round(wall, 4),
        "mean_run_wall": round(pred.mean_run_wall, 4),
        "simulated_per_wall": round(pred.simulated_per_wall, 2),
        "mean_time": pred.mean_time,
    }
    if target_rse is not None:
        # The adaptive row answers "how many runs does 1% RSE cost?" --
        # spend, convergence, and the precision actually achieved.
        entry["target_rse"] = target_rse
        entry["converged"] = bool(pred.precision["converged"])
        entry["achieved_rse"] = pred.precision["achieved_rse"]
    return entry


def ratchet_row(history: list) -> dict | None:
    """The newest clean batched+compiled row for the reference workload.

    Dirty rows are skipped: a number measured on an uncommitted tree says
    nothing about the commit CI is judging.  Rows from before the engine
    and compiled tags existed (no ``engine`` key) are skipped too.
    """
    for row in reversed(history):
        if not isinstance(row, dict) or row.get("dirty"):
            continue
        if (
            row.get("workload") == WORKLOAD
            and row.get("engine") == "batched"
            and row.get("compiled") is True
        ):
            return row
    return None


def check(history: list, floor: float) -> int:
    dirty = sum(1 for row in history if isinstance(row, dict) and row.get("dirty"))
    if dirty:
        print(
            f"note: ignoring {dirty} dirty row(s) "
            "(measured on an uncommitted tree)",
            file=sys.stderr,
        )
    row = ratchet_row(history)
    if row is None:
        print(
            f"{HISTORY.name}: no clean batched+compiled row for {WORKLOAD}; "
            "run scripts/track_eval_cost.py on a clean tree first",
            file=sys.stderr,
        )
        return 1
    value = float(row.get("simulated_per_wall", 0.0))
    if value < floor:
        print(
            f"{HISTORY.name}: eval-cost ratchet FAILED: latest clean "
            f"batched+compiled row ({row.get('commit')}, {row.get('date')}) "
            f"reaches {value:.2f}x simulated/wall, floor is {floor:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"{HISTORY.name}: {len(history)} entries, ok; ratchet row "
        f"{row.get('commit')} at {value:.2f}x >= {floor:.2f}x"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="validate the history file and enforce the throughput floor "
             "on the latest clean batched+compiled row (no measurement)",
    )
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR, metavar="X",
        help="minimum simulated/wall ratio the ratchet row must reach "
             f"(default {DEFAULT_FLOOR:g})",
    )
    parser.add_argument(
        "--only", choices=sorted(VARIANTS), metavar="VARIANT",
        help="measure a single variant "
             f"({', '.join(sorted(VARIANTS))}) instead of all of them",
    )
    args = parser.parse_args()

    history = []
    if HISTORY.exists():
        history = json.loads(HISTORY.read_text())
        if not isinstance(history, list):
            print(f"{HISTORY} is not a JSON list", file=sys.stderr)
            return 1
    if args.check:
        return check(history, args.floor)

    _, tree_dirty = _git_state()
    if tree_dirty:
        print(
            "warning: working tree is dirty -- rows will be tagged "
            "dirty and excluded from the ratchet",
            file=sys.stderr,
        )
    db = _load_db()
    variants = [args.only] if args.only else list(VARIANTS)
    for variant in variants:
        entry = measure(variant, db)
        history.append(entry)
        print(json.dumps(entry, indent=2))
    HISTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {HISTORY}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
