#!/usr/bin/env python
"""Append the current eval-cost measurement to BENCH_eval_cost.json.

Run from the repository root (``PYTHONPATH=src python
scripts/track_eval_cost.py``) after a change that could move prediction
throughput.  Each entry records the paper's Section 6 metric (simulated
processor-seconds per host wall second) for a fixed Jacobi workload, so
the performance trajectory is visible across PRs::

    [{"commit": "...", "dirty": false, "engine": "per-run"|"batched",
      "date": "...", "simulated_per_wall": ..., ...}, ...]

Each invocation appends one row per engine (the per-run machine and the
batched vectorised one), so the throughput of both is tracked.

Uses the cached ``benchmarks/out/cache/fig6.json`` distribution database
when present (the benchmark suite's artefact) and measures a small fresh
sweep otherwise, so the script is runnable on a clean checkout.
``--check`` only validates that the history file parses (CI smoke).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.apps.jacobi import parse_jacobi  # noqa: E402
from repro.mpibench import BenchSettings, DistributionDB, MPIBench  # noqa: E402
from repro.pevpm import predict, timing_from_db  # noqa: E402
from repro.simnet import perseus  # noqa: E402

HISTORY = REPO / "BENCH_eval_cost.json"
DB_CACHE = REPO / "benchmarks" / "out" / "cache" / "fig6.json"

ITERATIONS = 100
NPROCS = 32
RUNS = 8


def _load_db() -> DistributionDB:
    if DB_CACHE.exists():
        return DistributionDB.load(DB_CACHE)
    bench = MPIBench(perseus(64), seed=1, settings=BenchSettings(reps=20, warmup=5))
    return bench.sweep_isend(
        [(1, 2), (2, 1), (8, 1), (16, 1)], sizes=[0, 512, 1024, 2048]
    )


def _git_state() -> tuple[str, bool]:
    """The commit actually checked out (``git rev-parse HEAD``, short)
    plus whether the working tree is dirty -- a measurement taken with
    uncommitted changes must not be attributed to the clean commit."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.strip()
        return commit, bool(status)
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


def measure(vector_runs: bool = False) -> dict:
    spec = perseus(64)
    db = _load_db()
    params = {
        "iterations": ITERATIONS,
        "xsize": 256,
        "serial_time": spec.jacobi_serial_time,
    }
    timing = timing_from_db(db, mode="distribution")
    t0 = time.perf_counter()
    pred = predict(
        parse_jacobi(), NPROCS, timing, runs=RUNS, seed=1, params=params,
        workers=None,  # one worker per host core
        vector_runs=vector_runs,
    )
    wall = time.perf_counter() - t0
    commit, dirty = _git_state()
    return {
        "commit": commit,
        "dirty": dirty,
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "workload": f"jacobi-{ITERATIONS}it-{NPROCS}p",
        "engine": "batched" if vector_runs else "per-run",
        "runs": RUNS,
        "wall_seconds": round(wall, 4),
        "mean_run_wall": round(pred.mean_run_wall, 4),
        "simulated_per_wall": round(pred.simulated_per_wall, 2),
        "mean_time": pred.mean_time,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="only validate that the history file parses",
    )
    args = parser.parse_args()

    history = []
    if HISTORY.exists():
        history = json.loads(HISTORY.read_text())
        if not isinstance(history, list):
            print(f"{HISTORY} is not a JSON list", file=sys.stderr)
            return 1
    if args.check:
        print(f"{HISTORY.name}: {len(history)} entries, ok")
        return 0

    for vector_runs in (False, True):
        entry = measure(vector_runs=vector_runs)
        history.append(entry)
        print(json.dumps(entry, indent=2))
    HISTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {HISTORY}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
