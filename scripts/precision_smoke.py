#!/usr/bin/env python
"""End-to-end smoke for precision-targeted (``target_rse``) serving.

Run from the repository root (``PYTHONPATH=src python
scripts/precision_smoke.py``).  Spins up the real HTTP service on a
background thread, then asserts the adaptive contract the CI job guards:

* a loose-target request converges and spends **fewer** runs than the
  fixed ``runs=16`` baseline;
* a tight target spends more runs than a loose one (the stopping rule
  actually responds to the target) and stops at ``max_runs`` reporting
  non-convergence when the target is unreachable;
* the adaptive result is cached under its achieved run count, so a
  fixed-``runs`` request for the same content is served from cache with
  bit-identical times;
* ``runs`` + ``target_rse`` together are rejected with a 400;
* the ``/metrics`` scrape carries the ``repro_prediction_runs``
  histogram with both mode labels.

Exits non-zero on the first violated expectation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.mpibench import BenchSettings, MPIBench  # noqa: E402
from repro.service import PredictionService, ServiceClient, ServiceThread  # noqa: E402
from repro.simnet import perseus  # noqa: E402

SPEC = perseus(16)
BASE = {
    "model": "jacobi",
    "model_params": {"iterations": 20},
    "nprocs": 4,
    "seed": 7,
}


def request(**overrides) -> dict:
    body = dict(BASE)
    body.update(overrides)
    return body


def main() -> int:
    bench = MPIBench(SPEC, seed=3, settings=BenchSettings(reps=20, warmup=3))
    db = bench.sweep_isend([(1, 2), (2, 1), (8, 1)], sizes=[0, 512, 1024, 2048])

    with tempfile.TemporaryDirectory(prefix="precision-smoke-") as cache_dir:
        service = PredictionService(db, spec=SPEC, cache_dir=cache_dir)
        with ServiceThread(service) as thread:
            host, port = thread.address
            client = ServiceClient(host, port)
            try:
                fixed = client.predict(**request(runs=16))
                assert fixed["runs"] == 16, fixed

                loose = client.predict(**request(target_rse=0.05))
                p = loose["precision"]
                assert p["converged"] is True, p
                assert p["achieved_rse"] <= 0.05, p
                assert loose["runs"] < 16, (
                    f"loose target spent {loose['runs']} runs, "
                    "expected fewer than the fixed 16"
                )
                print(
                    f"loose target (5% rse): {loose['runs']} runs vs fixed 16 "
                    f"({16 - loose['runs']} saved), achieved "
                    f"rse={p['achieved_rse']:.2e}"
                )

                tight = client.predict(
                    **request(target_rse=1e-9, max_runs=8)
                )
                assert tight["runs"] == 8, tight
                assert tight["precision"]["converged"] is False, tight
                assert loose["runs"] < tight["runs"] or loose["runs"] < 8
                print(
                    "unreachable target stopped at the max_runs cap "
                    "reporting converged=false"
                )

                # The achieved result serves a later fixed-runs request.
                replay = client.predict(
                    **request(
                        runs=loose["runs"],
                        vector_batch=loose["engine"]["vector_batch"],
                    )
                )
                assert replay["served_from"] == "cache", replay["served_from"]
                assert replay["times"] == loose["times"], "cache not bit-identical"
                print(
                    f"fixed runs={loose['runs']} request served from cache, "
                    "bit-identical to the adaptive result"
                )

                status, _, doc = client.predict_raw(
                    request(runs=4, target_rse=0.05)
                )
                assert status == 400, (status, doc)
                print(f"runs+target_rse rejected: {doc['error']!r}")

                text = client.metrics_text()
                for needle in (
                    'repro_prediction_runs_bucket{mode="adaptive"',
                    'repro_prediction_runs_bucket{mode="fixed"',
                    'repro_prediction_runs_count{mode="adaptive"} 2',
                ):
                    assert needle in text, f"missing metric series: {needle}"
                print("prediction-runs histogram present for both modes")
            finally:
                client.close()

    print("precision smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
