#!/usr/bin/env python
"""Re-pin the golden-model regression documents.

Runs the golden suite with ``--regen-goldens``, which rewrites every
``tests/goldens/*.json`` from the current code, then runs it again
without the flag to prove the fresh pins round-trip byte-for-byte.

Use after an *intentional* change to predicted numbers (engine work,
timing-model edits, collective lowering changes); the diff of the
regenerated JSON is the reviewable record of what moved.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(extra):
    return subprocess.call(
        [sys.executable, "-m", "pytest", "tests/test_goldens.py", "-q", *extra],
        cwd=REPO,
    )


def main() -> int:
    rc = run(["--regen-goldens"])
    if rc:
        return rc
    print("goldens rewritten; verifying they round-trip...")
    return run([])


if __name__ == "__main__":
    sys.exit(main())
