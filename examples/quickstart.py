#!/usr/bin/env python3
"""Quickstart: benchmark a simulated cluster, then predict a program.

This walks the paper's whole pipeline in about a minute:

1. build the simulated Perseus cluster;
2. run MPIBench on a few configurations to get timing *distributions*;
3. write a tiny message-passing program model with PEVPM primitives;
4. predict its run time by Monte Carlo sampling from the distributions;
5. check the prediction against actually executing the same program on
   the simulated cluster.

Run:  python examples/quickstart.py
"""

from repro._tables import format_table, format_time
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.simnet import perseus
from repro.smpi import run_program


def main() -> None:
    # 1. The machine: 116 dual-CPU nodes, switched Fast Ethernet.
    spec = perseus()
    print(f"cluster: {spec.name}, {spec.n_nodes} nodes, "
          f"{spec.link_bandwidth * 8 / 1e6:.0f} Mbit/s links")

    # 2. MPIBench: one-way MPI_Isend time distributions at two scales.
    bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=50))
    db = bench.sweep_isend([(2, 1), (8, 1)], sizes=[0, 1024, 4096])
    h = db.result("isend", 8, 1).histograms[1024]
    print(f"\n8x1, 1 KB one-way times: min {format_time(h.min)}, "
          f"mean {format_time(h.mean)}, max {format_time(h.max)} "
          f"(n={h.n})")

    # 3. A tiny program: a ring pass with some computation per hop.
    HOPS = 50
    MSG = 1024
    WORK = 500e-6

    def model(ctx):
        right = (ctx.procnum + 1) % ctx.numprocs
        left = (ctx.procnum - 1) % ctx.numprocs
        for _ in range(HOPS):
            yield ctx.serial(WORK)
            if ctx.procnum == 0:
                yield ctx.send(right, MSG)
                yield ctx.recv(left)
            else:
                yield ctx.recv(left)
                yield ctx.send(right, MSG)

    # 4. PEVPM prediction, sampling from the measured distributions.
    timing = timing_from_db(db, mode="distribution")
    prediction = predict(model, nprocs=8, timing=timing, runs=10, seed=2)

    # 5. Ground truth: the same program on the simulated cluster.
    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for _ in range(HOPS):
            yield from comm.compute(WORK)
            if comm.rank == 0:
                yield from comm.send(MSG, dest=right)
                yield from comm.recv(source=left)
            else:
                yield from comm.recv(source=left)
                yield from comm.send(MSG, dest=right)
        return None

    measured = run_program(spec, program, nprocs=8, seed=42).elapsed

    err = (prediction.mean_time - measured) / measured * 100
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["PEVPM predicted", format_time(prediction.mean_time)],
            ["simulated (measured)", format_time(measured)],
            ["prediction error", f"{err:+.1f}%"],
            ["Monte Carlo runs", prediction.runs],
            ["eval speed", f"{prediction.simulated_per_wall:.0f}x real time"],
        ],
        title="ring program, 8 processes",
    ))


if __name__ == "__main__":
    main()
