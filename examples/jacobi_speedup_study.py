#!/usr/bin/env python3
"""Jacobi speedup study: the paper's Figure 6 experiment, end to end.

Benchmarks the simulated Perseus with MPIBench, parses the annotated
Figure 5 Jacobi source into a PEVPM model, predicts speedups across
machine sizes with four timing sources (distribution sampling vs. the
flawed min/avg alternatives), measures the real speedups by executing the
Jacobi program on the simulated cluster, and prints the comparison table
plus an ASCII rendering of the curves.

Run:  python examples/jacobi_speedup_study.py [--fast]
"""

import argparse

from repro._tables import ascii_curve, format_table
from repro.apps.jacobi import jacobi_serial_time, jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import compare_timing_modes
from repro.simnet import perseus
from repro.smpi import run_program


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--fast", action="store_true", help="smaller sweep (~30 s)")
    args = ap.parse_args()

    spec = perseus(64)
    iters = 60 if args.fast else 150
    machine_sizes = [(4, 1), (16, 1)] if args.fast else [(4, 1), (16, 1), (32, 1), (64, 1)]
    bench_configs = (
        [(1, 2), (2, 1), (8, 1), (16, 1)]
        if args.fast
        else [(1, 2), (2, 1), (8, 1), (16, 1), (32, 1), (64, 1)]
    )

    print("running MPIBench sweep (this is the expensive step)...")
    bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=50, warmup=5))
    db = bench.sweep_isend(bench_configs, sizes=[0, 512, 1024, 2048])

    model = parse_jacobi()
    params = {"iterations": iters, "xsize": 256,
              "serial_time": spec.jacobi_serial_time}
    serial = jacobi_serial_time(spec, iters)

    headers = ["procs", "measured"]
    mode_names = ["distribution-nxp", "average-2x1", "minimum-2x1", "average-nxp"]
    headers += mode_names
    rows = []
    curves: dict[str, list[float]] = {"measured": []}
    xs = []

    for nprocs, ppn in machine_sizes:
        measured = run_program(
            spec, jacobi_smpi, nprocs=nprocs, ppn=ppn, seed=42, args=(iters,)
        ).elapsed
        preds = compare_timing_modes(
            model, nprocs, db, runs=4, seed=7, params=params, ppn=ppn
        )
        xs.append(nprocs)
        curves["measured"].append(serial / measured)
        row = [str(nprocs), f"{serial / measured:.2f}"]
        for name in mode_names:
            sp = preds[name].speedup(serial)
            curves.setdefault(name, []).append(sp)
            err = (preds[name].mean_time - measured) / measured * 100
            row.append(f"{sp:.2f} ({err:+.0f}%)")
        rows.append(row)

    print()
    print(format_table(headers, rows,
                       title="Jacobi speedups: measured vs PEVPM predictions"))
    print()
    print(ascii_curve(xs, curves, width=60, height=14))
    print()
    print("Reading: 'distribution-nxp' should track 'measured'; the")
    print("min/avg-2x1 (ping-pong) predictions overestimate speedup, and the")
    print("gap grows with the processor count -- the paper's key finding.")


if __name__ == "__main__":
    main()
