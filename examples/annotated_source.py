#!/usr/bin/env python3
"""Working with PEVPM source annotations (the paper's Figure 5 workflow).

Shows the full annotation path: take C source annotated with `// PEVPM`
directives, parse it into a model, inspect the model's structure, run a
traced prediction, and print the performance-loss attribution -- the
"automatically determining and highlighting the location and extent of
performance loss" capability of Section 5.

Run:  python examples/annotated_source.py
"""

from repro.apps.jacobi import JACOBI_ANNOTATED_SOURCE, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import model_messages, predict, timing_from_db
from repro.pevpm.directives import Loop, Message, Runon, Serial
from repro.simnet import perseus


def describe(node, depth=0):
    pad = "  " * depth
    if isinstance(node, Loop):
        print(f"{pad}Loop iterations={node.iterations}")
        describe(node.body, depth + 1)
    elif isinstance(node, Runon):
        for cond, block in zip(node.conditions, node.blocks):
            print(f"{pad}Runon {cond}")
            describe(block, depth + 1)
    elif isinstance(node, Message):
        print(f"{pad}{node.kind.value} size={node.size} "
              f"from={node.src} to={node.dst}")
    elif isinstance(node, Serial):
        on = f" on {node.machine}" if node.machine else ""
        print(f"{pad}Serial{on} time={node.time}")
    else:  # Block
        for child in node.children:
            describe(child, depth)


def main() -> None:
    n_annotations = sum(
        1 for line in JACOBI_ANNOTATED_SOURCE.splitlines() if "// PEVPM" in line
    )
    print(f"annotated source: {n_annotations} PEVPM annotation lines\n")

    model = parse_jacobi()
    print("parsed model structure:")
    describe(model)

    params = {"iterations": 50, "xsize": 256, "serial_time": 3.24e-3}
    for nprocs in (2, 4, 8):
        msgs = model_messages(model, nprocs, params)
        print(f"\nmessages for {nprocs} processes, 50 iterations: {msgs} "
              f"(expected {50 * 2 * (nprocs - 1)})")

    print("\nrunning a traced prediction for 8 processes...")
    spec = perseus(16)
    bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=40))
    db = bench.sweep_isend([(2, 1), (8, 1)], sizes=[0, 1024, 2048])
    params["serial_time"] = spec.jacobi_serial_time
    pred = predict(
        model, 8, timing_from_db(db, "distribution"),
        runs=3, seed=1, params=params, trace_last=True,
    )
    print(f"predicted time: {pred.mean_time * 1e3:.1f} ms "
          f"(+/- {pred.stderr * 1e3:.2f} ms)\n")
    print(pred.loss_report().format())

    # Zoom the timeline into the first few iterations: # compute,
    # s send, . waiting at a receive.
    from repro.pevpm import render_timeline

    trace = pred.results[-1].trace
    print()
    print(render_timeline(trace, 8, width=76,
                          t_end=pred.results[-1].elapsed / 10))


if __name__ == "__main__":
    main()
