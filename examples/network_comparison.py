#!/usr/bin/env python3
"""Procurement study: Fast Ethernet vs Gigabit, before buying either.

The workflow the paper's tools enable: benchmark two candidate cluster
networks, compare their communication profiles, then predict a *specific
application's* performance on both -- including at machine sizes you did
not measure -- and check the prediction against (simulated) reality.

Run:  python examples/network_comparison.py
"""

from repro._tables import format_table, format_time
from repro.apps.jacobi import jacobi_smpi, parse_jacobi
from repro.mpibench import BenchSettings, MPIBench, compare_configs
from repro.pevpm import extract_symbolic_model, predict, timing_from_db
from repro.simnet import gigabit_cluster, perseus
from repro.smpi import run_program

ITERS = 100
SIZES = [0, 512, 1024, 2048]
CONFIGS = [(1, 2), (2, 1), (8, 1), (16, 1)]


def main() -> None:
    specs = {
        "fast-ethernet": perseus(16),
        "gigabit": gigabit_cluster(16),
    }

    print("benchmarking both networks...")
    dbs = {}
    for name, spec in specs.items():
        bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=40))
        dbs[name] = bench.sweep_isend(CONFIGS, sizes=SIZES)

    # 1. Raw communication comparison.
    comps = compare_configs(dbs["fast-ethernet"], dbs["gigabit"], "isend", (16, 1))
    rows = [
        [str(c.size), format_time(c.mean_a), format_time(c.mean_b),
         f"{1 / c.mean_ratio:.1f}x", f"{1 / c.tail_ratio:.1f}x"]
        for c in comps
    ]
    print()
    print(format_table(
        ["size (B)", "fast-eth mean", "gigabit mean", "mean speedup", "p99 speedup"],
        rows,
        title="16x1 one-way times: network comparison",
    ))

    # 2. Application prediction on both networks, checked against reality.
    rows = []
    for name, spec in specs.items():
        params = {"iterations": ITERS, "xsize": 256,
                  "serial_time": spec.jacobi_serial_time}
        timing = timing_from_db(dbs[name], mode="distribution")
        pred = predict(parse_jacobi(), 16, timing, runs=4, seed=7, params=params)
        measured = run_program(
            spec, jacobi_smpi, nprocs=16, ppn=1, seed=42, args=(ITERS,)
        ).elapsed
        err = (pred.mean_time - measured) / measured * 100
        rows.append([name, format_time(pred.mean_time),
                     format_time(measured), f"{err:+.1f}%"])
    print()
    print(format_table(
        ["network", "PEVPM predicted", "measured", "error"],
        rows,
        title=f"Jacobi ({ITERS} iters, 16 procs) on both networks",
    ))

    # 3. Parametric what-if: symbolic T(P) sweeps with no extra sampling.
    print()
    print("symbolic what-if: Jacobi time vs machine size")
    header = ["procs"] + list(specs)
    sweep_rows = []
    syms = {}
    for name, spec in specs.items():
        params = {"iterations": ITERS, "xsize": 256,
                  "serial_time": spec.jacobi_serial_time}
        syms[name] = extract_symbolic_model(
            parse_jacobi(), timing_from_db(dbs[name], "distribution"),
            anchor_procs=[2, 8, 16], params=params, runs=3, seed=1,
        )
    for procs in (2, 4, 8, 16, 32, 64):
        sweep_rows.append(
            [str(procs)] + [format_time(syms[n].time(procs)) for n in specs]
        )
    print(format_table(header, sweep_rows))
    print("\n(the 32- and 64-proc rows were never simulated -- that is the")
    print(" symbolic model answering a what-if in milliseconds)")


if __name__ == "__main__":
    main()
