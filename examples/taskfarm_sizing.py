#!/usr/bin/env python3
"""Capacity planning with PEVPM: how many workers should a task farm use?

A practical use of the prediction machinery beyond reproducing figures:
given a bag of heterogeneous tasks, sweep the worker count in the *model*
(cheap) instead of on the *cluster* (expensive), find the sweet spot, and
then validate the chosen configuration with one real (simulated) run.
Also compares against the Amdahl bound to show why a communication-aware
model is needed.

Run:  python examples/taskfarm_sizing.py
"""

from repro._tables import format_table, format_time
from repro.apps.taskfarm import (
    make_tasks,
    taskfarm_model,
    taskfarm_serial_time,
    taskfarm_smpi,
)
from repro.models import amdahl_speedup
from repro.mpibench import BenchSettings, MPIBench
from repro.pevpm import predict, timing_from_db
from repro.simnet import perseus
from repro.smpi import run_program


def main() -> None:
    spec = perseus(32)
    tasks = make_tasks(200, mean=4e-3, cv=0.8, seed=11)
    serial = taskfarm_serial_time(tasks)
    print(f"bag: {len(tasks)} tasks, {format_time(serial)} of total work, "
          f"longest {format_time(max(tasks))}")

    print("\nbenchmarking the cluster once...")
    bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=40))
    db = bench.sweep_isend([(2, 1), (8, 1), (32, 1)], sizes=[0, 512, 2048])
    timing = timing_from_db(db, mode="distribution")

    rows = []
    best = None
    for nprocs in (2, 4, 8, 16, 32):
        pred = predict(taskfarm_model(tasks), nprocs, timing, runs=5, seed=3)
        speedup = serial / pred.mean_time
        eff = speedup / nprocs
        amdahl = amdahl_speedup(0.0, nprocs - 1)  # master does no work
        rows.append([
            str(nprocs),
            format_time(pred.mean_time),
            f"{speedup:.2f}",
            f"{eff * 100:.0f}%",
            f"{amdahl:.0f}",
        ])
        if eff >= 0.5:
            best = nprocs
    print()
    print(format_table(
        ["procs", "predicted makespan", "speedup", "efficiency", "Amdahl bound"],
        rows,
        title="PEVPM worker-count sweep (model only -- no cluster time)",
    ))

    if best is None:
        best = 4
    print(f"\nvalidating the chosen configuration ({best} procs) with one "
          "real run...")
    measured = run_program(spec, taskfarm_smpi, nprocs=best, seed=5,
                           args=(tasks,)).elapsed
    pred = predict(taskfarm_model(tasks), best, timing, runs=5, seed=3)
    err = (pred.mean_time - measured) / measured * 100
    print(f"predicted {format_time(pred.mean_time)}, "
          f"measured {format_time(measured)} ({err:+.1f}%)")


if __name__ == "__main__":
    main()
