#!/usr/bin/env python3
"""Network saturation analysis: Figures 2-4 territory.

Runs MPIBench at large message sizes on a 64-node configuration, shows
the protocol knee at 16 KB, the distribution tails and RTO outliers under
backplane saturation, then uses the fabric monitor and the framing
arithmetic to make the paper's capacity argument about *why* saturation
happens where it does.

Run:  python examples/saturation_analysis.py
"""

import numpy as np

from repro._tables import format_table, format_time
from repro.mpibench import BenchSettings, MPIBench
from repro.mpibench.report import goodput_table, pdf_plots, tail_report
from repro.simnet import ethernet, perseus
from repro.simnet.monitor import NetworkMonitor
from repro.smpi.runtime import MpiRun
from repro.mpibench.drivers import isend_driver


def main() -> None:
    spec = perseus(64)
    sizes = [1024, 4096, 16384, 32768, 65536]

    print("== contention-free reference (2x1) ==")
    bench = MPIBench(spec, seed=1, settings=BenchSettings(reps=40, warmup=4))
    r2 = bench.run_isend(nodes=2, ppn=1, sizes=sizes)
    print(goodput_table(r2, title="2x1 goodput (look for the knee at 16 KB)"))

    print("\n== the same sweep at 64x1 (crossing the switch stack) ==")
    r64 = bench.run_isend(nodes=64, ppn=1, sizes=sizes)
    print(goodput_table(r64, title="64x1 goodput"))
    print()
    print(tail_report(r64))

    print("\n== distribution shapes at 64x1 (Figure 4) ==")
    print(pdf_plots(r64, sizes=[16384, 65536], width=64, height=7))

    # The capacity argument, made with the monitor on a fresh run.
    print("\n== why: the backplane capacity argument ==")
    job = MpiRun(spec, nprocs=64, ppn=1, seed=1)
    job.run(isend_driver, args=([65536], 30, 3, 8, 0.25))
    mon = NetworkMonitor(job.network)
    rows = []
    for rep in mon.backplane_reports():
        rows.append([
            rep.name,
            f"{rep.utilisation * 100:.0f}%",
            format_time(rep.max_backlog),
            f"{rep.queued_fraction * 100:.0f}%",
            "SATURATED" if rep.saturated else "",
        ])
    print(format_table(
        ["stack link", "utilisation", "max backlog", "queued arrivals", ""],
        rows,
    ))

    # Per-flow wire rate, the paper's "24 x 84.25 Mbit/s" arithmetic.
    goodput = 16384 / r2.histograms[16384].mean  # bytes/s per flow at 16 KB
    wire = ethernet.wire_rate_for_goodput(16384, goodput, spec.tcp)
    overhead = ethernet.framing_overhead_rate(16384, goodput, spec.tcp)
    n_flows = 24  # flows crossing one fully-utilised stacking link
    print(f"\nper-flow 16 KB goodput: {goodput * 8 / 1e6:.1f} Mbit/s "
          f"(+{overhead * 8 / 1e6:.2f} Mbit/s framing)")
    print(f"{n_flows} flows x {wire * 8 / 1e6:.1f} Mbit/s = "
          f"{n_flows * wire * 8 / 1e9:.2f} Gbit/s offered vs "
          f"{spec.backplane_bandwidth * 8 / 1e9:.1f} Gbit/s backplane")
    if n_flows * wire > 0.9 * spec.backplane_bandwidth:
        print("=> the stack link is the bottleneck, exactly the paper's "
              "diagnosis of Figure 4.")


if __name__ == "__main__":
    main()
