"""repro: reproduction of Grove & Coddington's MPIBench + PEVPM.

The package has four layers (see DESIGN.md):

* :mod:`repro.simnet` -- discrete-event cluster/network simulator (the
  stand-in for the Perseus hardware);
* :mod:`repro.smpi`   -- a simulated MPI runtime (the stand-in for MPICH);
* :mod:`repro.mpibench` -- the MPIBench communication benchmark, producing
  probability distributions of individual operation times;
* :mod:`repro.pevpm`  -- the Performance Evaluating Virtual Parallel
  Machine, the paper's performance-prediction contribution.

Plus :mod:`repro.models` (simple analytic baselines) and :mod:`repro.apps`
(Jacobi / FFT / task-farm example applications).
"""

__version__ = "1.0.0"
