"""The asyncio prediction server.

A stdlib-only HTTP/1.1 server (hand-rolled request parsing over
``asyncio.start_server`` streams -- no ``http.server``) exposing the
PEVPM engine and the MPIBench distribution database:

* ``POST /predict``       -- serve a PEVPM prediction (JSON in/out),
  optionally against a named registry database (``"db": "gigabit@v1"``);
* ``GET  /distributions`` -- query the default distribution database
  (:meth:`~repro.mpibench.results.DistributionDB.describe`) and list
  the registry fleet;
* ``POST /distributions`` -- upload a measured results document or a
  ``simnet`` topology spec fitted server-side (:mod:`repro.registry`);
* ``GET/DELETE /distributions/{ref}`` and
  ``PUT /distributions/{ref}/alias`` -- inspect, remove, and hot-swap
  promote registry databases, per-tenant via ``X-Repro-Tenant``;
* ``GET  /models``         -- the workload catalogue (and
  ``GET /models/{name}`` for one model's defaulted parameters);
* ``POST /programs``       -- import a recorded MPI trace
  (:mod:`repro.trace_import`; invalid traces 422), then predict it with
  ``{"model": "imported", "model_params": {"program": <fingerprint>}}``;
  ``GET/DELETE /programs/{fingerprint}`` inspect and remove;
* ``GET  /healthz``       -- liveness + configuration summary;
* ``GET  /metrics``       -- Prometheus text exposition;
* ``GET  /trace``         -- recent request traces as JSON (only when
  the service was built with a :class:`~repro.obs.Tracer`; see
  :mod:`repro.obs`).

The ``/predict`` funnel, in order: parse/validate -> content key ->
LRU/disk cache (:mod:`.cache`) -> singleflight (:mod:`.dedup`) ->
admission (:mod:`.jobs`, 429 when full) -> micro-batcher
(:mod:`.batcher`) -> :func:`~repro.pevpm.parallel.evaluate_groups`.
Deadlines produce 504 without cancelling the evaluation (the result
still warms the cache).  Every stage preserves the reproducibility
contract: a served response's ``times`` are bit-identical to the same
``predict(...)`` call made directly with the seed and engine flags the
response echoes back.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time as _time
from dataclasses import replace
from urllib.parse import parse_qsl, urlsplit

from ..mpibench.results import DistributionDB
from ..obs import ENGINE_PHASES, JsonLogger, Tracer, clean_trace_id, merge_phases
from ..pevpm import parallel as _parallel
from ..pevpm.machine import ModelDeadlock
from ..pevpm.parallel import (
    PredictionCache,
    RunGroup,
    as_seed_sequence,
    evaluate_groups,
)
from ..pevpm.predict import (
    build_prediction,
    evaluate_with_precision,
    precision_doc,
    prediction_doc,
    prediction_from_doc,
)
from ..pevpm.timing import timing_from_db
from ..registry import (
    RegistryError,
    RegistryStore,
    TenantManager,
    TenantQuota,
    TenantThrottled,
    UnknownRef,
    clean_tenant,
)
from ..registry.store import NotOwner
from ..simnet import perseus
from ..trace_import import ProgramStore, TraceError, parse_trace
from .batcher import MicroBatcher
from .cache import TieredCache
from .dedup import LeaderCancelled, SingleFlight
from .faults import FaultPlan
from .jobs import BreakerOpen, CircuitBreaker, JobQueue, QueueFull
from .metrics import ServiceMetrics
from .records import MODELS, PredictRequest, RequestError, prediction_record

__all__ = [
    "PredictionService",
    "ServiceServer",
    "read_http_request",
    "render_http_response",
]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def read_http_request(reader):
    """Read one HTTP/1.1 request from an asyncio stream.

    Returns ``(method, target, headers, body)`` with lower-cased header
    names, or ``None`` on a cleanly closed connection.  Shared between
    the shard server and the front router so both ends of a forwarded
    request parse identically.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise ConnectionError("malformed request line")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def render_http_response(
    status: int,
    payload: bytes,
    content_type: str,
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one HTTP/1.1 response (Content-Length framed)."""
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


class PredictionService:
    """Request funnel + engine glue; protocol-agnostic core of the server."""

    def __init__(
        self,
        db: DistributionDB,
        spec=None,
        *,
        workers: int | None = 1,
        cache_dir=None,
        lru_size: int = 1024,
        max_batch: int = 8,
        max_wait: float = 0.002,
        queue_limit: int = 64,
        deadline_s: float = 30.0,
        retry_after: float = 1.0,
        batching: bool = True,
        dedup: bool = True,
        caching: bool = True,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 2.0,
        fault_injector=None,
        tracer: Tracer | None = None,
        log_json: bool = False,
        log_stream=None,
        shard_id: int | None = None,
        registry: RegistryStore | None = None,
        tenants: TenantManager | None = None,
        tenant_rate: float = 0.0,
        programs: ProgramStore | None = None,
    ):
        self.db = db
        self.spec = spec if spec is not None else perseus()
        self.workers = workers
        self.deadline_s = deadline_s
        self.caching = caching
        self.dedup_enabled = dedup
        #: identity within a sharded deployment (``None`` standalone):
        #: stamped onto every Prometheus series so a router-level
        #: aggregation of N shards stays a valid, collision-free scrape
        self.shard_id = shard_id
        self.metrics = ServiceMetrics(
            constant_labels=(
                None if shard_id is None else {"shard_id": str(shard_id)}
            )
        )
        #: ``None`` (the default) keeps every tracing call site on its
        #: guarded no-op path -- the pre-observability hot path.
        self.tracer = tracer
        self.logger = JsonLogger(log_stream) if log_json else None
        if tracer is not None:
            self.metrics.register_gauge(
                "repro_trace_buffer_traces", lambda: len(tracer)
            )
        self.faults = fault_injector
        if fault_injector is not None:
            if fault_injector.cache_root is None and cache_dir:
                from pathlib import Path

                fault_injector.cache_root = Path(cache_dir)
            # Pool-kill faults fire inside the engine module.
            _parallel.install_fault_injector(fault_injector)
        self.cache = TieredCache(
            lru_size if caching else 0,
            PredictionCache(cache_dir) if (caching and cache_dir) else None,
            self.metrics,
            faults=fault_injector,
        )
        self.dedup = SingleFlight(self.metrics)
        # The registry is the data plane the service reads through: the
        # injected startup db is entry zero (registered under its
        # content fingerprint and frozen -- post-registration mutation
        # would silently desync every cache key derived from it).  With
        # no explicit store the registry is in-memory, preserving the
        # original single-database behaviour with the fleet API on top.
        self.registry = registry if registry is not None else RegistryStore()
        self.db_fingerprint = db.fingerprint()
        self.registry.put(db, tenant="builtin", source="startup")
        try:
            self.registry.resolve("default")
        except (KeyError, ValueError):
            # only seed the alias when absent: a restart must not
            # silently revert an operator's "default" promotion
            self.registry.set_alias(
                "default", self.db_fingerprint, tenant="builtin"
            )
        self.tenants = (
            tenants
            if tenants is not None
            else TenantManager(self.registry, TenantQuota(rate=tenant_rate))
        )
        # Imported trace programs share the registry's disk root (one
        # ``--registry-root`` wires both planes, so every shard of a
        # sharded deployment sees every uploaded program); with an
        # in-memory registry the program store is in-memory too.
        if programs is not None:
            self.programs = programs
        elif self.registry.root is not None:
            self.programs = ProgramStore(self.registry.root / "programs")
        else:
            self.programs = ProgramStore()
        self.jobs = JobQueue(
            queue_limit,
            self.metrics,
            retry_after=retry_after,
            limiter=self.tenants.admit,
        )
        self.metrics.register_gauge(
            "repro_registry_dbs", lambda: len(self.registry)
        )
        self.metrics.register_gauge(
            "repro_registry_bytes", lambda: self.registry.stats()["bytes"]
        )
        if (
            fault_injector is not None
            and getattr(fault_injector, "registry_root", None) is None
        ):
            fault_injector.registry_root = self.registry.root
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            metrics=self.metrics,
        )
        #: set by graceful shutdown: new predictions are shed with 503
        self.draining = False
        self.batcher = MicroBatcher(
            self._evaluate_requests,
            self.metrics,
            max_batch=max_batch,
            max_wait=max_wait,
            enabled=batching,
        )
        # Evaluator-thread caches: model trees and timing instances are
        # deterministic per key and reused across requests (both engines
        # call ``timing.reset()`` at run start, so reuse cannot change
        # the draws of any individual evaluation).  Keys carry the
        # cluster / db fingerprint so registry-routed requests never
        # share a model or timing with the wrong database.
        self._models: dict[str, tuple[object, dict | None]] = {}
        self._timings: dict[tuple, object] = {}
        self._specs: dict[str, object] = {}

    # -- engine side (evaluator thread) -----------------------------------------
    def _spec_for(self, cluster: str):
        """Topology spec for a registry database's cluster name.

        The startup database keeps the injected spec exactly (so the
        pre-registry service is byte-for-byte unchanged); other
        clusters map through the registry's topology factories, falling
        back to the injected spec for measured uploads whose cluster
        the simulator does not know.
        """
        if cluster == self.spec.name:
            return self.spec
        spec = self._specs.get(cluster)
        if spec is None:
            from ..registry.seeds import spec_for_cluster

            spec = self._specs[cluster] = spec_for_cluster(
                cluster, default=self.spec
            )
        return spec

    def _group_for(self, req: PredictRequest) -> RunGroup:
        db = getattr(req, "_registry_db", None) or self.db
        fingerprint = (
            getattr(req, "_registry_fpr", None) or self.db_fingerprint
        )
        spec = self._spec_for(db.cluster)
        model_key = json.dumps(
            [req.model, db.cluster, sorted(req.model_params.items())],
            sort_keys=True,
        )
        built = self._models.get(model_key)
        if built is None:
            program = getattr(req, "_trace_program", None)
            if program is not None:
                # Imported program pinned at admission (see
                # _resolve_request_program); its ref is in model_params,
                # so the cache key separates programs correctly.
                built = (program.model(), None)
            else:
                built = req.build_model(spec)
            self._models[model_key] = built
        model, vm_params = built
        timing_key = (
            fingerprint, req.timing_mode, req.timing_source, req.nprocs,
        )
        timing = self._timings.get(timing_key)
        if timing is None:
            timing = self._timings[timing_key] = timing_from_db(
                db,
                mode=req.timing_mode,
                source=req.timing_source,
                nprocs=req.nprocs,
            )
        return RunGroup(
            model=model,
            nprocs=req.nprocs,
            timing=timing,
            seed=as_seed_sequence(req.seed),
            runs=req.runs,
            params=vm_params,
            nic_serialisation=req.nic_serialisation,
            ppn=req.ppn,
            vector_runs=req.vector_runs,
            vector_batch=req.vector_batch,
            compiled=req.compiled,
            # Per-phase host-time attribution rides along whenever the
            # service is tracing; it is pure wall-clock measurement, so
            # the evaluation's draws (and times) are unchanged.
            profile=self.tracer is not None and self.tracer.enabled,
        )

    def _finish(self, group: RunGroup, outcomes, wall: float) -> dict:
        t0 = _time.perf_counter()
        pred = build_prediction(group, outcomes, wall)
        doc = dict(prediction_doc(group, pred), wall_time=wall)
        phases = merge_phases(outcomes)
        if phases:
            phases["serialize"] = _time.perf_counter() - t0
            doc["phases"] = phases
        return doc

    def _finish_adaptive(self, group: RunGroup, target, result) -> dict:
        """Document for one adaptive evaluation: the finished group is
        the equivalent fixed request at the achieved total, plus the
        ``precision`` provenance block (target, per-round RSE trail,
        convergence)."""
        t0 = _time.perf_counter()
        finished = replace(group, runs=result.runs)
        pred = build_prediction(finished, result.outcomes, result.wall)
        doc = dict(prediction_doc(finished, pred), wall_time=result.wall)
        doc["precision"] = precision_doc(target, result)
        phases = merge_phases(result.outcomes)
        if phases:
            phases["serialize"] = _time.perf_counter() - t0
            doc["phases"] = phases
        return doc

    def _evaluate_requests(self, reqs: list[PredictRequest]) -> list:
        """Evaluate one micro-batch (runs on the evaluator thread).

        All requests' groups go through **one**
        :func:`~repro.pevpm.predict.evaluate_with_precision` call:
        fixed-``runs`` groups evaluate in its first round, and adaptive
        groups' refinement increments coalesce -- every round is a
        single ``evaluate_groups`` dispatch covering all still-active
        requests, so concurrent adaptive refinements share the pool just
        as fixed batch-mates do.  A failure (e.g. a deadlocking model)
        falls back to per-request evaluation so one poisoned request
        cannot fail its batch-mates.  Returns one document or exception
        per request.
        """
        if self.faults is not None:
            self.faults.on_evaluate()
        results: list = [None] * len(reqs)
        fixed_groups: list[RunGroup] = []
        fixed_idx: list[int] = []
        adaptive_pairs: list = []
        adaptive_idx: list[int] = []
        for i, req in enumerate(reqs):
            try:
                group = self._group_for(req)
                target = req.precision_target()
            except Exception as exc:
                results[i] = exc
                continue
            if target is not None:
                adaptive_pairs.append((group, target))
                adaptive_idx.append(i)
            else:
                fixed_groups.append(group)
                fixed_idx.append(i)
        if not fixed_groups and not adaptive_pairs:
            return results
        try:
            fixed_out, fixed_walls, adaptive_results = evaluate_with_precision(
                fixed_groups,
                adaptive_pairs,
                workers=self.workers,
                on_rebuild=self._pool_rebuilt,
            )
        except Exception:
            for i, group in zip(fixed_idx, fixed_groups):
                try:
                    t1 = _time.perf_counter()
                    outcomes = evaluate_groups(
                        [group],
                        workers=self.workers,
                        on_rebuild=self._pool_rebuilt,
                    )[0]
                    results[i] = self._finish(
                        group, outcomes, _time.perf_counter() - t1
                    )
                except Exception as exc:
                    results[i] = exc
            for i, (group, target) in zip(adaptive_idx, adaptive_pairs):
                try:
                    _, _, singles = evaluate_with_precision(
                        [],
                        [(group, target)],
                        workers=self.workers,
                        on_rebuild=self._pool_rebuilt,
                    )
                    results[i] = self._finish_adaptive(group, target, singles[0])
                except Exception as exc:
                    results[i] = exc
        else:
            for i, group, outcomes, wall in zip(
                fixed_idx, fixed_groups, fixed_out, fixed_walls
            ):
                results[i] = self._finish(group, outcomes, wall)
            for i, (group, target), result in zip(
                adaptive_idx, adaptive_pairs, adaptive_results
            ):
                results[i] = self._finish_adaptive(group, target, result)
        return results

    def _pool_rebuilt(self, ordinal: int) -> None:
        """Engine recovery hook: a broken process pool was rebuilt."""
        self.metrics.inc("repro_pool_rebuilds_total")

    # -- request funnel (event-loop thread) -----------------------------------
    async def _engine_submit(
        self, req: PredictRequest, trace=None, tenant: str | None = None
    ) -> dict:
        """Admit one request to the engine, with breaker accounting.

        The breaker watches engine *health*: infrastructure failures
        (evaluator crash, unrecoverable pool loss) count against it;
        request-shaped outcomes (deadlocking models, bad requests,
        shedding, throttling, cancellation) do not.
        """
        if not self.breaker.allow():
            raise BreakerOpen(self.breaker.retry_after)
        try:
            with self.jobs.admit(trace, tenant=tenant):
                doc = await self.batcher.submit(req, trace)
        except (
            QueueFull, TenantThrottled, ModelDeadlock, RequestError,
            asyncio.CancelledError,
        ):
            # Non-counting outcome: if this request was the half-open
            # probe, free the probe slot so the next request can probe
            # (otherwise the breaker wedges open until restart).
            self.breaker.release_probe()
            raise
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return doc

    async def _predict(
        self, req: PredictRequest, key: str, trace=None,
        tenant: str | None = None,
    ) -> tuple[dict, str]:
        """Resolve one validated request to (document, served-from)."""
        if self.caching:
            doc = self.cache.get(key, trace)
            if doc is not None:
                return doc, "cache"
        if not self.dedup_enabled:
            doc = await self._engine_submit(req, trace, tenant)
            if self.caching:
                self._cache_store(req, key, doc)
            return doc, "engine"
        leader, fut = self.dedup.claim(key, trace)
        if not leader:
            if trace is None:
                doc, _ = await fut
            else:
                with trace.span("singleflight.wait"):
                    doc, _ = await fut
            return doc, "singleflight"
        try:
            doc = await self._engine_submit(req, trace, tenant)
            if self.caching:
                self._cache_store(req, key, doc)
            self.dedup.resolve(key, (doc, "engine"))
            return doc, "engine"
        except BaseException as exc:
            self.dedup.reject(key, exc)
            raise

    def _cache_store(self, req: PredictRequest, key: str, doc: dict) -> None:
        """Persist one engine result in the cache tiers.

        Adaptive results are additionally stored -- with the
        ``precision`` provenance stripped -- under the key of the
        *equivalent fixed request* at the achieved run count: adaptive
        and fixed evaluations of the same content are bit-identical by
        construction, so a later ``runs=N`` request is a cache hit
        instead of a re-evaluation.
        """
        self.cache.put(key, doc)
        if req.adaptive and isinstance(doc.get("times"), list):
            fixed_doc = {k: v for k, v in doc.items() if k != "precision"}
            fingerprint = (
                getattr(req, "_registry_fpr", None) or self.db_fingerprint
            )
            self.cache.put(
                req.fixed_key(fingerprint, len(doc["times"])), fixed_doc
            )

    async def handle_predict(
        self, body: object, headers: dict | None = None
    ) -> tuple[int, dict, dict]:
        """Full ``/predict`` handling: returns (status, headers, doc).

        *headers* (lower-cased names) carries trace propagation: a valid
        ``x-repro-trace`` value pins the trace ID (so client and server
        share one handle on the request) and ``x-repro-attempt`` is the
        client's retry ordinal, logged but never interpreted.  When the
        service has a tracer, the response echoes the trace ID back as
        ``X-Repro-Trace`` and the finished trace lands in the ring
        buffer behind ``GET /trace``.
        """
        headers = headers or {}
        trace = None
        if self.tracer is not None:
            trace = self.tracer.start_trace(
                clean_trace_id(headers.get("x-repro-trace"))
            )
        t_trace = None if trace is None else trace.now()
        t0 = _time.perf_counter()
        status, extra, doc, source = await self._predict_outcome(
            body, trace, headers.get("x-repro-tenant")
        )
        if trace is not None:
            extra = dict(extra)
            extra["X-Repro-Trace"] = trace.trace_id
            self._finish_trace(trace, t_trace, status, source)
        if self.logger is not None:
            self._log_predict(
                trace, headers, status, source, doc,
                _time.perf_counter() - t0,
            )
        return status, extra, doc

    def _finish_trace(self, trace, start, status, source) -> None:
        """Close out one request's trace: add the covering ``request``
        span, feed every stage duration into the per-stage histograms
        and retire the trace into the ring buffer."""
        attrs = {"status": status}
        if source is not None:
            attrs["served_from"] = source
        trace.add_span("request", start, trace.now(), **attrs)
        for stage, seconds in trace.stage_durations().items():
            self.metrics.observe_stage(stage, seconds)
        self.tracer.finish(trace)

    def _attach_engine_phases(self, trace, doc) -> None:
        """Subdivide the ``engine`` span into sweep/match/sample/serialize
        children from the evaluator-side phase buckets.  The real phases
        interleave finely, so the children are *synthetic*: cumulative
        offsets anchored at the engine span's start, flagged
        ``synthetic=True`` in the export."""
        phases = doc.get("phases") if isinstance(doc, dict) else None
        engine = trace.find("engine")
        if not phases or engine is None:
            return
        at = engine.start
        for phase in (*ENGINE_PHASES, "serialize"):
            seconds = phases.get(phase, 0.0)
            if seconds <= 0.0:
                continue
            trace.add_span(
                f"engine.{phase}", at, at + seconds,
                parent=engine, synthetic=True,
            )
            at += seconds

    def _attach_adaptive_rounds(self, trace, doc) -> None:
        """Subdivide the ``engine`` span of an adaptive evaluation into
        one synthetic child per refinement round, carrying the round's
        cumulative run total, added runs, and achieved RSE -- the
        stopping rule's decision trail in the waterfall."""
        precision = doc.get("precision") if isinstance(doc, dict) else None
        rounds = (precision or {}).get("rounds")
        engine = trace.find("engine")
        if not rounds or engine is None:
            return
        at = engine.start
        for ordinal, rnd in enumerate(rounds):
            seconds = float(rnd.get("wall", 0.0))
            if seconds <= 0.0:
                continue
            trace.add_span(
                f"engine.round[{ordinal}]", at, at + seconds,
                parent=engine, synthetic=True,
                runs=rnd.get("runs"), added=rnd.get("added"),
                rse=rnd.get("rse"),
            )
            at += seconds

    def _log_predict(
        self, trace, headers, status, source, doc, elapsed
    ) -> None:
        """One structured JSON line per served ``/predict``."""
        attempt = headers.get("x-repro-attempt")
        try:
            attempt = None if attempt is None else int(attempt)
        except (TypeError, ValueError):
            attempt = None
        batch_id = tier = None
        if trace is not None:
            engine = trace.find("engine")
            if engine is not None:
                batch_id = engine.attrs.get("batch_id")
            cache_span = trace.find("cache")
            if cache_span is not None:
                tier = cache_span.attrs.get("tier")
        error = (
            doc.get("error")
            if isinstance(doc, dict) and status != 200
            else None
        )
        self.logger.log(
            "predict",
            trace_id=None if trace is None else trace.trace_id,
            status=status,
            served_from=source,
            cache_tier=tier,
            batch_id=batch_id,
            attempt=attempt,
            elapsed_ms=round(elapsed * 1e3, 3),
            error=error,
        )

    async def _predict_outcome(
        self, body: object, trace=None, tenant_header: str | None = None
    ) -> tuple[int, dict, dict, str | None]:
        """The ``/predict`` decision: (status, headers, doc, served-from)."""
        if self.draining:
            # Shutdown in progress: answer fast and well-formed instead
            # of letting the socket hang while the engine drains.
            self.metrics.inc("repro_drain_rejected_total")
            return (
                503,
                {"Retry-After": "1", "Connection": "close"},
                {"error": "server draining"},
                None,
            )
        try:
            tenant = clean_tenant(tenant_header)
        except RegistryError as exc:
            self.metrics.inc("repro_bad_requests_total")
            return 400, {}, {"error": str(exc)}, None
        self.metrics.inc("repro_tenant_requests_total", tenant=tenant)
        try:
            req = PredictRequest.from_dict(body)
        except RequestError as exc:
            self.metrics.inc("repro_bad_requests_total")
            return 400, {}, {"error": str(exc)}, None
        try:
            fingerprint, db = self._resolve_request_db(req)
        except UnknownRef as exc:
            self.metrics.inc("repro_registry_misses_total")
            return 404, {}, {"error": str(exc)}, None
        except RegistryError as exc:
            self.metrics.inc("repro_bad_requests_total")
            return 400, {}, {"error": str(exc)}, None
        # Pin the resolved database onto the request: the evaluator
        # thread reads it from here, so an alias promotion between
        # admission and evaluation cannot swap databases under an
        # in-flight request -- its response stays bit-identical to the
        # fingerprint its key (and record) names.
        req._registry_db = db
        req._registry_fpr = fingerprint
        try:
            self._resolve_request_program(req)
        except UnknownRef as exc:
            self.metrics.inc("repro_program_misses_total")
            return 404, {}, {"error": str(exc)}, None
        except (RequestError, RegistryError) as exc:
            self.metrics.inc("repro_bad_requests_total")
            return 400, {}, {"error": str(exc)}, None
        key = req.key(fingerprint)
        deadline = req.deadline_s if req.deadline_s is not None else self.deadline_s
        # Shield the resolution task: a caller hitting its deadline must
        # not cancel a shared evaluation; the late result still lands in
        # the cache for the next attempt.
        task = asyncio.ensure_future(self._predict(req, key, trace, tenant))
        try:
            doc, source = await asyncio.wait_for(
                asyncio.shield(task), timeout=deadline
            )
        except asyncio.TimeoutError:
            self.metrics.inc("repro_deadline_exceeded_total")
            # Observe (and discard) a late error so asyncio never logs a
            # "never retrieved" warning for the shielded task.
            task.add_done_callback(
                lambda t: None if t.cancelled() else t.exception()
            )
            return (
                504,
                {},
                {"error": "deadline exceeded", "deadline_s": deadline},
                None,
            )
        except QueueFull as exc:
            return (
                429,
                {"Retry-After": f"{exc.retry_after:g}"},
                {
                    "error": "queue full",
                    "inflight_limit": exc.limit,
                    "retry_after_s": exc.retry_after,
                },
                None,
            )
        except TenantThrottled as exc:
            self.metrics.inc("repro_tenant_throttled_total", tenant=tenant)
            retry_after = max(exc.retry_after, 0.001)
            return (
                429,
                {"Retry-After": f"{retry_after:.3g}"},
                {"error": str(exc), "retry_after_s": retry_after},
                None,
            )
        except BreakerOpen as exc:
            retry_after = max(exc.retry_after, 0.1)
            return (
                503,
                {"Retry-After": f"{retry_after:.3g}"},
                {
                    "error": "circuit breaker open",
                    "retry_after_s": retry_after,
                },
                None,
            )
        except LeaderCancelled as exc:
            self.metrics.inc("repro_leader_cancelled_total")
            return (
                503,
                {"Retry-After": "0.1"},
                {"error": str(exc)},
                None,
            )
        except ModelDeadlock as exc:
            self.metrics.inc("repro_model_deadlocks_total")
            return (
                422, {}, {"error": "model deadlock", "detail": str(exc)}, None
            )
        except RequestError as exc:
            self.metrics.inc("repro_bad_requests_total")
            return 400, {}, {"error": str(exc)}, None
        except Exception as exc:
            self.metrics.inc("repro_evaluation_errors_total")
            return 500, {}, {"error": f"evaluation failed: {exc}"}, None
        if trace is not None and source == "engine":
            # The raw engine document carries the evaluator-side phase
            # buckets; attach them while it is still in scope (the
            # response record below deliberately omits them).
            self._attach_engine_phases(trace, doc)
            self._attach_adaptive_rounds(trace, doc)
        pred = prediction_from_doc(doc)
        pred.cached = source != "engine"
        pred.wall_time = float(doc.get("wall_time", 0.0))
        pred.precision = doc.get("precision")
        if source == "engine":
            # Spend accounting: how many MC runs each engine-served
            # prediction cost, split by who decided the count.
            self.metrics.observe_runs(
                pred.runs, "adaptive" if req.adaptive else "fixed"
            )
        record = prediction_record(
            pred,
            seed=req.seed,
            vector_runs=req.vector_runs,
            vector_batch=req.vector_batch,
            compiled=req.compiled,
            nic_serialisation=req.nic_serialisation,
            workers=self.workers,
            extra={
                "model": req.model,
                "model_params": req.model_params,
                "ppn": req.ppn,
                "timing_mode": req.timing_mode,
                "timing_source": req.timing_source,
                "served_from": source,
                "db_fingerprint": fingerprint,
                "request_key": key,
            },
        )
        if req.db is not None:
            record["db_ref"] = req.db
        return 200, {}, record, source

    def _resolve_request_db(self, req: PredictRequest):
        """(fingerprint, DistributionDB) for one request's ``db`` ref.

        Ref-less requests get the injected startup database without
        touching the registry -- the original single-db hot path.
        """
        if req.db is None:
            return self.db_fingerprint, self.db
        fingerprint = self.registry.resolve(req.db)
        if fingerprint == self.db_fingerprint:
            return fingerprint, self.db
        return fingerprint, self.registry.get(fingerprint)

    def _resolve_request_program(self, req: PredictRequest) -> None:
        """Pin the imported program of a ``model=imported`` request.

        Resolved once at admission (like the database) so a concurrent
        delete cannot swap the model under an in-flight request, and the
        evaluator thread never touches the store.  The request's
        ``nprocs`` must equal the trace's recorded rank count -- an
        imported program has no meaning at any other scale.
        """
        if req.model != "imported":
            return
        program = self.programs.get(req.model_params["program"])
        if req.nprocs != program.nprocs:
            raise RequestError(
                f"program {program.fingerprint[:16]}... was recorded on "
                f"{program.nprocs} rank(s); request nprocs={req.nprocs}"
            )
        req._trace_program = program

    def handle_distributions(self, query: dict) -> tuple[int, dict, dict]:
        if "size" not in query:
            ops = self.db.ops()
            return 200, {}, {
                "cluster": self.db.cluster,
                "ops": ops,
                "configs": {
                    op: [f"{n}x{p}" for n, p in self.db.configs(op)] for op in ops
                },
                "db_fingerprint": self.db_fingerprint,
                "registry": {
                    "dbs": self.registry.entries(),
                    "aliases": {
                        alias: entry.get("fingerprint")
                        for alias, entry in self.registry.aliases().items()
                    },
                },
            }
        try:
            doc = self.db.describe(
                query.get("op", "isend"),
                int(query["size"]),
                int(query.get("contention", 2)),
                intra=query.get("intra", "0") not in ("0", "false", ""),
            )
        except (KeyError, ValueError) as exc:
            return 400, {}, {"error": str(exc)}
        return 200, {}, doc

    # -- registry surface --------------------------------------------------------
    async def handle_registry_upload(
        self, body: object, tenant: str
    ) -> tuple[int, dict, dict]:
        """``POST /distributions``: register a database for *tenant*.

        Two payload shapes: ``{"results": <DistributionDB document>}``
        uploads measured results verbatim; ``{"topology": {"spec": ...,
        "n_nodes": ..., "reps": ..., "seed": ...}}`` simulates the named
        ``simnet`` topology with MPIBench and fits its distributions
        server-side (off the event loop -- fitting takes seconds).  An
        optional ``"alias"`` points a name at the new fingerprint in the
        same call.  Storage quota is checked before any byte is written.
        """
        if not isinstance(body, dict):
            return 400, {}, {"error": "body must be a JSON object"}
        from ..registry import QuotaExceeded
        from ..registry.seeds import fit_topology_db

        alias = body.get("alias")
        try:
            if "results" in body:
                db = DistributionDB.from_doc(body["results"])
                source = "upload"
            elif "topology" in body:
                topo = body["topology"]
                if not isinstance(topo, dict):
                    raise RegistryError("topology must be a JSON object")
                n_nodes = topo.get("n_nodes")
                db = await asyncio.to_thread(
                    fit_topology_db,
                    topo.get("spec", "perseus"),
                    n_nodes=None if n_nodes is None else int(n_nodes),
                    reps=int(topo.get("reps", 24)),
                    seed=int(topo.get("seed", 7)),
                )
                source = f"topology:{topo.get('spec', 'perseus')}"
            else:
                raise RegistryError(
                    "body needs 'results' (a measured DistributionDB "
                    "document) or 'topology' (a simnet spec to fit)"
                )
            meta = self.registry.put(
                db,
                tenant=tenant,
                source=source,
                check=lambda nbytes: self.tenants.check_upload(
                    tenant, nbytes
                ),
            )
            doc = dict(meta)
            if alias is not None:
                self.registry.set_alias(
                    str(alias), doc["fingerprint"], tenant=tenant
                )
                doc["alias"] = str(alias)
        except QuotaExceeded as exc:
            self.metrics.inc("repro_registry_quota_rejections_total")
            return (
                429,
                {"Retry-After": f"{exc.retry_after:g}"},
                {"error": str(exc), "retry_after_s": exc.retry_after},
            )
        except (RegistryError, ValueError, TypeError) as exc:
            return 400, {}, {"error": str(exc)}
        self.metrics.inc("repro_registry_uploads_total", tenant=tenant)
        return 200, {}, doc

    def handle_registry_get(
        self, ref: str, query: dict
    ) -> tuple[int, dict, dict]:
        """``GET /distributions/{ref}``: meta + aliases; with ``size=``
        (plus the usual ``op``/``contention``/``intra``), a distribution
        description against *that* database."""
        try:
            fingerprint = self.registry.resolve(ref)
        except UnknownRef as exc:
            return 404, {}, {"error": str(exc)}
        except RegistryError as exc:
            return 400, {}, {"error": str(exc)}
        doc = dict(self.registry.meta(fingerprint) or {"fingerprint": fingerprint})
        doc["aliases"] = sorted(
            alias
            for alias, entry in self.registry.aliases().items()
            if entry.get("fingerprint") == fingerprint
        )
        if "size" in query:
            try:
                db = self.registry.get(fingerprint)
                doc["distribution"] = db.describe(
                    query.get("op", "isend"),
                    int(query["size"]),
                    int(query.get("contention", 2)),
                    intra=query.get("intra", "0") not in ("0", "false", ""),
                )
            except UnknownRef as exc:
                return 404, {}, {"error": str(exc)}
            except (KeyError, ValueError) as exc:
                return 400, {}, {"error": str(exc)}
        return 200, {}, doc

    def handle_registry_delete(
        self, ref: str, tenant: str
    ) -> tuple[int, dict, dict]:
        """``DELETE /distributions/{ref}``: remove a tenant's database
        (and any aliases pointing at it)."""
        try:
            fingerprint = self.registry.delete(ref, tenant=tenant)
        except UnknownRef as exc:
            return 404, {}, {"error": str(exc)}
        except NotOwner as exc:
            return 403, {}, {"error": str(exc)}
        except RegistryError as exc:
            return 400, {}, {"error": str(exc)}
        self.metrics.inc("repro_registry_deletes_total", tenant=tenant)
        return 200, {}, {"deleted": fingerprint}

    def handle_registry_alias(
        self, ref: str, body: object, tenant: str
    ) -> tuple[int, dict, dict]:
        """``PUT /distributions/{ref}/alias``: hot-swap promotion.

        Atomically points ``body["alias"]`` at *ref*'s fingerprint; the
        next request resolving the alias serves the new database, with
        zero restart and no effect on requests already pinned to the old
        fingerprint.
        """
        if not isinstance(body, dict) or not isinstance(
            body.get("alias"), str
        ):
            return 400, {}, {"error": "body must be {\"alias\": <name>}"}
        alias = body["alias"]
        try:
            previous = self.registry.resolve(alias)
        except (KeyError, ValueError):
            previous = None
        try:
            fingerprint = self.registry.set_alias(alias, ref, tenant=tenant)
        except UnknownRef as exc:
            return 404, {}, {"error": str(exc)}
        except RegistryError as exc:
            return 400, {}, {"error": str(exc)}
        self.metrics.inc("repro_registry_promotions_total", tenant=tenant)
        return 200, {}, {
            "alias": alias,
            "fingerprint": fingerprint,
            "previous": previous,
        }

    # -- workload surface --------------------------------------------------------
    def handle_models(self, name: str | None = None) -> tuple[int, dict, dict]:
        """``GET /models`` / ``GET /models/{name}``: the registered
        workload catalogue with its defaulted parameters -- what a
        client must know to shape a ``/predict`` body."""
        if name is None:
            return 200, {}, {
                "models": {
                    model: {"defaults": dict(defaults)}
                    for model, (defaults, _) in sorted(MODELS.items())
                },
            }
        if name not in MODELS:
            return 404, {}, {
                "error": f"no model {name!r}; known: {sorted(MODELS)}"
            }
        defaults, _ = MODELS[name]
        doc = {"model": name, "defaults": dict(defaults)}
        if name == "imported":
            doc["programs"] = self.programs.entries()
        return 200, {}, doc

    def handle_program_upload(
        self, body: object, tenant: str
    ) -> tuple[int, dict, dict]:
        """``POST /programs``: import a recorded MPI trace for *tenant*.

        Body: ``{"trace": "<text>"}`` -- JSON-lines or the OTF2-like
        text subset, auto-detected -- with an optional ``"name"``.  A
        malformed or semantically invalid trace (unknown ranks,
        unmatched sends, a recv-cycle deadlock) is a 422 carrying the
        importer's diagnosis; storage quota is checked before any byte
        is written, exactly like a distribution upload.
        """
        if not isinstance(body, dict):
            return 400, {}, {"error": "body must be a JSON object"}
        text = body.get("trace")
        if not isinstance(text, str) or not text.strip():
            return 400, {}, {
                "error": "body needs 'trace': the recorded event log as text "
                "(JSON lines or the OTF2-like subset)"
            }
        name = body.get("name")
        if name is not None and not isinstance(name, str):
            return 400, {}, {"error": "name must be a string"}
        from ..registry import QuotaExceeded

        try:
            program = parse_trace(text, name)
        except TraceError as exc:
            self.metrics.inc("repro_trace_rejections_total")
            return 422, {}, {"error": "invalid trace", "detail": str(exc)}
        try:
            meta = self.programs.put(
                program,
                tenant=tenant,
                source="upload",
                check=lambda nbytes: self.tenants.check_upload(tenant, nbytes),
            )
        except QuotaExceeded as exc:
            self.metrics.inc("repro_registry_quota_rejections_total")
            return (
                429,
                {"Retry-After": f"{exc.retry_after:g}"},
                {"error": str(exc), "retry_after_s": exc.retry_after},
            )
        self.metrics.inc("repro_program_uploads_total", tenant=tenant)
        return 200, {}, meta

    def handle_program_get(self, ref: str) -> tuple[int, dict, dict]:
        """``GET /programs/{fingerprint}``: meta + the canonical trace
        (so a client can re-export what the service will predict)."""
        try:
            program = self.programs.get(ref)
        except UnknownRef as exc:
            return 404, {}, {"error": str(exc)}
        except RegistryError as exc:
            return 400, {}, {"error": str(exc)}
        doc = dict(program.meta())
        doc["trace"] = program.to_jsonl()
        return 200, {}, doc

    def handle_program_delete(
        self, ref: str, tenant: str
    ) -> tuple[int, dict, dict]:
        """``DELETE /programs/{fingerprint}``: remove a tenant's program."""
        try:
            fingerprint = self.programs.delete(ref, tenant=tenant)
        except UnknownRef as exc:
            return 404, {}, {"error": str(exc)}
        except NotOwner as exc:
            return 403, {}, {"error": str(exc)}
        except RegistryError as exc:
            return 400, {}, {"error": str(exc)}
        return 200, {}, {"deleted": fingerprint}

    def handle_chaos(self, body: object) -> tuple[int, dict, dict]:
        """``/chaos`` control endpoint (only routed when chaos mode is on).

        ``GET`` returns the injector snapshot; ``POST`` arms faults:
        either ``{"kind": ..., "seconds": ..., "at": ..., "key": ...}``
        for one fault or ``{"plan": {"seed": ..., "length": ...}}`` for
        a whole seeded :class:`FaultPlan`.
        """
        if not isinstance(body, dict):
            return 400, {}, {"error": "body must be a JSON object"}
        try:
            if "plan" in body:
                plan_args = body["plan"]
                if not isinstance(plan_args, dict):
                    raise ValueError("plan must be a JSON object")
                plan = FaultPlan.seeded(
                    int(plan_args.get("seed", 0)),
                    length=int(plan_args.get("length", 4)),
                    max_seconds=float(plan_args.get("max_seconds", 0.05)),
                )
                self.faults.arm_plan(plan)
                armed = [spec.to_dict() for spec in plan.faults]
            else:
                kind = body.get("kind")
                if not isinstance(kind, str):
                    raise ValueError("missing fault 'kind'")
                spec = self.faults.arm(
                    kind,
                    seconds=float(body.get("seconds", 0.0)),
                    at=(None if body.get("at") is None else int(body["at"])),
                    key=body.get("key"),
                )
                armed = [spec.to_dict()]
        except (TypeError, ValueError) as exc:
            return 400, {}, {"error": str(exc)}
        return 200, {}, {"armed": armed, "chaos": self.faults.snapshot()}

    def healthz(self) -> dict:
        doc = {
            "status": "ok",
            "pid": os.getpid(),
            "shard_id": self.shard_id,
            "cluster": self.db.cluster,
            "models": sorted(MODELS),
            "db_fingerprint": self.db_fingerprint,
            "inflight": self.jobs.inflight,
            "queue_limit": self.jobs.limit,
            "batching": self.batcher.enabled,
            "dedup": self.dedup_enabled,
            "caching": self.caching,
            "lru_entries": len(self.cache),
            "breaker": self.breaker.state,
            "draining": self.draining,
            "tracing": self.tracer is not None and self.tracer.enabled,
            "registry": self.registry.stats(),
            "programs": self.programs.stats(),
        }
        if self.faults is not None:
            doc["chaos"] = self.faults.snapshot()
        return doc

    def close(self) -> None:
        self.batcher.close()
        if self.faults is not None:
            _parallel.install_fault_injector(None)


class ServiceServer:
    """HTTP front-end binding a :class:`PredictionService` to a socket.

    With ``reuse_port=True`` the listener sets ``SO_REUSEPORT`` before
    binding, so N shard processes can share one (host, port) and let the
    kernel spread connections -- the router-less deployment topology
    (no cache affinity, but zero added hops; see DESIGN.md section 7).
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    # -- HTTP plumbing ---------------------------------------------------------
    async def _read_request(self, reader):
        return await read_http_request(reader)

    @staticmethod
    def _response(
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: dict | None = None,
        keep_alive: bool = True,
    ) -> bytes:
        return render_http_response(
            status, payload, content_type, extra_headers, keep_alive
        )

    async def _route(
        self, method: str, target: str, body: bytes,
        headers: dict | None = None,
    ):
        """Dispatch one request -> (status, headers, payload, content-type)."""
        svc = self.service
        split = urlsplit(target)
        path = split.path
        query = dict(parse_qsl(split.query))
        if path == "/healthz" and method == "GET":
            return 200, {}, svc.healthz(), "application/json"
        if path == "/metrics" and method == "GET":
            return 200, {}, svc.metrics.render_prometheus(), "text/plain; version=0.0.4"
        if path == "/trace" and method == "GET":
            tracer = svc.tracer
            if tracer is None:
                return 404, {}, {"error": "tracing disabled"}, "application/json"
            trace_id = query.get("id")
            if trace_id:
                doc = tracer.get(trace_id)
                if doc is None:
                    return (
                        404, {}, {"error": f"no trace {trace_id!r}"},
                        "application/json",
                    )
                return 200, {}, doc, "application/json"
            try:
                limit = int(query.get("limit", "20"))
            except ValueError:
                return (
                    400, {}, {"error": "limit must be an integer"},
                    "application/json",
                )
            return 200, {}, {"traces": tracer.traces(limit)}, "application/json"
        if path == "/models" or path.startswith("/models/"):
            if method != "GET":
                return 405, {}, {"error": "use GET"}, "application/json"
            parts = [p for p in path.split("/") if p][1:]
            if len(parts) > 1:
                return 404, {}, {"error": f"no such endpoint {path!r}"}, "application/json"
            status, extra, doc = svc.handle_models(parts[0] if parts else None)
            return status, extra, doc, "application/json"
        if path == "/programs" or path.startswith("/programs/"):
            try:
                tenant = clean_tenant((headers or {}).get("x-repro-tenant"))
            except RegistryError as exc:
                return 400, {}, {"error": str(exc)}, "application/json"
            parts = [p for p in path.split("/") if p][1:]
            if not parts:
                if method == "GET":
                    return (
                        200, {}, {"programs": svc.programs.entries()},
                        "application/json",
                    )
                if method != "POST":
                    return 405, {}, {"error": "use GET or POST"}, "application/json"
                try:
                    posted = json.loads(body) if body else {}
                except ValueError:
                    return 400, {}, {"error": "body is not valid JSON"}, "application/json"
                status, extra, doc = svc.handle_program_upload(posted, tenant)
                return status, extra, doc, "application/json"
            if len(parts) == 1:
                if method == "GET":
                    status, extra, doc = svc.handle_program_get(parts[0])
                elif method == "DELETE":
                    status, extra, doc = svc.handle_program_delete(
                        parts[0], tenant
                    )
                else:
                    return 405, {}, {"error": "use GET or DELETE"}, "application/json"
                return status, extra, doc, "application/json"
            return 404, {}, {"error": f"no such endpoint {path!r}"}, "application/json"
        if path == "/distributions" or path.startswith("/distributions/"):
            try:
                tenant = clean_tenant(
                    (headers or {}).get("x-repro-tenant")
                )
            except RegistryError as exc:
                return 400, {}, {"error": str(exc)}, "application/json"
            parts = [p for p in path.split("/") if p][1:]
            if not parts:
                if method == "POST" and body:
                    try:
                        posted = json.loads(body)
                    except ValueError:
                        return 400, {}, {"error": "body is not valid JSON"}, "application/json"
                    if not isinstance(posted, dict):
                        return 400, {}, {"error": "body must be a JSON object"}, "application/json"
                    if "results" in posted or "topology" in posted:
                        status, extra, doc = await svc.handle_registry_upload(
                            posted, tenant
                        )
                        return status, extra, doc, "application/json"
                    # legacy describe-by-POST: body keys merge into the query
                    query = {**query, **{k: str(v) for k, v in posted.items()}}
                elif method not in ("GET", "POST"):
                    return 405, {}, {"error": "use GET or POST"}, "application/json"
                status, extra, doc = svc.handle_distributions(query)
                return status, extra, doc, "application/json"
            if len(parts) == 1:
                ref = parts[0]
                if method == "GET":
                    status, extra, doc = svc.handle_registry_get(ref, query)
                elif method == "DELETE":
                    status, extra, doc = svc.handle_registry_delete(ref, tenant)
                else:
                    return 405, {}, {"error": "use GET or DELETE"}, "application/json"
                return status, extra, doc, "application/json"
            if len(parts) == 2 and parts[1] == "alias":
                if method != "PUT":
                    return 405, {}, {"error": "use PUT"}, "application/json"
                try:
                    posted = json.loads(body) if body else {}
                except ValueError:
                    return 400, {}, {"error": "body is not valid JSON"}, "application/json"
                status, extra, doc = svc.handle_registry_alias(
                    parts[0], posted, tenant
                )
                return status, extra, doc, "application/json"
            return 404, {}, {"error": f"no such endpoint {path!r}"}, "application/json"
        if path == "/predict":
            if method != "POST":
                return 405, {}, {"error": "use POST"}, "application/json"
            try:
                parsed = json.loads(body) if body else {}
            except ValueError:
                return 400, {}, {"error": "body is not valid JSON"}, "application/json"
            status, resp_headers, doc = await svc.handle_predict(
                parsed, headers
            )
            return status, resp_headers, doc, "application/json"
        if path == "/chaos" and svc.faults is not None:
            if method == "GET":
                return 200, {}, {"chaos": svc.faults.snapshot()}, "application/json"
            if method == "POST":
                try:
                    parsed = json.loads(body) if body else {}
                except ValueError:
                    return 400, {}, {"error": "body is not valid JSON"}, "application/json"
                status, headers, doc = svc.handle_chaos(parsed)
                return status, headers, doc, "application/json"
            return 405, {}, {"error": "use GET or POST"}, "application/json"
        return 404, {}, {"error": f"no such endpoint {path!r}"}, "application/json"

    async def _handle_connection(self, reader, writer) -> None:
        svc = self.service
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                endpoint = urlsplit(target).path
                svc.metrics.inc("repro_requests_total", endpoint=endpoint)
                t0 = _time.perf_counter()
                try:
                    status, extra, doc, ctype = await self._route(
                        method, target, body, headers
                    )
                except Exception as exc:  # never tear the connection down
                    svc.metrics.inc("repro_evaluation_errors_total")
                    status, extra, doc, ctype = (
                        500, {}, {"error": f"internal error: {exc}"}, "application/json"
                    )
                svc.metrics.observe(endpoint, _time.perf_counter() - t0)
                svc.metrics.inc("repro_responses_total", code=str(status))
                payload = (
                    doc.encode() if isinstance(doc, str) else json.dumps(doc).encode()
                )
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                    and not svc.draining
                )
                writer.write(
                    self._response(status, payload, ctype, extra, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown cancelling an idle keep-alive connection:
            # end it quietly (asyncio's stream wrapper retrieves the
            # handler task's exception and would log the cancellation).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, shed new predictions with
        503, let in-flight requests finish (bounded by *grace* seconds),
        then stop.  Clients mid-request get their complete response with
        ``Connection: close``; clients arriving late get a fast 503."""
        self.service.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = asyncio.get_running_loop().time() + grace
        try:
            await asyncio.wait_for(
                self.service.batcher.drain(),
                timeout=max(0.0, deadline - asyncio.get_running_loop().time()),
            )
        except asyncio.TimeoutError:
            pass
        while self._connections:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            await asyncio.wait(
                list(self._connections),
                timeout=remaining,
                return_when=asyncio.ALL_COMPLETED,
            )
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections park in readline(); cancel them so
        # shutdown doesn't leave pending tasks behind on the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.service.close()


class ServiceThread:
    """Run a :class:`ServiceServer` on a background thread (tests, the
    load-generator benchmark, and anything else that wants an in-process
    server with a real socket)."""

    def __init__(self, service: PredictionService, host: str = "127.0.0.1", port: int = 0):
        self.server = ServiceServer(service, host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    def start(self) -> tuple[str, int]:
        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.server.start())
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self.address

    def drain(self, grace: float = 10.0) -> None:
        """Gracefully drain the server from any thread, then stop."""
        if self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(grace), self._loop
            )
            try:
                future.result(timeout=grace + 10)
            except Exception:
                pass
        self.stop()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._loop = None
