"""Service observability: counters and latency distributions.

Nansamba et al. (*Leveraging Caliper and Benchpark*) make the case for
measurement hooks built into the system rather than bolted on; the
prediction service follows suit.  Counters cover the request funnel
(admitted / shed / deduplicated / batched / cache tiers) and latencies
are kept as raw second-valued samples per endpoint, summarised on demand
through :class:`repro.mpibench.histogram.Histogram` -- the same
distribution machinery MPIBench uses for communication times, because a
serving latency is just another operation-time distribution.

Rendering follows the Prometheus text exposition format, so ``/metrics``
can be scraped by standard tooling (or just read by a human).
"""

from __future__ import annotations

import threading
from collections import deque

from ..mpibench.histogram import Histogram

__all__ = ["ServiceMetrics", "escape_label_value"]

#: latency quantiles exposed per endpoint
QUANTILES = (0.5, 0.9, 0.99)


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    The spec requires ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and newline ->
    ``\\n`` inside quoted label values; without this a hostile (or merely
    unlucky) label -- an endpoint path with a quote, say -- renders an
    exposition scrapers reject wholesale.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels) -> str:
    """Render a ``(key, value)`` label tuple as ``{k="v",...}``."""
    if not labels:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
        + "}"
    )


class ServiceMetrics:
    """Counters plus bounded latency reservoirs for one service."""

    def __init__(self, reservoir: int = 8192):
        #: (name, labels-tuple) -> value
        self._counters: dict[tuple[str, tuple], float] = {}
        #: endpoint -> bounded deque of latency samples (seconds)
        self._latencies: dict[str, deque] = {}
        self._reservoir = reservoir
        # Counters are bumped from the event loop *and* the evaluator
        # thread (pool rebuilds, fault-injector hooks); the lock makes
        # the read-modify-write atomic so no increment is lost.  Cheap
        # relative to any engine evaluation.
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def observe(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            buf = self._latencies.get(endpoint)
            if buf is None:
                buf = self._latencies[endpoint] = deque(maxlen=self._reservoir)
        buf.append(seconds)

    # -- queries -----------------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(
                (name, tuple(sorted(labels.items()))), 0.0
            )

    def total(self, name: str) -> float:
        """Sum of *name* across every label combination."""
        with self._lock:
            return sum(
                value for (n, _), value in self._counters.items() if n == name
            )

    def latency_histogram(self, endpoint: str) -> Histogram | None:
        buf = self._latencies.get(endpoint)
        if not buf:
            return None
        return Histogram.from_samples(buf, bins=min(64, len(buf)))

    def latency_quantiles(self, endpoint: str) -> dict[float, float]:
        hist = self.latency_histogram(endpoint)
        if hist is None:
            return {}
        return {q: hist.quantile(q) for q in QUANTILES}

    def snapshot(self) -> dict:
        """JSON-able view of every counter and latency summary."""
        with self._lock:
            items = sorted(self._counters.items())
        counters: dict[str, float] = {}
        for (name, labels), value in items:
            counters[name + _label_str(labels)] = value
        latencies = {}
        for endpoint in sorted(self._latencies):
            hist = self.latency_histogram(endpoint)
            if hist is None:
                continue
            latencies[endpoint] = {
                "count": len(self._latencies[endpoint]),
                "mean": hist.mean,
                **{f"p{int(q * 100)}": hist.quantile(q) for q in QUANTILES},
            }
        return {"counters": counters, "latency_seconds": latencies}

    # -- exposition ----------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text format (v0.0.4) for ``/metrics``."""
        lines: list[str] = []
        seen_names: set[str] = set()
        with self._lock:
            counter_items = sorted(self._counters.items())
        for (name, labels), value in counter_items:
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_label_str(labels)} {value:g}")
        for endpoint in sorted(self._latencies):
            buf = self._latencies[endpoint]
            hist = self.latency_histogram(endpoint)
            if hist is None:
                continue
            name = "repro_request_latency_seconds"
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} summary")
            ep = escape_label_value(endpoint)
            for q in QUANTILES:
                lines.append(
                    f'{name}{{endpoint="{ep}",quantile="{q:g}"}} '
                    f"{hist.quantile(q):.6g}"
                )
            lines.append(f'{name}_count{{endpoint="{ep}"}} {len(buf)}')
            lines.append(f'{name}_sum{{endpoint="{ep}"}} {sum(buf):.6g}')
        return "\n".join(lines) + "\n"
