"""Service observability: counters and latency distributions.

Nansamba et al. (*Leveraging Caliper and Benchpark*) make the case for
measurement hooks built into the system rather than bolted on; the
prediction service follows suit.  Counters cover the request funnel
(admitted / shed / deduplicated / batched / cache tiers) and latencies
are kept as raw second-valued samples per endpoint, summarised on demand
through :class:`repro.mpibench.histogram.Histogram` -- the same
distribution machinery MPIBench uses for communication times, because a
serving latency is just another operation-time distribution.

Rendering follows the Prometheus text exposition format, so ``/metrics``
can be scraped by standard tooling (or just read by a human).

Beyond counters and endpoint latency summaries, the service exposes
*attribution* metrics (the observability layer of :mod:`repro.obs`):

* per-stage latency **histograms** (``repro_stage_seconds_bucket`` with
  exponential ``le`` bounds) -- one series per funnel stage and engine
  phase (cache, dedup, batch, engine, engine.sweep/match/sample,
  serialize), mirroring PEVPM's loss-attribution buckets;
* **gauges** -- queue depth, micro-batch occupancy, trace-buffer fill;
  a gauge is either a stored value (:meth:`ServiceMetrics.set_gauge`)
  or a callable sampled at render time
  (:meth:`ServiceMetrics.register_gauge`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from ..mpibench.histogram import Histogram

__all__ = ["ServiceMetrics", "escape_label_value", "unescape_label_value"]

#: latency quantiles exposed per endpoint
QUANTILES = (0.5, 0.9, 0.99)

#: exponential ``le`` bounds for stage histograms: 10us .. ~100s covers
#: everything from an LRU hit to a pathological engine evaluation
STAGE_BUCKETS = tuple(1e-5 * 4 ** i for i in range(12))

#: power-of-two ``le`` bounds for the Monte Carlo runs-spent histogram:
#: the adaptive stopping rule's doubling schedule lands totals exactly
#: on these, so each bucket is one possible stopping point
RUNS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    The spec requires ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and newline ->
    ``\\n`` inside quoted label values; without this a hostile (or merely
    unlucky) label -- an endpoint path with a quote, say -- renders an
    exposition scrapers reject wholesale.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (what a scraper does).

    Processes one escape at a time so ``\\\\n`` round-trips as a
    backslash followed by ``n``, not as a newline -- the property the
    exposition format (and our Hypothesis round-trip test) demands.
    """
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(c)
        i += 1
    return "".join(out)


def _label_str(labels) -> str:
    """Render a ``(key, value)`` label tuple as ``{k="v",...}``."""
    if not labels:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
        + "}"
    )


class ServiceMetrics:
    """Counters plus bounded latency reservoirs for one service.

    *constant_labels* (e.g. ``{"shard_id": "3"}``) are stamped onto
    **every** rendered series -- counters, gauges, stage histograms and
    latency summaries -- so a router-level aggregation of N shards'
    expositions stays a valid scrape with no colliding series.  They
    are a rendering concern only: recording and querying use the
    per-call labels unchanged, so nothing inside one process needs to
    know which shard it is.
    """

    def __init__(
        self,
        reservoir: int = 8192,
        constant_labels: dict[str, str] | None = None,
    ):
        #: sorted (key, value) items merged into every rendered series
        self._const: tuple = tuple(sorted((constant_labels or {}).items()))
        #: (name, labels-tuple) -> value
        self._counters: dict[tuple[str, tuple], float] = {}
        #: endpoint -> bounded deque of latency samples (seconds)
        self._latencies: dict[str, deque] = {}
        #: stage -> [bucket cumulative counts..., +Inf count, sum]
        self._stages: dict[str, list[float]] = {}
        #: mode ("adaptive" | "fixed") -> runs-spent histogram row,
        #: same [buckets..., +Inf, sum] layout as the stage rows
        self._runs: dict[str, list[float]] = {}
        #: (name, labels-tuple) -> stored gauge value
        self._gauges: dict[tuple[str, tuple], float] = {}
        #: (name, labels-tuple) -> callable sampled at render time
        self._gauge_fns: dict[tuple[str, tuple], Callable[[], float]] = {}
        self._reservoir = reservoir
        # Counters are bumped from the event loop *and* the evaluator
        # thread (pool rebuilds, fault-injector hooks); the lock makes
        # the read-modify-write atomic so no increment is lost.  Cheap
        # relative to any engine evaluation.
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def observe(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            buf = self._latencies.get(endpoint)
            if buf is None:
                buf = self._latencies[endpoint] = deque(maxlen=self._reservoir)
        buf.append(seconds)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one per-stage duration into the stage histogram
        (``repro_stage_seconds{stage=...}``) -- called with funnel-span
        and engine-phase durations by the tracing layer."""
        with self._lock:
            row = self._stages.get(stage)
            if row is None:
                row = self._stages[stage] = [0.0] * (len(STAGE_BUCKETS) + 2)
            for i, bound in enumerate(STAGE_BUCKETS):
                if seconds <= bound:
                    row[i] += 1.0
            row[-2] += 1.0  # +Inf
            row[-1] += seconds  # sum

    def observe_runs(self, runs: int, mode: str) -> None:
        """Record the Monte Carlo run count of one engine-served
        prediction (``repro_prediction_runs{mode=...}``) -- *mode* is
        ``"adaptive"`` (stopping rule decided the spend) or ``"fixed"``
        (the request pinned it), so the runs-saved story of adaptive
        mode is readable straight off ``/metrics``."""
        with self._lock:
            row = self._runs.get(mode)
            if row is None:
                row = self._runs[mode] = [0.0] * (len(RUNS_BUCKETS) + 2)
            for i, bound in enumerate(RUNS_BUCKETS):
                if runs <= bound:
                    row[i] += 1.0
            row[-2] += 1.0  # +Inf
            row[-1] += runs  # sum

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Store a gauge value (last write wins)."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._gauges[key] = float(value)

    def register_gauge(
        self, name: str, fn: Callable[[], float], **labels
    ) -> None:
        """Register a gauge sampled at render/snapshot time -- the shape
        for live depths (jobs in flight, trace-buffer fill) that change
        far more often than anyone scrapes."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._gauge_fns[key] = fn

    # -- queries -----------------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(
                (name, tuple(sorted(labels.items()))), 0.0
            )

    def total(self, name: str) -> float:
        """Sum of *name* across every label combination."""
        with self._lock:
            return sum(
                value for (n, _), value in self._counters.items() if n == name
            )

    def gauge(self, name: str, **labels) -> float | None:
        """Current value of a gauge (stored or sampled); ``None`` when
        the gauge does not exist."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            fn = self._gauge_fns.get(key)
            if fn is None:
                return self._gauges.get(key)
        try:
            return float(fn())
        except Exception:
            return None

    def stage_count(self, stage: str) -> int:
        """Observations recorded for one stage histogram."""
        with self._lock:
            row = self._stages.get(stage)
            return 0 if row is None else int(row[-2])

    def runs_count(self, mode: str) -> int:
        """Predictions recorded in the runs-spent histogram for *mode*."""
        with self._lock:
            row = self._runs.get(mode)
            return 0 if row is None else int(row[-2])

    def runs_sum(self, mode: str) -> float:
        """Total Monte Carlo runs spent across *mode*'s predictions."""
        with self._lock:
            row = self._runs.get(mode)
            return 0.0 if row is None else row[-1]

    def latency_histogram(self, endpoint: str) -> Histogram | None:
        buf = self._latencies.get(endpoint)
        if not buf:
            return None
        return Histogram.from_samples(buf, bins=min(64, len(buf)))

    def latency_quantiles(self, endpoint: str) -> dict[float, float]:
        hist = self.latency_histogram(endpoint)
        if hist is None:
            return {}
        return {q: hist.quantile(q) for q in QUANTILES}

    def _gauge_items(self) -> list[tuple[tuple[str, tuple], float]]:
        """Stored and sampled gauges, merged (sampled wins on clash)."""
        with self._lock:
            stored = dict(self._gauges)
            fns = dict(self._gauge_fns)
        for key, fn in fns.items():
            try:
                stored[key] = float(fn())
            except Exception:
                stored.pop(key, None)  # a dead sampler drops its series
        return sorted(stored.items())

    def snapshot(self) -> dict:
        """JSON-able view of every counter, gauge and latency summary."""
        with self._lock:
            items = sorted(self._counters.items())
            stage_rows = {k: list(v) for k, v in self._stages.items()}
            runs_rows = {k: list(v) for k, v in self._runs.items()}
        counters: dict[str, float] = {}
        for (name, labels), value in items:
            counters[name + _label_str(labels)] = value
        gauges = {
            name + _label_str(labels): value
            for (name, labels), value in self._gauge_items()
        }
        latencies = {}
        for endpoint in sorted(self._latencies):
            hist = self.latency_histogram(endpoint)
            if hist is None:
                continue
            latencies[endpoint] = {
                "count": len(self._latencies[endpoint]),
                "mean": hist.mean,
                **{f"p{int(q * 100)}": hist.quantile(q) for q in QUANTILES},
            }
        stages = {
            stage: {"count": int(row[-2]), "sum": row[-1]}
            for stage, row in sorted(stage_rows.items())
        }
        runs = {
            mode: {"count": int(row[-2]), "sum": row[-1]}
            for mode, row in sorted(runs_rows.items())
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "latency_seconds": latencies,
            "stage_seconds": stages,
            "prediction_runs": runs,
        }

    # -- exposition ----------------------------------------------------------------
    def _stamped(self, labels: tuple) -> tuple:
        """Per-call labels merged with the constant labels, sorted."""
        if not self._const:
            return labels
        return tuple(sorted({**dict(self._const), **dict(labels)}.items()))

    def render_prometheus(self) -> str:
        """The Prometheus text format (v0.0.4) for ``/metrics``."""
        lines: list[str] = []
        seen_names: set[str] = set()
        with self._lock:
            counter_items = sorted(self._counters.items())
        for (name, labels), value in counter_items:
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_label_str(self._stamped(labels))} {value:g}")
        for (name, labels), value in self._gauge_items():
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_label_str(self._stamped(labels))} {value:g}")
        with self._lock:
            stage_rows = sorted(
                (k, list(v)) for k, v in self._stages.items()
            )
        if stage_rows:
            lines.append("# TYPE repro_stage_seconds histogram")
        for stage, row in stage_rows:
            base = self._stamped((("stage", stage),))
            lbl = _label_str(base)[1:-1]  # inner 'k="v",...' text
            for bound, count in zip(STAGE_BUCKETS, row):
                lines.append(
                    f'repro_stage_seconds_bucket{{{lbl},le="{bound:g}"}} '
                    f"{count:g}"
                )
            lines.append(
                f'repro_stage_seconds_bucket{{{lbl},le="+Inf"}} '
                f"{row[-2]:g}"
            )
            lines.append(f"repro_stage_seconds_count{{{lbl}}} {row[-2]:g}")
            lines.append(f"repro_stage_seconds_sum{{{lbl}}} {row[-1]:.6g}")
        with self._lock:
            runs_rows = sorted((k, list(v)) for k, v in self._runs.items())
        if runs_rows:
            lines.append("# TYPE repro_prediction_runs histogram")
        for mode, row in runs_rows:
            base = self._stamped((("mode", mode),))
            lbl = _label_str(base)[1:-1]
            for bound, count in zip(RUNS_BUCKETS, row):
                lines.append(
                    f'repro_prediction_runs_bucket{{{lbl},le="{bound:g}"}} '
                    f"{count:g}"
                )
            lines.append(
                f'repro_prediction_runs_bucket{{{lbl},le="+Inf"}} '
                f"{row[-2]:g}"
            )
            lines.append(f"repro_prediction_runs_count{{{lbl}}} {row[-2]:g}")
            lines.append(f"repro_prediction_runs_sum{{{lbl}}} {row[-1]:g}")
        for endpoint in sorted(self._latencies):
            buf = self._latencies[endpoint]
            hist = self.latency_histogram(endpoint)
            if hist is None:
                continue
            name = "repro_request_latency_seconds"
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} summary")
            base = self._stamped((("endpoint", endpoint),))
            lbl = _label_str(base)[1:-1]
            for q in QUANTILES:
                lines.append(
                    f'{name}{{{lbl},quantile="{q:g}"}} '
                    f"{hist.quantile(q):.6g}"
                )
            lines.append(f"{name}_count{{{lbl}}} {len(buf)}")
            lines.append(f"{name}_sum{{{lbl}}} {sum(buf):.6g}")
        return "\n".join(lines) + "\n"
