"""Two-tier prediction cache: in-memory LRU over the on-disk store.

The memory tier is a plain LRU of finished prediction documents (the
JSON form :class:`~repro.pevpm.parallel.PredictionCache` persists);
the optional disk tier survives restarts and is shared with anything
else writing the same cache directory.  Disk hits are promoted into
memory.  Keys are the service's content-addressed request keys, so a
hit is by construction bit-identical to re-evaluating the request.

Accessed from the event-loop thread only -- no locking needed; the
disk tier's own writes are atomic (temp file + rename), so a served
request killed mid-write cannot poison later reads.
"""

from __future__ import annotations

from collections import OrderedDict

from ..pevpm.parallel import PredictionCache
from .metrics import ServiceMetrics

__all__ = ["TieredCache"]


class TieredCache:
    """LRU memory tier in front of an optional :class:`PredictionCache`."""

    def __init__(
        self,
        capacity: int,
        disk: PredictionCache | None,
        metrics: ServiceMetrics,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.disk = disk
        self._lru: OrderedDict[str, dict] = OrderedDict()
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: str) -> dict | None:
        doc = self._lru.get(key)
        if doc is not None:
            self._lru.move_to_end(key)
            self._metrics.inc("repro_cache_hits_total", tier="memory")
            return doc
        if self.disk is not None:
            doc = self.disk.get(key)
            if doc is not None:
                self._metrics.inc("repro_cache_hits_total", tier="disk")
                self._remember(key, doc)
                return doc
        self._metrics.inc("repro_cache_misses_total")
        return None

    def put(self, key: str, doc: dict) -> None:
        self._remember(key, doc)
        if self.disk is not None:
            self.disk.put(key, doc)

    def _remember(self, key: str, doc: dict) -> None:
        if self.capacity == 0:
            return
        self._lru[key] = doc
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self._metrics.inc("repro_cache_evictions_total")
