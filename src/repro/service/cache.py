"""Two-tier prediction cache: in-memory LRU over the on-disk store.

The memory tier is a plain LRU of finished prediction documents (the
JSON form :class:`~repro.pevpm.parallel.PredictionCache` persists);
the optional disk tier survives restarts and is shared with anything
else writing the same cache directory.  Disk hits are promoted into
memory.  Keys are the service's content-addressed request keys, so a
hit is by construction bit-identical to re-evaluating the request.

Fault tolerance: a corrupt/truncated disk entry is a miss, is
quarantined by the disk tier (renamed ``*.corrupt`` so it is never
re-read) and is counted as ``repro_cache_corrupt_total``; a disk
*write* failure (full disk, permissions) is absorbed and counted as
``repro_cache_write_errors_total`` -- the request that produced the
document has its answer either way, so cache persistence must never
fail it.

Accessed from the event-loop thread only -- no locking needed; the
disk tier's own writes are atomic (temp file + rename), so a served
request killed mid-write cannot poison later reads.
"""

from __future__ import annotations

from collections import OrderedDict

from ..pevpm.parallel import PredictionCache
from .metrics import ServiceMetrics

__all__ = ["TieredCache"]


class TieredCache:
    """LRU memory tier in front of an optional :class:`PredictionCache`."""

    def __init__(
        self,
        capacity: int,
        disk: PredictionCache | None,
        metrics: ServiceMetrics,
        faults=None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.disk = disk
        self._lru: OrderedDict[str, dict] = OrderedDict()
        self._metrics = metrics
        self._faults = faults
        if disk is not None:
            disk.on_corrupt = lambda path: metrics.inc(
                "repro_cache_corrupt_total"
            )

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: str, trace=None) -> dict | None:
        """Look *key* up through the tiers.

        When *trace* is given (a :class:`repro.obs.tracer.Trace`), the
        lookup is recorded as a ``cache`` span whose ``tier`` attribute
        says where it resolved (``memory`` / ``disk`` / ``miss``).
        """
        if trace is None:
            return self._lookup(key)[0]
        start = trace.now()
        doc, tier = self._lookup(key)
        trace.add_span("cache", start, trace.now(), tier=tier)
        return doc

    def _lookup(self, key: str) -> tuple[dict | None, str]:
        doc = self._lru.get(key)
        if doc is not None:
            self._lru.move_to_end(key)
            self._metrics.inc("repro_cache_hits_total", tier="memory")
            return doc, "memory"
        if self.disk is not None:
            if self._faults is not None:
                self._faults.on_cache_read(self.disk._path(key))
            doc = self.disk.get(key)
            if doc is not None:
                self._metrics.inc("repro_cache_hits_total", tier="disk")
                self._remember(key, doc)
                return doc, "disk"
        self._metrics.inc("repro_cache_misses_total")
        return None, "miss"

    def put(self, key: str, doc: dict) -> None:
        self._remember(key, doc)
        if self.disk is not None:
            try:
                self.disk.put(key, doc)
            except OSError:
                # Persistence is best-effort: the caller already has the
                # document, and the memory tier keeps serving it.
                self._metrics.inc("repro_cache_write_errors_total")

    def _remember(self, key: str, doc: dict) -> None:
        if self.capacity == 0:
            return
        self._lru[key] = doc
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self._metrics.inc("repro_cache_evictions_total")
