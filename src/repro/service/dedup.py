"""Singleflight deduplication of identical concurrent requests.

Two in-flight ``/predict`` requests with the same content key (the
request's canonical form hashed together with the distribution
database's fingerprint -- see :meth:`PredictRequest.key`) are guaranteed
the same bit-identical answer, so only the first (the *leader*) reaches
the engine; followers await the leader's future and share its result.
This is safe precisely because of the reproducibility contract: dedup
never changes what any client receives, only how often the engine runs.
"""

from __future__ import annotations

import asyncio

from .metrics import ServiceMetrics

__all__ = ["LeaderCancelled", "SingleFlight"]


class LeaderCancelled(RuntimeError):
    """The singleflight leader was cancelled before resolving.

    Followers must get a *rejection*, never a hang -- and never a bare
    ``CancelledError``, which an awaiting follower's own task would
    misread as *itself* being cancelled.  A retry simply elects a new
    leader, so this maps to a retryable 503 at the HTTP layer.
    """


class SingleFlight:
    """Key -> shared future map for in-flight evaluations."""

    def __init__(self, metrics: ServiceMetrics):
        self._inflight: dict[str, asyncio.Future] = {}
        self._metrics = metrics

    def claim(self, key: str, trace=None) -> tuple[bool, asyncio.Future]:
        """Return ``(leader, future)`` for *key*.

        The first claimant becomes the leader (and must later call
        :meth:`resolve` or :meth:`reject`); followers get the same
        future to await.  With *trace*, the election is recorded as a
        ``dedup`` annotation carrying the request's ``role``.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self._metrics.inc("repro_singleflight_hits_total")
            if trace is not None:
                trace.annotate("dedup", role="follower")
            return False, fut
        fut = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        self._metrics.inc("repro_singleflight_leads_total")
        if trace is not None:
            trace.annotate("dedup", role="leader")
        return True, fut

    def resolve(self, key: str, result) -> None:
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result(result)

    def reject(self, key: str, exc: BaseException) -> None:
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            if isinstance(exc, asyncio.CancelledError):
                exc = LeaderCancelled(
                    "evaluation leader cancelled mid-flight; retry elects "
                    "a new leader"
                )
            fut.set_exception(exc)
            # The leader re-raises on its own path; with no followers
            # awaiting, the shared future's exception would otherwise be
            # reported as never retrieved when it is collected.
            fut.exception()

    @property
    def inflight(self) -> int:
        return len(self._inflight)
