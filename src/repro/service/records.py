"""Request schema, model registry, and the prediction response record.

The service's reproducibility contract hinges on this module: a
``/predict`` request is parsed into a :class:`PredictRequest` whose
*canonical* form fills in every default, and the response record echoes
back the seed and every engine flag that influenced the numbers.  A
client can therefore replay any served prediction with a direct
:func:`repro.pevpm.predict` call and obtain bit-identical times -- the
discipline Hunold & Carpen-Amarie's *MPI Benchmarking Revisited* asks of
benchmark results applies to served predictions too.

The same :func:`prediction_record` serialiser backs ``repro predict
--json``, so CLI output and service responses share one machine-readable
format.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field

from ..apps.amg import amg_model
from ..apps.fft import fft_model
from ..apps.halo import halo_model
from ..apps.jacobi import parse_jacobi
from ..apps.taskfarm import make_tasks, taskfarm_model
from ..pevpm.parallel import VECTOR_BATCH
from ..pevpm.predict import Prediction

__all__ = [
    "MODELS",
    "PredictRequest",
    "RequestError",
    "prediction_record",
    "routing_key_for",
]


class RequestError(ValueError):
    """A malformed or unsupported request (HTTP 400)."""


#: legal ``db`` refs: a registry alias (``perseus@v3``) or a full
#: content fingerprint -- mirrors ``repro.registry.store.ALIAS_RE``
#: without importing the registry package into the request schema
_DB_REF_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._@-]{0,63}$")

#: legal imported-program refs: fingerprints only (programs have no
#: aliases -- they are immutable by construction)
_PROGRAM_REF_RE = re.compile(r"^[0-9a-f]{64}$")


def _jacobi(spec, params: dict):
    vm_params = {
        "iterations": params["iterations"],
        "xsize": params["xsize"],
        "serial_time": spec.jacobi_serial_time,
    }
    return parse_jacobi(), vm_params


def _fft(spec, params: dict):
    return fft_model(params["n_points"]), None


def _taskfarm(spec, params: dict):
    tasks = make_tasks(
        params["n_tasks"],
        mean=params["task_mean"],
        cv=params["task_cv"],
        seed=params["task_seed"],
    )
    return taskfarm_model(tasks), None


def _halo(spec, params: dict):
    try:
        model = halo_model(
            iterations=params["iterations"],
            nx=params["nx"],
            halo=params["halo"],
            dims=params["dims"],
            px=params["px"],
            reduce_every=params["reduce_every"],
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad halo parameters: {exc}") from None
    return model, None


def _amg(spec, params: dict):
    try:
        model = amg_model(
            iterations=params["iterations"],
            nx=params["nx"],
            halo=params["halo"],
            dims=params["dims"],
            px=params["px"],
            coarse_nx=params["coarse_nx"],
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad amg parameters: {exc}") from None
    return model, None


def _imported(spec, params: dict):
    # Imported programs live in the service's ProgramStore; the service
    # resolves the ref and substitutes the stored model before this
    # builder is ever consulted (see PredictionService._group_for).
    raise RequestError(
        "model 'imported' needs a program resolved from the service's "
        "program store; POST the trace to /programs first"
    )


#: name -> (defaulted parameters, builder(spec, params) -> (model, vm_params)).
#: One entry per communication-pattern class of Section 6, plus the
#: collectives-era workloads (halo, amg) and trace-imported programs.
MODELS: dict[str, tuple[dict, object]] = {
    "jacobi": ({"iterations": 100, "xsize": 256}, _jacobi),
    "fft": ({"n_points": 4096}, _fft),
    "taskfarm": (
        {"n_tasks": 64, "task_mean": 5e-3, "task_cv": 0.5, "task_seed": 0},
        _taskfarm,
    ),
    "halo": (
        {
            "iterations": 10, "nx": 64, "halo": 1, "dims": 2, "px": 1,
            "reduce_every": 0,
        },
        _halo,
    ),
    "amg": (
        {
            "iterations": 4, "nx": 32, "halo": 1, "dims": 2, "px": 1,
            "coarse_nx": 8,
        },
        _amg,
    ),
    #: ``program`` is the sha256 fingerprint returned by POST /programs
    "imported": ({"program": ""}, _imported),
}

_TIMING_MODES = ("distribution", "average", "minimum", "parametric")
_TIMING_SOURCES = ("nxp", "2x1")
_NIC_MODES = ("off", "tx", "txrx")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise RequestError(msg)


def _as_int(value, name: str, minimum: int) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer",
    )
    _require(value >= minimum, f"{name} must be >= {minimum}")
    return value


@dataclass
class PredictRequest:
    """One validated ``/predict`` request, defaults filled in."""

    model: str
    nprocs: int
    model_params: dict = field(default_factory=dict)
    ppn: int = 1
    runs: int = 16
    seed: int = 0
    timing_mode: str = "distribution"
    timing_source: str = "nxp"
    nic_serialisation: str = "tx"
    vector_runs: bool = True
    vector_batch: int = VECTOR_BATCH
    compiled: bool = True  #: static-schedule compilation (bit-identical)
    deadline_s: float | None = None  #: per-request deadline override
    #: registry ref (alias or fingerprint) of the distribution database
    #: to predict against; ``None`` means the service's startup default
    db: str | None = None
    #: adaptive mode: stop when the mean's CI half-width relative to
    #: |mean| meets this target (mutually exclusive with an explicit
    #: ``runs`` in the request body; ``runs`` is then decided by the
    #: stopping rule and echoed back as the achieved total)
    target_rse: float | None = None
    min_runs: int = 4  #: adaptive: first total evaluated
    max_runs: int = 256  #: adaptive: hard spend cap

    @classmethod
    def from_dict(cls, doc: object) -> "PredictRequest":
        _require(isinstance(doc, dict), "request body must be a JSON object")
        known = {
            "model", "nprocs", "model_params", "ppn", "runs", "seed",
            "timing_mode", "timing_source", "nic_serialisation",
            "vector_runs", "vector_batch", "compiled", "deadline_s", "db",
            "target_rse", "min_runs", "max_runs",
        }
        unknown = set(doc) - known
        _require(not unknown, f"unknown request fields: {sorted(unknown)}")
        model = doc.get("model")
        _require(model in MODELS, f"model must be one of {sorted(MODELS)}")
        defaults, _ = MODELS[model]
        raw_params = doc.get("model_params", {})
        _require(isinstance(raw_params, dict), "model_params must be an object")
        bad = set(raw_params) - set(defaults)
        _require(not bad, f"unknown model_params for {model!r}: {sorted(bad)}")
        params = dict(defaults, **raw_params)
        if model == "imported":
            ref = params.get("program")
            _require(
                isinstance(ref, str) and bool(_PROGRAM_REF_RE.match(ref)),
                "model 'imported' needs model_params.program set to a "
                "program fingerprint (sha256 hex, as returned by "
                "POST /programs)",
            )
        mode = doc.get("timing_mode", "distribution")
        _require(mode in _TIMING_MODES, f"timing_mode must be one of {_TIMING_MODES}")
        source = doc.get("timing_source", "nxp")
        _require(
            source in _TIMING_SOURCES,
            f"timing_source must be one of {_TIMING_SOURCES}",
        )
        nic = doc.get("nic_serialisation", "tx")
        _require(nic in _NIC_MODES, f"nic_serialisation must be one of {_NIC_MODES}")
        deadline = doc.get("deadline_s")
        if deadline is not None:
            _require(
                isinstance(deadline, (int, float)) and deadline > 0,
                "deadline_s must be a positive number",
            )
        db_ref = doc.get("db")
        if db_ref is not None:
            _require(
                isinstance(db_ref, str) and bool(_DB_REF_RE.match(db_ref)),
                "db must be a registry alias or fingerprint",
            )
        target_rse = doc.get("target_rse")
        if target_rse is not None:
            _require(
                isinstance(target_rse, (int, float))
                and not isinstance(target_rse, bool)
                and target_rse > 0,
                "target_rse must be a positive number",
            )
            _require(
                "runs" not in doc,
                "give either runs or target_rse, not both "
                "(adaptive mode decides the run count)",
            )
        else:
            _require(
                "min_runs" not in doc and "max_runs" not in doc,
                "min_runs/max_runs only apply with target_rse",
            )
        min_runs = _as_int(doc.get("min_runs", 4), "min_runs", 2)
        max_runs = _as_int(doc.get("max_runs", 256), "max_runs", 2)
        _require(max_runs >= min_runs, "max_runs must be >= min_runs")
        vector_runs = bool(doc.get("vector_runs", True))
        if "vector_batch" in doc:
            _require(vector_runs, "vector_batch only applies with vector_runs")
            vector_batch = _as_int(doc.get("vector_batch"), "vector_batch", 1)
        elif target_rse is not None:
            # Adaptive chunks default to min_runs so a loose target can
            # stop after its first chunk instead of a full default chunk.
            vector_batch = min_runs
        else:
            vector_batch = VECTOR_BATCH
        return cls(
            model=model,
            nprocs=_as_int(doc.get("nprocs"), "nprocs", 1),
            model_params=params,
            ppn=_as_int(doc.get("ppn", 1), "ppn", 1),
            runs=_as_int(doc.get("runs", 16), "runs", 1),
            seed=_as_int(doc.get("seed", 0), "seed", 0),
            timing_mode=mode,
            timing_source=source,
            nic_serialisation=nic,
            vector_runs=vector_runs,
            vector_batch=vector_batch,
            compiled=bool(doc.get("compiled", True)),
            deadline_s=None if deadline is None else float(deadline),
            db=db_ref,
            target_rse=None if target_rse is None else float(target_rse),
            min_runs=min_runs,
            max_runs=max_runs,
        )

    @property
    def adaptive(self) -> bool:
        """Whether the run count is decided by the stopping rule."""
        return self.target_rse is not None

    def precision_target(self):
        """The :class:`repro.stats.PrecisionTarget` of an adaptive
        request (``None`` for fixed-``runs`` ones)."""
        if self.target_rse is None:
            return None
        from ..stats import PrecisionTarget

        return PrecisionTarget(
            rse=self.target_rse, min_runs=self.min_runs, max_runs=self.max_runs
        )

    def canonical(self) -> dict:
        """Every field that determines the numbers, defaults filled.

        Adaptive requests null ``runs`` and add a ``precision`` block
        instead (the run count is the rule's *output*); fixed-``runs``
        requests keep the exact historical shape, so their keys -- and
        every cache entry written before adaptive mode existed -- are
        unchanged.
        """
        doc = {
            "model": self.model,
            "model_params": dict(sorted(self.model_params.items())),
            "nprocs": self.nprocs,
            "ppn": self.ppn,
            "runs": self.runs,
            "seed": self.seed,
            "timing_mode": self.timing_mode,
            "timing_source": self.timing_source,
            "nic_serialisation": self.nic_serialisation,
            "vector_runs": self.vector_runs,
            "vector_batch": self.vector_batch if self.vector_runs else None,
            "compiled": self.compiled,
        }
        if self.target_rse is not None:
            doc["runs"] = None
            doc["precision"] = self.precision_target().to_doc()
        return doc

    def fixed_canonical(self, achieved_runs: int) -> dict:
        """The canonical form of the *equivalent fixed request* of an
        adaptive one: same content, ``runs`` pinned to the stopping
        rule's achieved total, no precision block.  Adaptive results are
        bit-identical to this request's by construction, so caching them
        under its key lets later ``runs=N`` requests hit."""
        doc = self.canonical()
        doc.pop("precision", None)
        doc["runs"] = achieved_runs
        return doc

    def fixed_key(self, db_fingerprint: str, achieved_runs: int) -> str:
        """Cache key of :meth:`fixed_canonical` (see there)."""
        blob = json.dumps(
            {"db": db_fingerprint, "request": self.fixed_canonical(achieved_runs)},
            sort_keys=True,
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def key(self, db_fingerprint: str) -> str:
        """Content-addressed identity of this request against one
        distribution database -- the singleflight / cache-tier key.

        Two requests share a key exactly when a direct ``predict(...)``
        call would produce bit-identical times for both, so serving one
        evaluation (or one cached document) to all of them preserves the
        reproducibility contract.  Stable across server restarts and
        hosts (unlike pickled closures, which the on-disk
        ``PredictionCache`` falls back to for callable models).
        """
        blob = json.dumps(
            {"db": db_fingerprint, "request": self.canonical()}, sort_keys=True
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def routing_key(self) -> str:
        """Shard-routing identity: the canonical request plus the *ref*
        of the database it targets (never the resolved fingerprint).

        The front router (and the sharding-aware load generator) must
        map a request to its owner shard before any shard is consulted,
        so the routing key cannot depend on the fingerprint only shards
        can resolve.  Ref-less requests hash the canonical form alone
        (all shards serve the startup database, so a shared routing key
        implies a shared cache/singleflight key -- unchanged from the
        single-db service).  Requests naming a ``db`` ref fold the ref
        in, so tenant traffic against different databases spreads
        across the ring instead of piling one shard with every tenant's
        copy of a popular request.  Hashing the *ref* -- not its
        current resolution -- keeps routing stable across alias
        promotions: an in-flight hot-swap moves no keys between shards,
        and the full :meth:`key` (which embeds the resolved
        fingerprint) still separates old- and new-version results in
        every cache tier.
        """
        doc = self.canonical()
        if self.db is not None:
            doc = {"db_ref": self.db, "request": doc}
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def build_model(self, spec) -> tuple[object, dict | None]:
        """Instantiate (model, vm params) for the simulated *spec*."""
        _, builder = MODELS[self.model]
        return builder(spec, self.model_params)


def routing_key_for(body: object) -> str | None:
    """Best-effort routing key for a raw ``/predict`` body.

    Returns ``None`` when *body* does not validate -- the caller routes
    it anywhere and lets the owning shard produce the 400, keeping
    request validation in exactly one place (the shard).
    """
    try:
        return PredictRequest.from_dict(body).routing_key()
    except RequestError:
        return None


def prediction_record(
    pred: Prediction,
    *,
    seed: int | None = None,
    vector_runs: bool | None = None,
    vector_batch: int | None = None,
    compiled: bool | None = None,
    nic_serialisation: str | None = None,
    workers: int | None = None,
    extra: dict | None = None,
) -> dict:
    """Machine-readable record of one prediction.

    Shared between the service's ``/predict`` response serialiser and
    ``repro predict --json``: carries the per-run times plus the seed and
    engine flags needed to reproduce them bit-identically with a direct
    ``predict(...)`` call.
    """
    record = {
        "nprocs": pred.nprocs,
        "timing": pred.timing_name,
        "runs": pred.runs,
        "times": [float(t) for t in pred.times],
        "mean_time": pred.mean_time,
        "std_time": pred.std_time,
        "stderr": pred.stderr,
        "wall_time": pred.wall_time,
        "cached": pred.cached,
        "engine": {},
    }
    if pred.precision is not None:
        # Adaptive provenance: the target, per-round RSE trail, and
        # whether the stopping rule converged before the run cap.
        record["precision"] = pred.precision
    if seed is not None:
        record["seed"] = seed
    if vector_runs is not None:
        record["engine"]["vector_runs"] = bool(vector_runs)
        if vector_runs:
            record["engine"]["vector_batch"] = vector_batch or VECTOR_BATCH
    if compiled is not None:
        record["engine"]["compiled"] = bool(compiled)
    if nic_serialisation is not None:
        record["engine"]["nic_serialisation"] = nic_serialisation
    if workers is not None:
        record["engine"]["workers"] = workers
    if extra:
        record.update(extra)
    return record
