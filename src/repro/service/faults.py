"""Deterministic fault injection for the serving stack.

Real clusters fail partially -- the paper's 200 ms outlier tails *are*
fault behaviour (TCP retransmission timeouts under saturation) -- and a
serving layer over the prediction engine has the same obligation the
benchmark harness has: survive the fault, report it, and keep the
numbers right.  This module provides the controlled failures the
fault-tolerance tests, the chaos benchmark and the ``repro chaos`` CLI
inject:

* ``kill_worker``      -- SIGKILL one process of the engine's
  :class:`~concurrent.futures.ProcessPoolExecutor` mid-evaluation
  (exercises the ``BrokenProcessPool`` rebuild/re-dispatch path);
* ``corrupt_cache``    -- overwrite an on-disk prediction-cache entry
  (or, when the service has an on-disk registry, a registry CAS entry)
  with truncated garbage (exercises quarantine-on-read);
* ``delay_cache``      -- stall the next disk-cache read;
* ``stall_evaluator``  -- put the evaluator thread to sleep before the
  next micro-batch (exercises deadlines, admission and the breaker).

Every fault is *armed* explicitly (or through a seeded
:class:`FaultPlan`) and fires at a deterministic site: the injector
counts site events (evaluator batches, disk-cache reads, pool
dispatches) and a fault armed ``at=k`` fires on event *k*; ``at=None``
fires on the next event.  Randomness (which cache entry to corrupt,
plan composition) comes only from the injector's own seeded generator,
so a chaos run is replayable.

The injector is attached to a :class:`~.server.PredictionService`
(``fault_injector=``/``repro serve --chaos``) which exposes it over
``POST /chaos`` -- the endpoint ``repro chaos`` drives.  Injection
hooks are cheap no-ops when nothing is armed, and the harness never
changes served numbers: every fault either delays work or destroys
state the recovery paths must reconstruct bit-identically.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time as _time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultPlan", "FaultSpec"]

#: the injectable fault kinds, in the order seeded plans draw them
FAULT_KINDS = ("kill_worker", "corrupt_cache", "delay_cache", "stall_evaluator")

#: site whose event counter triggers each fault kind
_SITE_FOR = {
    "kill_worker": "dispatch",
    "corrupt_cache": "cache_read",
    "delay_cache": "cache_read",
    "stall_evaluator": "evaluate",
}

#: bytes a corrupted cache entry is truncated to (invalid JSON)
_GARBAGE = '{"version": 2, "times": [0.0'


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what to inject, when, and how hard."""

    kind: str
    seconds: float = 0.0  #: stall/delay duration
    at: int | None = None  #: site event index to fire on (None = next)
    key: str | None = None  #: corrupt_cache: a specific request key

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")

    def to_dict(self) -> dict:
        doc = {"kind": self.kind}
        if self.seconds:
            doc["seconds"] = self.seconds
        if self.at is not None:
            doc["at"] = self.at
        if self.key is not None:
            doc["key"] = self.key
        return doc


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults (the ``repro chaos plan`` unit)."""

    faults: tuple[FaultSpec, ...]
    seed: int | None = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        length: int = 4,
        max_seconds: float = 0.05,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Draw *length* faults from a seeded generator.

        Two plans built from the same arguments are identical, so a
        chaos campaign is replayable from its seed alone.
        """
        if length < 1:
            raise ValueError("length must be >= 1")
        rng = random.Random(seed)
        faults = []
        for _ in range(length):
            kind = kinds[rng.randrange(len(kinds))]
            seconds = 0.0
            if kind in ("delay_cache", "stall_evaluator"):
                seconds = round(rng.uniform(0.0, max_seconds), 6)
            faults.append(FaultSpec(kind=kind, seconds=seconds))
        return cls(faults=tuple(faults), seed=seed)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }


class FaultInjector:
    """Armed-fault registry plus the injection hooks the stack calls.

    Thread-safe: faults are armed from the event-loop thread (the
    ``/chaos`` endpoint) or a test, and fire on the evaluator thread
    (stalls, pool kills) or the event-loop thread (cache reads).
    """

    def __init__(
        self,
        seed: int = 0,
        cache_root: str | Path | None = None,
        registry_root: str | Path | None = None,
    ):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.cache_root = Path(cache_root) if cache_root is not None else None
        #: on-disk registry root (set by the service when it has one);
        #: makes ``corrupt_cache`` also consider registry CAS entries
        self.registry_root = (
            Path(registry_root) if registry_root is not None else None
        )
        self._armed: dict[str, list[FaultSpec]] = {k: [] for k in FAULT_KINDS}
        #: site -> events seen so far
        self.events: dict[str, int] = {
            "evaluate": 0, "cache_read": 0, "dispatch": 0,
        }
        #: kind -> faults actually fired
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}

    # -- arming ------------------------------------------------------------------
    def arm(
        self,
        kind: str,
        seconds: float = 0.0,
        at: int | None = None,
        key: str | None = None,
    ) -> FaultSpec:
        """Arm one fault; ``corrupt_cache`` fires immediately when an
        on-disk entry already exists (otherwise on the next read)."""
        spec = FaultSpec(kind=kind, seconds=seconds, at=at, key=key)
        if kind == "corrupt_cache" and at is None:
            if self.corrupt_now(key=key) is not None:
                return spec
        with self._lock:
            self._armed[kind].append(spec)
        return spec

    def arm_plan(self, plan: FaultPlan) -> list[FaultSpec]:
        return [
            self.arm(s.kind, seconds=s.seconds, at=s.at, key=s.key)
            for s in plan.faults
        ]

    def _take(self, kind: str, site: str) -> FaultSpec | None:
        """Pop the first armed *kind* fault due at the current event."""
        with self._lock:
            count = self.events[site]
            armed = self._armed[kind]
            for i, spec in enumerate(armed):
                if spec.at is None or spec.at <= count:
                    armed.pop(i)
                    self.injected[kind] += 1
                    return spec
        return None

    # -- direct injection --------------------------------------------------------
    def corrupt_now(self, key: str | None = None) -> Path | None:
        """Overwrite a stored prediction-cache entry -- or a registry
        CAS entry, when an on-disk registry exists -- with truncated
        garbage; returns the poisoned path (None when nothing to hit).

        With *key* the target is that specific prediction-cache entry;
        keyless corruption draws seeded from every eligible file, so a
        chaos plan exercises both stores' quarantine paths.
        """
        candidates: list[Path] = []
        root = self.cache_root
        if key is not None:
            if root is not None:
                candidates = [root / f"predict-{key}.json"]
                candidates = [p for p in candidates if p.exists()]
        else:
            if root is not None and root.is_dir():
                candidates.extend(sorted(root.glob("predict-*.json")))
            if self.registry_root is not None:
                cas = self.registry_root / "cas"
                if cas.is_dir():
                    candidates.extend(sorted(cas.glob("db-*.json")))
        if not candidates:
            return None
        path = candidates[self._rng.randrange(len(candidates))]
        path.write_text(_GARBAGE)
        with self._lock:
            self.injected["corrupt_cache"] += 1
        return path

    # -- hooks (called by the stack) ---------------------------------------------
    def on_evaluate(self) -> None:
        """Evaluator thread, before each micro-batch evaluation."""
        with self._lock:
            self.events["evaluate"] += 1
        spec = self._take("stall_evaluator", "evaluate")
        if spec is not None and spec.seconds > 0:
            _time.sleep(spec.seconds)

    def on_cache_read(self, path: Path | None) -> None:
        """Event-loop thread, before each disk-cache read."""
        with self._lock:
            self.events["cache_read"] += 1
        spec = self._take("corrupt_cache", "cache_read")
        if spec is not None and path is not None and path.exists():
            path.write_text(_GARBAGE)
        spec = self._take("delay_cache", "cache_read")
        if spec is not None and spec.seconds > 0:
            _time.sleep(spec.seconds)

    def on_pool_dispatch(self, pool) -> None:
        """Engine thread, after submitting work to a fresh process pool."""
        with self._lock:
            self.events["dispatch"] += 1
        spec = self._take("kill_worker", "dispatch")
        if spec is None:
            return
        procs = sorted(
            getattr(pool, "_processes", {}).values(), key=lambda p: p.pid
        )
        if not procs:
            # Pool has no live worker yet: re-arm for the next dispatch.
            with self._lock:
                self.injected["kill_worker"] -= 1
                self._armed["kill_worker"].insert(0, spec)
            return
        victim = procs[self._rng.randrange(len(procs))]
        try:
            os.kill(victim.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    # -- introspection -----------------------------------------------------------
    @property
    def armed(self) -> dict[str, int]:
        with self._lock:
            return {k: len(v) for k, v in self._armed.items()}

    def snapshot(self) -> dict:
        """JSON-able state for ``GET /chaos`` and ``repro chaos status``."""
        with self._lock:
            return {
                "armed": {k: len(v) for k, v in self._armed.items()},
                "injected": dict(self.injected),
                "events": dict(self.events),
                "cache_root": (
                    str(self.cache_root) if self.cache_root else None
                ),
                "registry_root": (
                    str(self.registry_root) if self.registry_root else None
                ),
            }
