"""Multi-process shard supervision for the sharded serving tier.

``repro serve --shards N`` runs here: a :class:`Supervisor` forks N
full server processes (each its own event loop, evaluator thread, LRU
and breaker -- the whole :class:`~.server.PredictionService` funnel)
and binds them together into one deployment:

* **shared cache plane** -- every shard points its disk tier at one
  cache directory.  ``PredictionCache`` writes are already atomic
  (mkstemp + fsync + rename) and corrupt entries quarantine on read,
  so concurrent shard processes need no further coordination: a
  prediction computed by any shard (or by ``repro predict`` against
  the same directory) is a disk hit for all of them.
* **front router** (default) -- a :class:`~.router.ShardRouter` on the
  public port, consistent-hash routing per :mod:`.sharding`; or
* **SO_REUSEPORT** -- no router: every shard binds the same (host,
  port) and the kernel spreads connections.  Zero added hops, no cache
  affinity; the shared disk tier is what keeps repeat traffic cheap.
* **restart** -- a monitor thread waits on the child process sentinels;
  an unexpected exit marks the backend down (its hash range fails over
  to the next ring owner) and respawns it on the same port, after
  which its range snaps back.
* **rolling drain** -- SIGTERM drains shards one at a time: mark the
  shard draining at the router, SIGTERM it (the child runs the same
  graceful drain as a standalone server), wait, move on.  At most one
  shard's capacity is gone at any moment.

Shards are spawned (not forked): the supervisor already runs threads,
and spawn keeps the children import-clean.  Each child loads the
distribution database from a JSON snapshot on disk -- the supervisor
saves one if it was handed a live DB -- so all shards provably serve
the same ``db_fingerprint``.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import shutil
import signal
import socket
import tempfile
import threading
import time

from .router import Backend, RouterThread, ShardRouter

__all__ = ["Supervisor"]

#: seconds a freshly spawned shard gets to pass /healthz
STARTUP_TIMEOUT = 60.0


def _free_port(host: str) -> int:
    """A currently free TCP port on *host* (bind-to-0 trick)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _shard_main(cfg: dict) -> None:  # pragma: no cover - runs in the child
    """Child-process entry point: one full prediction server.

    *cfg* is a plain picklable dict (spawn ships it across).  The child
    installs the same SIGTERM/SIGINT graceful drain a standalone
    ``repro serve`` process has, so the supervisor's rolling drain is
    just a SIGTERM per shard.
    """
    import asyncio

    from ..mpibench import DistributionDB
    from ..obs import Tracer
    from ..registry import RegistryStore
    from ..simnet import perseus
    from .server import PredictionService, ServiceServer

    db = DistributionDB.load(cfg["db_path"])
    tracer = Tracer(capacity=cfg["trace_buffer"]) if cfg["tracing"] else None
    # All shards of one deployment open the same registry directory:
    # writes are atomic per file, so a database uploaded (or an alias
    # promoted) through any shard is immediately visible to every
    # other -- the shared registry plane, same idea as the cache plane.
    registry = (
        RegistryStore(cfg["registry_dir"])
        if cfg.get("registry_dir")
        else None
    )
    service = PredictionService(
        db,
        spec=perseus(),
        workers=cfg["workers"],
        cache_dir=cfg["cache_dir"],
        lru_size=cfg["lru_size"],
        max_batch=cfg["max_batch"],
        max_wait=cfg["max_wait"],
        queue_limit=cfg["queue_limit"],
        deadline_s=cfg["deadline_s"],
        batching=cfg["batching"],
        dedup=cfg["dedup"],
        caching=cfg["caching"],
        tracer=tracer,
        shard_id=cfg["shard_id"],
        registry=registry,
        tenant_rate=cfg.get("tenant_rate", 0.0),
    )
    server = ServiceServer(
        service,
        host=cfg["host"],
        port=cfg["port"],
        reuse_port=cfg["reuse_port"],
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_signal.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        try:
            await stop_signal.wait()
            await server.drain(cfg["drain_grace"])
        finally:
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass


class Supervisor:
    """N shard server processes plus (optionally) the front router."""

    def __init__(
        self,
        db,
        n_shards: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        router: bool = True,
        reuse_port: bool = False,
        restart: bool = True,
        drain_grace: float = 10.0,
        workers: int | None = 1,
        lru_size: int = 1024,
        max_batch: int = 8,
        max_wait: float = 0.002,
        queue_limit: int = 64,
        deadline_s: float = 30.0,
        batching: bool = True,
        dedup: bool = True,
        caching: bool = True,
        tracing: bool = True,
        trace_buffer: int = 256,
        registry_dir=None,
        tenant_rate: float = 0.0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                raise RuntimeError("SO_REUSEPORT not available on this platform")
            router = False
        self.db = db  # a DistributionDB or a path to a saved one
        self.n_shards = n_shards
        self.host = host
        self.port = port  #: public port (router's, or the shared one)
        self.use_router = router
        self.reuse_port = reuse_port
        self.restart = restart
        self.drain_grace = drain_grace
        self._opts = {
            "workers": workers,
            "lru_size": lru_size,
            "max_batch": max_batch,
            "max_wait": max_wait,
            "queue_limit": queue_limit,
            "deadline_s": deadline_s,
            "batching": batching,
            "dedup": dedup,
            "caching": caching,
            "tracing": tracing,
            "trace_buffer": trace_buffer,
        }
        self.cache_dir = cache_dir
        self._tmp_cache = cache_dir is None and n_shards > 1
        #: one registry directory shared by every shard.  Multi-shard
        #: deployments always get one (temporary if unconfigured) --
        #: per-shard in-memory registries would let an upload land on
        #: one shard and 404 on its siblings.
        self.registry_dir = registry_dir
        self.tenant_rate = tenant_rate
        self._tmp_registry = registry_dir is None and n_shards > 1
        self._tmp_db: str | None = None
        self.shard_ports: list[int] = []
        self.procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self.router_thread: RouterThread | None = None
        self.restarts = 0  #: shards respawned after unexpected death
        self._ctx = multiprocessing.get_context("spawn")
        self._stopping = threading.Event()
        self._wake = threading.Event()  # router saw a backend die
        self._monitor: threading.Thread | None = None
        self._lock = threading.Lock()  # guards procs across threads

    # -- wiring ----------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The public (host, port) clients should talk to."""
        return self.host, self.port

    def shard_address(self, shard_id: int) -> tuple[str, int]:
        return self.host, self.shard_ports[shard_id]

    def _shard_cfg(self, shard_id: int) -> dict:
        return {
            "db_path": self._db_path,
            "shard_id": shard_id,
            "host": self.host,
            "port": self.shard_ports[shard_id],
            "cache_dir": self.cache_dir,
            "reuse_port": self.reuse_port,
            "drain_grace": self.drain_grace,
            "registry_dir": (
                None if self.registry_dir is None
                else os.fspath(self.registry_dir)
            ),
            "tenant_rate": self.tenant_rate,
            **self._opts,
        }

    def _spawn(self, shard_id: int):
        proc = self._ctx.Process(
            target=_shard_main,
            args=(self._shard_cfg(shard_id),),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        proc.start()
        return proc

    def _wait_healthy(self, shard_id: int, timeout: float = STARTUP_TIMEOUT):
        """Block until the shard answers /healthz (or raise)."""
        from .client import ServiceClient

        host, port = self.shard_address(shard_id)
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            proc = self.procs.get(shard_id)
            if proc is not None and not proc.is_alive():
                raise RuntimeError(
                    f"shard {shard_id} exited during startup "
                    f"(exitcode {proc.exitcode})"
                )
            client = ServiceClient(host, port, timeout=5.0)
            try:
                doc = client.healthz()
                if doc.get("status") == "ok":
                    return doc
            except Exception as exc:
                last = exc
            finally:
                client.close()
            time.sleep(0.05)
        raise RuntimeError(
            f"shard {shard_id} not healthy after {timeout:g}s: {last}"
        )

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        from ..mpibench.results import DistributionDB

        if isinstance(self.db, (str, os.PathLike)):
            self._db_path = os.fspath(self.db)
        else:
            # Snapshot the live DB so spawned children (which do not
            # inherit our heap) load the exact same distributions.
            fd, self._tmp_db = tempfile.mkstemp(
                prefix="repro-shard-db-", suffix=".json"
            )
            os.close(fd)
            self.db.save(self._tmp_db)
            self._db_path = self._tmp_db
        if self._tmp_cache:
            self.cache_dir = tempfile.mkdtemp(prefix="repro-shard-cache-")
        if self._tmp_registry:
            self.registry_dir = tempfile.mkdtemp(prefix="repro-registry-")
        if self.reuse_port:
            # All shards share the public port; pick one if unbound.
            if self.port == 0:
                self.port = _free_port(self.host)
            self.shard_ports = [self.port] * self.n_shards
        else:
            self.shard_ports = [
                _free_port(self.host) for _ in range(self.n_shards)
            ]
        for shard_id in range(self.n_shards):
            self.procs[shard_id] = self._spawn(shard_id)
        for shard_id in range(self.n_shards):
            self._wait_healthy(shard_id)
        if self.use_router:
            backends = [
                Backend(i, self.host, self.shard_ports[i])
                for i in range(self.n_shards)
            ]
            router = ShardRouter(
                backends,
                host=self.host,
                port=self.port,
                on_down=lambda _sid: self._wake.set(),
            )
            self.router_thread = RouterThread(router)
            _, self.port = self.router_thread.start()
        elif not self.reuse_port:
            # Router-less, distinct ports: "the public port" is shard
            # 0's; callers route client-side via shard_address().
            self.port = self.shard_ports[0]
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True
        )
        self._monitor.start()
        return self.address

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- shard death -----------------------------------------------------------
    def _monitor_loop(self) -> None:
        """Wait on child sentinels; restart whoever dies unexpectedly."""
        while not self._stopping.is_set():
            with self._lock:
                sentinels = {
                    proc.sentinel: sid for sid, proc in self.procs.items()
                }
            if not sentinels:
                if self._stopping.wait(timeout=0.2):
                    return
                continue
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0.2
            )
            self._wake.clear()
            if self._stopping.is_set():
                return
            for sentinel in ready:
                self._handle_death(sentinels[sentinel])

    def _handle_death(self, shard_id: int) -> None:
        with self._lock:
            proc = self.procs.get(shard_id)
            # Death is judged by sentinel readiness, not is_alive():
            # if the child was already reaped elsewhere, waitpid gets
            # ECHILD and is_alive() misreports True forever, while a
            # dead child's sentinel is reliably readable.
            if proc is None or not multiprocessing.connection.wait(
                [proc.sentinel], timeout=0
            ):
                return
            proc.join(timeout=5.0)
            if self.router_thread is not None:
                self.router_thread.mark_down(shard_id)
            if not self.restart:
                del self.procs[shard_id]
                return
            self.procs[shard_id] = self._spawn(shard_id)
            self.restarts += 1
        try:
            self._wait_healthy(shard_id)
        except RuntimeError:
            return  # stays down; the ring keeps its range failed over
        if self.router_thread is not None:
            self.router_thread.mark_up(shard_id)

    def kill_shard(self, shard_id: int) -> int:
        """SIGKILL one shard (tests / chaos drills); returns its pid."""
        with self._lock:
            proc = self.procs[shard_id]
            pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # -- shutdown --------------------------------------------------------------
    def rolling_drain(self) -> None:
        """Drain shards one at a time, then the router: at most one
        shard's capacity is out of service at any moment."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for shard_id in range(self.n_shards):
            with self._lock:
                proc = self.procs.get(shard_id)
            if proc is None or not proc.is_alive():
                continue
            if self.router_thread is not None:
                self.router_thread.mark_draining(shard_id)
            proc.terminate()  # SIGTERM -> child-side graceful drain
            proc.join(timeout=self.drain_grace + 10.0)
            if proc.is_alive():  # pragma: no cover - wedged child
                proc.kill()
                proc.join(timeout=5.0)
            if self.router_thread is not None:
                self.router_thread.mark_down(shard_id)
        if self.router_thread is not None:
            self.router_thread.set_draining()
        self.stop()

    def stop(self) -> None:
        """Immediate shutdown (idempotent; rolling_drain ends here)."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            procs = list(self.procs.values())
            self.procs = {}
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=self.drain_grace + 10.0)
            if proc.is_alive():  # pragma: no cover - wedged child
                proc.kill()
                proc.join(timeout=5.0)
        if self.router_thread is not None:
            self.router_thread.stop()
            self.router_thread = None
        if self._tmp_db is not None:
            try:
                os.unlink(self._tmp_db)
            except OSError:  # pragma: no cover
                pass
            self._tmp_db = None
        if self._tmp_cache and self.cache_dir is not None:
            shutil.rmtree(self.cache_dir, ignore_errors=True)
            self.cache_dir = None
        if self._tmp_registry and self.registry_dir is not None:
            shutil.rmtree(self.registry_dir, ignore_errors=True)
            self.registry_dir = None

    # -- CLI entry -------------------------------------------------------------
    def run(self) -> int:  # pragma: no cover - CLI foreground loop
        """Foreground supervision for ``repro serve --shards N``."""
        stop = threading.Event()

        def _signalled(signum, frame):
            stop.set()

        old = {
            sig: signal.signal(sig, _signalled)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            host, port = self.start()
            topology = (
                "SO_REUSEPORT" if self.reuse_port
                else "router" if self.use_router
                else "direct"
            )
            print(
                f"repro service listening on http://{host}:{port} "
                f"({self.n_shards} shards, {topology}; shard ports: "
                f"{json.dumps(self.shard_ports)})",
                flush=True,
            )
            stop.wait()
            print(
                f"rolling drain (grace {self.drain_grace:g}s/shard)...",
                flush=True,
            )
            self.rolling_drain()
        finally:
            self.stop()
            for sig, handler in old.items():
                signal.signal(sig, handler)
        print("drained; bye", flush=True)
        return 0
