"""Micro-batching: coalesce concurrent predictions into engine batches.

PR 2's :class:`~repro.pevpm.vector.BatchedVirtualMachine` evaluates a
whole chunk of Monte Carlo runs in one lockstep sweep/match pass --
exactly the shape a serving layer wants.  The micro-batcher completes
the picture on the request side: concurrent ``/predict`` misses are
collected for up to ``max_wait`` seconds (or ``max_batch`` requests,
whichever first) and handed to the engine as **one**
:func:`~repro.pevpm.parallel.evaluate_groups` call.  Each request stays
its own :class:`~repro.pevpm.parallel.RunGroup` with its own seed
streams -- coalescing shares pool start-up, per-group program
compilation and (with ``workers > 1``) the worker processes, but never
the random draws, so every request's times remain bit-identical to a
direct ``predict(...)`` call.  Within a group, ``vector_runs`` requests
are evaluated as ``BatchedVirtualMachine`` chunks, the engine's highest-
throughput path.

Evaluation runs on a single dedicated executor thread: batches pipeline
(the collector keeps coalescing the next batch while the current one
evaluates) and the engine's timing-model state is never shared between
threads.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from .metrics import ServiceMetrics

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce ``submit()`` items into batched evaluator calls.

    *evaluate* is called with a list of items on the evaluator thread
    and must return one result per item **in order**; a result may be an
    exception instance, which is re-raised to that item's awaiter only
    (one poisoned request must not fail its batch-mates).
    """

    def __init__(
        self,
        evaluate: Callable[[list], list],
        metrics: ServiceMetrics,
        max_batch: int = 8,
        max_wait: float = 0.002,
        enabled: bool = True,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self._evaluate = evaluate
        self._metrics = metrics
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.enabled = enabled
        #: monotonically increasing batch ordinal (trace/log correlation)
        self._batch_seq = 0
        self._pending: asyncio.Queue | None = None
        self._collector: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()
        #: True while the collector holds popped items it has not yet
        #: handed to a dispatch task (the coalescing window); drain()
        #: must not declare the batcher empty during it.
        self._coalescing = False
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-eval"
        )

    async def submit(self, item, trace=None) -> object:
        """Queue *item* for batched evaluation; await its result.

        With *trace*, the whole stay in the batcher -- coalescing wait
        plus evaluation -- is recorded as a ``batch`` span, and the
        dispatch adds a per-request ``engine`` span covering the
        evaluator-thread call (tagged with batch ordinal and size).
        """
        start = None if trace is None else trace.now()
        try:
            loop = asyncio.get_running_loop()
            fut: asyncio.Future = loop.create_future()
            if not self.enabled:
                await self._dispatch([(item, fut, trace)])
                return await fut
            if self._pending is None:
                self._pending = asyncio.Queue()
            if self._collector is None or self._collector.done():
                # Crash recovery: a collector that died (or was torn
                # down) would strand every queued submit in an un-awaited
                # future; restart it and count the restart.
                if self._collector is not None:
                    self._collector.cancelled() or self._collector.exception()
                    self._metrics.inc("repro_batcher_restarts_total")
                self._collector = asyncio.create_task(self._collect())
            await self._pending.put((item, fut, trace))
            return await fut
        finally:
            if trace is not None:
                trace.add_span("batch", start, trace.now())

    async def _collect(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._pending.get()
            self._coalescing = True
            try:
                batch = [first]
                deadline = loop.time() + self.max_wait
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._pending.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
                # Evaluate in the background so the collector keeps
                # coalescing the next batch while this one runs; track the
                # task so shutdown can drain in-flight evaluations.
                task = asyncio.create_task(self._dispatch(batch))
                self._dispatches.add(task)
                task.add_done_callback(self._dispatches.discard)
            finally:
                self._coalescing = False

    async def _dispatch(self, batch: list[tuple]) -> None:
        self._batch_seq += 1
        batch_id = self._batch_seq
        self._metrics.inc("repro_batches_total")
        self._metrics.inc("repro_batched_requests_total", len(batch))
        if len(batch) > 1:
            self._metrics.inc("repro_coalesced_requests_total", len(batch) - 1)
        self._metrics.set_gauge("repro_batch_occupancy", len(batch))
        loop = asyncio.get_running_loop()
        items = [item for item, _, _ in batch]
        # All traces of a service share one tracer clock, so one
        # timestamp pair brackets the evaluator call for every request
        # in the batch.
        traces = [tr for _, _, tr in batch if tr is not None]
        t0 = traces[0].now() if traces else None
        try:
            results = await loop.run_in_executor(
                self._pool, self._evaluate, items
            )
        except BaseException as exc:  # evaluator itself failed wholesale
            results = [exc] * len(batch)
        if traces:
            t1 = traces[0].now()
            for tr in traces:
                tr.add_span(
                    "engine", t0, t1,
                    batch_id=batch_id, batch_size=len(batch),
                )
        for (_, fut, _), result in zip(batch, results):
            if fut.done():
                continue
            if isinstance(result, BaseException):
                fut.set_exception(result)
            else:
                fut.set_result(result)

    async def drain(self) -> None:
        """Wait until every queued item has been dispatched and every
        in-flight batch has resolved (the graceful-shutdown barrier:
        callers holding responses still get them)."""
        while True:
            if self._dispatches:
                await asyncio.gather(
                    *list(self._dispatches), return_exceptions=True
                )
                continue
            if self._coalescing or (
                self._pending is not None and not self._pending.empty()
            ):
                # Queued items, or items the collector popped but has
                # not yet handed to a dispatch task: wait a coalescing
                # interval and re-check (returning now would let stop()
                # cancel connections still awaiting that batch).
                await asyncio.sleep(self.max_wait or 0.001)
                continue
            return

    def close(self) -> None:
        if self._collector is not None:
            self._collector.cancel()
            self._collector = None
        self._pool.shutdown(wait=False, cancel_futures=True)
