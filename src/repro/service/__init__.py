"""The prediction service: serving PEVPM over HTTP/JSON.

The paper's PEVPM is an execution-driven predictor meant to be *queried*
-- "what is the run time of this model at P processes on this network?".
This subsystem turns the engine into a stdlib-only asyncio service with
the request funnel a production serving layer needs:

* :mod:`.server`  -- asyncio HTTP server: ``/predict``,
  ``/distributions``, ``/healthz``, ``/metrics``;
* :mod:`.batcher` -- micro-batching of concurrent misses into one
  :func:`~repro.pevpm.parallel.evaluate_groups` call (whose
  ``vector_runs`` work units are ``BatchedVirtualMachine`` chunks);
* :mod:`.dedup`   -- singleflight collapse of identical in-flight
  requests;
* :mod:`.cache`   -- in-memory LRU tier over the on-disk
  :class:`~repro.pevpm.parallel.PredictionCache`;
* :mod:`.jobs`    -- bounded admission (429 + Retry-After) and
  deadlines (504);
* :mod:`.metrics` -- counters and latency distributions, Prometheus
  text format;
* :mod:`.client`  -- blocking client and a closed-loop load generator;
* :mod:`.records` -- request schema and the shared prediction record.

The contract throughout: every served ``/predict`` response carries the
seed and engine flags that produced it, and its ``times`` are
bit-identical to the same :func:`repro.pevpm.predict` call made
directly.
"""

from .batcher import MicroBatcher
from .cache import TieredCache
from .client import LoadGenerator, LoadResult, ServiceClient, ServiceError
from .dedup import SingleFlight
from .jobs import JobQueue, QueueFull
from .metrics import ServiceMetrics
from .records import MODELS, PredictRequest, RequestError, prediction_record
from .server import PredictionService, ServiceServer
from .server import ServiceThread

__all__ = [
    "LoadGenerator",
    "LoadResult",
    "MODELS",
    "MicroBatcher",
    "PredictRequest",
    "PredictionService",
    "QueueFull",
    "RequestError",
    "JobQueue",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ServiceThread",
    "SingleFlight",
    "TieredCache",
    "prediction_record",
]
