"""The prediction service: serving PEVPM over HTTP/JSON.

The paper's PEVPM is an execution-driven predictor meant to be *queried*
-- "what is the run time of this model at P processes on this network?".
This subsystem turns the engine into a stdlib-only asyncio service with
the request funnel a production serving layer needs:

* :mod:`.server`  -- asyncio HTTP server: ``/predict``,
  ``/distributions``, ``/healthz``, ``/metrics``;
* :mod:`.batcher` -- micro-batching of concurrent misses into one
  :func:`~repro.pevpm.parallel.evaluate_groups` call (whose
  ``vector_runs`` work units are ``BatchedVirtualMachine`` chunks);
* :mod:`.dedup`   -- singleflight collapse of identical in-flight
  requests;
* :mod:`.cache`   -- in-memory LRU tier over the on-disk
  :class:`~repro.pevpm.parallel.PredictionCache`;
* :mod:`.jobs`    -- bounded admission (429 + Retry-After), deadlines
  (504) and the engine-health circuit breaker (503);
* :mod:`.faults`  -- deterministic fault injection (worker kills,
  cache corruption, stalls) behind ``repro serve --chaos``;
* :mod:`.metrics` -- counters, gauges, per-stage latency histograms
  and endpoint latency summaries, Prometheus text format (the
  observability layer of :mod:`repro.obs` feeds the stage histograms
  and the queue-depth / batch-occupancy gauges);
* :mod:`.client`  -- blocking client and a closed-loop load generator;
* :mod:`.records` -- request schema and the shared prediction record;
* :mod:`.sharding`, :mod:`.router`, :mod:`.supervisor` -- the sharded
  serving tier: consistent-hash routing over content-addressed request
  keys, a front router with failover, and multi-process supervision
  (``repro serve --shards N``) sharing one on-disk cache plane.

The contract throughout: every served ``/predict`` response carries the
seed and engine flags that produced it, and its ``times`` are
bit-identical to the same :func:`repro.pevpm.predict` call made
directly.
"""

from .batcher import MicroBatcher
from .cache import TieredCache
from .client import (
    LoadGenerator,
    LoadResult,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from .dedup import LeaderCancelled, SingleFlight
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from .jobs import BreakerOpen, CircuitBreaker, JobQueue, JobSlot, QueueFull
from .metrics import ServiceMetrics
from .records import (
    MODELS,
    PredictRequest,
    RequestError,
    prediction_record,
    routing_key_for,
)
from .router import Backend, RouterThread, ShardRouter
from .server import PredictionService, ServiceServer
from .server import ServiceThread
from .sharding import HashRing
from .supervisor import Supervisor

__all__ = [
    "Backend",
    "BreakerOpen",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HashRing",
    "JobQueue",
    "JobSlot",
    "LeaderCancelled",
    "LoadGenerator",
    "LoadResult",
    "MODELS",
    "MicroBatcher",
    "PredictRequest",
    "PredictionService",
    "QueueFull",
    "RequestError",
    "RetryPolicy",
    "RouterThread",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ServiceThread",
    "ShardRouter",
    "SingleFlight",
    "Supervisor",
    "TieredCache",
    "prediction_record",
    "routing_key_for",
]
