"""The front router: one public socket over N shard server processes.

A :class:`ShardRouter` is the portable scale-out path (SO_REUSEPORT is
the zero-hop alternative where available): it accepts client
connections, parses each request with the same HTTP machinery the
shards use, and forwards it to the shard that *owns* the request --
consistent-hash routing (:mod:`.sharding`) on the content-addressed
routing key (:meth:`~.records.PredictRequest.routing_key`).  A key
always lands on the same shard, so the funnel's throughput tiers keep
working cluster-wide: each shard's LRU holds a disjoint key range,
singleflight collapses identical in-flight requests in one process,
and repeat traffic coalesces into its owner's micro-batches.

Fault handling, in preference-ring order:

* **dead shard** -- a transport failure (refused/reset/truncated) marks
  the backend down, fires ``on_down`` (the supervisor restarts it) and
  retries the request against the key's next ring owner.  Only the dead
  shard's hash range moves; every other key keeps its owner, and
  :meth:`mark_up` snaps the range back after restart.
* **shedding shard** -- a 503 (open circuit breaker, draining, or a
  cancelled singleflight leader) is *per-process* state, so the router
  retries once against the key's failover owner instead of bouncing the
  client; 429 admission shedding is returned verbatim (overload must
  stay visible to closed-loop clients).

Every ``/predict`` response gains an ``X-Repro-Shard`` header naming
the serving shard.  ``/metrics`` aggregates all live shards'
expositions (each series already carries its ``shard_id`` label) plus
the router's own; ``/healthz`` reports per-shard health.  Requests are
idempotent by the reproducibility contract, so cross-shard retries can
never change what a client receives -- only which process computes it.
"""

from __future__ import annotations

import asyncio
import json
import threading

from .metrics import ServiceMetrics
from .records import routing_key_for
from .server import read_http_request, render_http_response
from .sharding import DEFAULT_REPLICAS, HashRing

__all__ = ["Backend", "RouterThread", "ShardRouter"]

#: shard statuses a router retries against the failover owner: breaker
#: open / draining / leader-cancelled are per-process conditions another
#: shard may well not share.  429 is deliberately absent -- admission
#: shedding is load, and load must surface to the client.
FAILOVER_STATUSES = (503,)

#: headers copied from the client request onto the forwarded request
_FORWARD_HEADERS = (
    "content-type", "x-repro-trace", "x-repro-attempt", "x-repro-tenant",
)


class Backend:
    """One shard server process as the router sees it."""

    def __init__(self, shard_id: int, host: str, port: int):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        #: ``up`` (routable) | ``down`` (dead, range failed over) |
        #: ``draining`` (alive but excluded from new work)
        self.state = "up"
        #: idle keep-alive connections to this shard
        self._pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def close_pool(self) -> None:
        for _reader, writer in self._pool:
            writer.close()
        self._pool.clear()


class ShardRouter:
    """Asyncio front router with consistent-hash request routing."""

    def __init__(
        self,
        backends: list[Backend],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = DEFAULT_REPLICAS,
        backend_timeout: float = 60.0,
        on_down=None,
    ):
        if not backends:
            raise ValueError("router needs at least one backend")
        self.host = host
        self.port = port
        self.backends: dict[int, Backend] = {
            b.shard_id: b for b in backends
        }
        #: ring over *all* configured shards; down/draining members are
        #: skipped at lookup so a recovered shard reclaims its range
        self.ring = HashRing(self.backends, replicas=replicas)
        self.backend_timeout = backend_timeout
        #: callback(shard_id) fired (loop thread) when a backend dies
        self.on_down = on_down
        self.metrics = ServiceMetrics(constant_labels={"shard_id": "router"})
        self.draining = False
        self._rr = 0  # round-robin cursor for keyless requests
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    # -- membership ------------------------------------------------------------
    def routable(self) -> list[Backend]:
        """Backends accepting new requests, in shard-id order."""
        return [
            b for _, b in sorted(self.backends.items()) if b.state == "up"
        ]

    def mark_down(self, shard_id: int) -> None:
        backend = self.backends[shard_id]
        if backend.state != "down":
            backend.state = "down"
            self.metrics.inc("repro_router_backend_down_total")
        backend.close_pool()

    def mark_draining(self, shard_id: int) -> None:
        backend = self.backends[shard_id]
        if backend.state == "up":
            backend.state = "draining"

    def mark_up(self, shard_id: int) -> None:
        self.backends[shard_id].state = "up"

    def _owners_for(self, key: str | None) -> list[Backend]:
        """Preference-ordered live backends for one request.

        With a key: the ring walk, dead/draining members skipped -- the
        first entry is the owner, the second the failover owner.
        Without one (unparseable request, plain GETs): round-robin, so
        validation errors and health probes spread evenly.
        """
        live = self.routable()
        if key is None:
            self._rr += 1
            n = len(live)
            return live[self._rr % n:] + live[: self._rr % n] if n else []
        order = self.ring.owners(key)
        by_id = {b.shard_id: b for b in live}
        return [by_id[sid] for sid in order if sid in by_id]

    # -- backend exchange ------------------------------------------------------
    async def _exchange(
        self, backend: Backend, raw_request: bytes
    ) -> tuple[int, dict, bytes]:
        """One request/response round trip on a pooled connection."""
        if backend._pool:
            reader, writer = backend._pool.pop()
            fresh = False
        else:
            reader, writer = await asyncio.open_connection(*backend.address)
            fresh = True
        try:
            writer.write(raw_request)
            await writer.drain()
            status, headers, payload = await self._read_response(reader)
        except (OSError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            if not fresh:
                # A pooled connection may simply have gone stale (shard
                # restarted, idle timeout): one clean retry on a fresh
                # connection before declaring the backend dead.
                reader, writer = await asyncio.open_connection(*backend.address)
                try:
                    writer.write(raw_request)
                    await writer.drain()
                    status, headers, payload = await self._read_response(reader)
                except (OSError, asyncio.IncompleteReadError, ConnectionError):
                    writer.close()
                    raise
            else:
                raise
        if headers.get("connection", "keep-alive") == "close":
            writer.close()
        else:
            backend._pool.append((reader, writer))
        return status, headers, payload

    @staticmethod
    async def _read_response(reader) -> tuple[int, dict, bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("backend closed connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError("malformed backend status line")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        payload = await reader.readexactly(length) if length else b""
        return status, headers, payload

    def _serialise(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> bytes:
        lines = [f"{method} {target} HTTP/1.1", "Connection: keep-alive"]
        for name in _FORWARD_HEADERS:
            value = headers.get(name)
            if value is not None:
                lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body

    async def _forward(
        self,
        key: str | None,
        method: str,
        target: str,
        headers: dict,
        body: bytes,
        failover: bool = True,
    ) -> tuple[int, dict, bytes, int | None]:
        """Route one request: ``(status, headers, payload, shard_id)``.

        Walks the key's preference ring: transport failures mark the
        backend down (firing ``on_down``) and move on; a
        :data:`FAILOVER_STATUSES` response is retried once against the
        next owner.  Exhausting the ring returns 503.
        """
        raw = self._serialise(method, target, headers, body)
        shed: tuple[int, dict, bytes, int] | None = None
        tried = 0
        for backend in self._owners_for(key):
            try:
                async with asyncio.timeout(self.backend_timeout):
                    status, resp_headers, payload = await self._exchange(
                        backend, raw
                    )
            except (OSError, asyncio.IncompleteReadError, ConnectionError,
                    TimeoutError):
                self.metrics.inc(
                    "repro_router_retries_total", reason="transport"
                )
                self.mark_down(backend.shard_id)
                if self.on_down is not None:
                    self.on_down(backend.shard_id)
                continue
            self.metrics.inc(
                "repro_router_requests_total", shard=str(backend.shard_id)
            )
            tried += 1
            if (
                failover
                and status in FAILOVER_STATUSES
                and shed is None
                and tried <= 1
            ):
                # The owner is shedding for a per-process reason; its
                # failover owner gets one chance before the client does.
                shed = (status, resp_headers, payload, backend.shard_id)
                self.metrics.inc(
                    "repro_router_failovers_total", reason=str(status)
                )
                continue
            return status, resp_headers, payload, backend.shard_id
        if shed is not None:
            return shed
        payload = json.dumps({"error": "no shards available"}).encode()
        return 503, {"retry-after": "1"}, payload, None

    # -- endpoints -------------------------------------------------------------
    async def _healthz(self) -> tuple[int, dict, bytes]:
        shards: dict[str, object] = {}
        up = 0
        for shard_id, backend in sorted(self.backends.items()):
            if backend.state == "down":
                shards[str(shard_id)] = {"status": "down"}
                continue
            try:
                async with asyncio.timeout(5.0):
                    status, _, payload = await self._exchange(
                        backend,
                        self._serialise("GET", "/healthz", {}, b""),
                    )
                doc = json.loads(payload) if status == 200 else {
                    "status": f"http {status}"
                }
            except (OSError, ConnectionError, ValueError, TimeoutError,
                    asyncio.IncompleteReadError):
                doc = {"status": "unreachable"}
            if doc.get("status") == "ok":
                up += 1
            doc["state"] = backend.state
            shards[str(shard_id)] = doc
        doc = {
            "status": "ok" if up else "degraded",
            "router": True,
            "draining": self.draining,
            "shards_up": up,
            "shards": shards,
        }
        return (200 if up else 503), {}, json.dumps(doc).encode()

    async def _metrics_text(self) -> bytes:
        """All live shards' expositions plus the router's own, with
        duplicate ``# TYPE`` headers dropped (each series is already
        unique thanks to the per-shard ``shard_id`` labels)."""
        chunks = [self.metrics.render_prometheus()]
        for backend in self.routable():
            try:
                async with asyncio.timeout(5.0):
                    status, _, payload = await self._exchange(
                        backend,
                        self._serialise("GET", "/metrics", {}, b""),
                    )
                if status == 200:
                    chunks.append(payload.decode())
            except (OSError, ConnectionError, TimeoutError,
                    asyncio.IncompleteReadError):
                continue
        seen_types: set[str] = set()
        lines: list[str] = []
        for chunk in chunks:
            for line in chunk.splitlines():
                if line.startswith("# TYPE"):
                    if line in seen_types:
                        continue
                    seen_types.add(line)
                lines.append(line)
        return ("\n".join(lines) + "\n").encode()

    async def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple[int, dict, bytes, int | None]:
        path = target.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            status, extra, payload = await self._healthz()
            return status, extra, payload, None
        if path == "/metrics" and method == "GET":
            return 200, {"_ctype": "text/plain; version=0.0.4"}, (
                await self._metrics_text()
            ), None
        if path == "/predict":
            if self.draining:
                self.metrics.inc("repro_drain_rejected_total")
                payload = json.dumps({"error": "router draining"}).encode()
                return 503, {"retry-after": "1", "connection": "close"}, (
                    payload
                ), None
            key = None
            if method == "POST":
                try:
                    key = routing_key_for(json.loads(body) if body else {})
                except ValueError:
                    key = None  # the shard answers 400
            return await self._forward(key, method, target, headers, body)
        # Reads against shard state (/distributions, /trace, /chaos...)
        # go to one live shard -- ?shard=N pins a specific one.
        if "shard=" in target:
            try:
                wanted = int(
                    dict(
                        pair.split("=", 1)
                        for pair in target.split("?", 1)[1].split("&")
                        if "=" in pair
                    ).get("shard", "")
                )
            except ValueError:
                wanted = None
            backend = self.backends.get(wanted)
            if backend is not None and backend.state != "down":
                raw = self._serialise(method, target, headers, body)
                try:
                    async with asyncio.timeout(self.backend_timeout):
                        status, resp_headers, payload = await self._exchange(
                            backend, raw
                        )
                    return status, resp_headers, payload, backend.shard_id
                except (OSError, ConnectionError, TimeoutError,
                        asyncio.IncompleteReadError):
                    self.mark_down(backend.shard_id)
                    if self.on_down is not None:
                        self.on_down(backend.shard_id)
            payload = json.dumps({"error": "shard unavailable"}).encode()
            return 503, {"retry-after": "1"}, payload, None
        return await self._forward(None, method, target, headers, body)

    # -- connection handling ---------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError,
                        ValueError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    status, resp_headers, payload, shard_id = await (
                        self._route(method, target, headers, body)
                    )
                except Exception as exc:  # pragma: no cover - last resort
                    self.metrics.inc("repro_router_errors_total")
                    status, resp_headers, shard_id = 502, {}, None
                    payload = json.dumps(
                        {"error": f"router error: {exc}"}
                    ).encode()
                ctype = resp_headers.pop(
                    "_ctype",
                    resp_headers.get("content-type", "application/json"),
                )
                extra = {
                    name: value
                    for name, value in resp_headers.items()
                    if name in ("retry-after", "x-repro-trace")
                }
                if shard_id is not None:
                    extra["X-Repro-Shard"] = str(shard_id)
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                    and not self.draining
                )
                writer.write(
                    render_http_response(
                        status, payload, ctype, extra, keep_alive
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.metrics.register_gauge(
            "repro_router_backends_up", lambda: len(self.routable())
        )
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for backend in self.backends.values():
            backend.close_pool()


class RouterThread:
    """Run a :class:`ShardRouter` on a background thread with its own
    event loop -- the supervisor's (and tests') handle on the router.

    Membership mutations from other threads go through
    :meth:`mark_down` / :meth:`mark_up` / :meth:`mark_draining`, which
    hop onto the router's loop so backend state and connection pools
    are only ever touched from one thread.
    """

    def __init__(self, router: ShardRouter):
        self.router = router
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def __enter__(self) -> "RouterThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.router.host, self.router.port

    def start(self) -> tuple[str, int]:
        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.router.start())
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.router.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("router failed to start within 30s")
        return self.address

    def _call(self, fn, *args) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(fn, *args)
        else:
            fn(*args)

    def mark_down(self, shard_id: int) -> None:
        self._call(self.router.mark_down, shard_id)

    def mark_up(self, shard_id: int) -> None:
        self._call(self.router.mark_up, shard_id)

    def mark_draining(self, shard_id: int) -> None:
        self._call(self.router.mark_draining, shard_id)

    def set_draining(self) -> None:
        self._call(setattr, self.router, "draining", True)

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._loop = None
