"""Consistent-hash shard routing over content-addressed request keys.

The sharded serving tier (:mod:`.router` / :mod:`.supervisor`) scales
the service past one event loop by running N full server processes.
For the funnel's throughput tiers to keep working *cluster-wide*, every
request key must always land on the same shard:

* **cache affinity** -- a shard's LRU only ever sees its own key range,
  so N shards hold N disjoint working sets instead of N copies of one;
* **singleflight** -- concurrent identical requests meet in one process
  and still collapse to a single evaluation;
* **micro-batching** -- repeat traffic for a key coalesces on its owner
  instead of spreading thin across shards.

:class:`HashRing` is the classic consistent-hash ring (Karger et al.)
with virtual nodes: each shard hashes to ``replicas`` points on a
64-bit ring and a key is owned by the first point clockwise from its
hash.  Removing a shard remaps *only* the keys it owned (they fall to
the next point clockwise -- the shard's *failover owner*); every other
key keeps its owner.  That property is what makes shard death cheap:
the router re-routes exactly the dead shard's hash range and nothing
else, and when the supervisor restarts the shard its range snaps back.

Both the router and the sharding-aware load generator build their rings
from the same shard ids with the same ``replicas``, so client-side
routing (direct-to-shard, the SO_REUSEPORT-style topology) and
router-side routing agree on every key's owner.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

__all__ = ["HashRing", "ring_hash"]

#: virtual nodes per shard; enough for even ownership at small N while
#: keeping ring construction/lookup trivial
DEFAULT_REPLICAS = 64


def ring_hash(data: str) -> int:
    """Position of *data* on the 64-bit ring (stable across processes).

    ``blake2b`` with an 8-byte digest: cryptographic diffusion (request
    keys are already sha256 hex, but shard labels are not) at a fraction
    of sha256's cost, and -- unlike ``hash()`` -- independent of
    ``PYTHONHASHSEED``, so every process maps keys identically.
    """
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping string keys to member nodes."""

    def __init__(self, nodes=(), replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        #: sorted ring positions and their owning node, kept in lockstep
        self._points: list[int] = []
        self._owners: list[object] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list:
        return sorted(self._nodes, key=str)

    def add(self, node) -> None:
        """Insert *node* (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = ring_hash(f"{node}#{replica}")
            at = bisect_right(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node) -> None:
        """Remove *node*; only its keys change owner (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def owner(self, key: str):
        """The node owning *key* (first ring point clockwise)."""
        owners = self.owners(key, count=1)
        if not owners:
            raise LookupError("hash ring is empty")
        return owners[0]

    def owners(self, key: str, count: int | None = None) -> list:
        """Distinct nodes in preference order for *key*.

        The first entry is the owner; the second is the *failover owner*
        (where the key's range falls if the owner is removed), and so on.
        With ``count=None`` every member is returned, so a router can
        walk the full preference list when shards keep failing.
        """
        if not self._points:
            return []
        if count is None:
            count = len(self._nodes)
        found: list = []
        start = bisect_right(self._points, ring_hash(key))
        n = len(self._points)
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node not in found:
                found.append(node)
                if len(found) >= count:
                    break
        return found
