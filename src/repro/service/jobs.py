"""Admission control: a bounded job queue with backpressure and deadlines.

A serving layer over a CPU-bound engine must bound its queue or latency
grows without limit under overload.  The service admits at most
``limit`` predictions in flight (queued in the micro-batcher or
evaluating); requests beyond that are *shed* immediately with HTTP 429
and a ``Retry-After`` hint, which keeps time-to-decision constant under
overload instead of letting every client time out.  Cache hits and
singleflight followers do not occupy slots -- only work that will
actually reach the engine is counted.

Deadlines are enforced at the handler: a request that cannot be answered
within its (per-request or server-default) deadline gets HTTP 504.  The
underlying evaluation is *not* cancelled -- it is shielded so its result
still lands in the cache, turning a timed-out request into a warm entry
for the next attempt.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from .metrics import ServiceMetrics

__all__ = ["BreakerOpen", "CircuitBreaker", "JobQueue", "JobSlot", "QueueFull"]


class QueueFull(RuntimeError):
    """The job queue is at capacity; shed with 429 + Retry-After."""

    def __init__(self, limit: int, retry_after: float):
        super().__init__(f"job queue full ({limit} in flight)")
        self.limit = limit
        self.retry_after = retry_after


class BreakerOpen(RuntimeError):
    """The circuit breaker is open; shed with 503 + Retry-After."""

    def __init__(self, retry_after: float):
        super().__init__("circuit breaker open (engine failing)")
        self.retry_after = retry_after


class JobSlot:
    """One admission slot, released exactly once.

    The single acquire/release point per request: every handler path --
    success, engine error, cancellation, even a double ``__exit__`` from
    nested cleanup -- releases the slot at most once, so no exception
    path can leak a slot until restart (which would eventually wedge
    admission at the 429 limit).
    """

    def __init__(self, queue: "JobQueue", trace=None, tenant: str | None = None):
        self._queue = queue
        self._trace = trace
        self._tenant = tenant
        self._held = False

    def __enter__(self) -> "JobSlot":
        self._queue.acquire(self._trace, tenant=self._tenant)
        self._held = True
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        if self._held:
            self._held = False
            self._queue.release()


class JobQueue:
    """Counting admission gate, used from the event-loop thread only."""

    def __init__(
        self,
        limit: int,
        metrics: ServiceMetrics,
        retry_after: float = 1.0,
        limiter: Callable[[str | None], None] | None = None,
    ):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self.retry_after = retry_after
        #: optional per-tenant gate, called with the tenant name before
        #: the global capacity check; raises to shed (e.g. the
        #: registry's ``TenantManager.admit`` token bucket)
        self.limiter = limiter
        self._inflight = 0
        self._peak = 0
        self._metrics = metrics

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def peak(self) -> int:
        return self._peak

    def acquire(self, trace=None, tenant: str | None = None) -> None:
        """Claim a slot or shed the request.

        The per-tenant *limiter* (when configured) runs first, so a
        throttled tenant cannot crowd other tenants out of the global
        queue -- its requests are shed before they count against
        capacity.  With *trace*, the admission decision is recorded as
        an ``admission`` annotation carrying the queue depth at the
        moment of the decision; either way the live depth is published
        as the ``repro_queue_depth`` gauge.
        """
        if self.limiter is not None:
            try:
                self.limiter(tenant)
            except Exception:
                self._metrics.inc("repro_jobs_shed_total")
                if trace is not None:
                    trace.annotate(
                        "admission",
                        queue_depth=self._inflight,
                        status="throttled",
                        tenant=tenant,
                    )
                raise
        if self._inflight >= self.limit:
            self._metrics.inc("repro_jobs_shed_total")
            self._metrics.set_gauge("repro_queue_depth", self._inflight)
            if trace is not None:
                trace.annotate(
                    "admission", queue_depth=self._inflight, status="shed"
                )
            raise QueueFull(self.limit, self.retry_after)
        self._inflight += 1
        self._peak = max(self._peak, self._inflight)
        self._metrics.inc("repro_jobs_admitted_total")
        self._metrics.set_gauge("repro_queue_depth", self._inflight)
        if trace is not None:
            trace.annotate(
                "admission", queue_depth=self._inflight, status="admitted"
            )

    def release(self) -> None:
        if self._inflight <= 0:
            raise RuntimeError("release without matching acquire")
        self._inflight -= 1
        self._metrics.set_gauge("repro_queue_depth", self._inflight)

    def admit(self, trace=None, tenant: str | None = None) -> JobSlot:
        """A fresh single-release slot guard (use ``with queue.admit():``)."""
        return JobSlot(self, trace, tenant)

    def __enter__(self) -> "JobQueue":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class CircuitBreaker:
    """Trip open after consecutive engine failures; recover via a probe.

    Closed (normal) -> *threshold* consecutive infrastructure failures
    open the breaker -> engine-bound requests are shed instantly with
    503 + Retry-After for *cooldown* seconds -> half-open: exactly one
    probe request is let through; its success closes the breaker, its
    failure re-opens a full cooldown.  Request-shaped failures (bad
    request, model deadlock) never count -- the breaker watches engine
    *health*, not input quality -- and a probe ending in one of them
    releases the probe slot (:meth:`release_probe`) so the next request
    probes instead of being shed forever.  Used from the event-loop
    thread only.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 5.0,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("breaker cooldown must be > 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self._metrics = metrics
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    @property
    def retry_after(self) -> float:
        """Seconds until the next probe is allowed (0 when closed)."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether one more engine-bound request may proceed now."""
        if self._opened_at is None:
            return True
        if self._clock() - self._opened_at < self.cooldown or self._probing:
            if self._metrics is not None:
                self._metrics.inc("repro_breaker_rejected_total")
            return False
        self._probing = True  # half-open: a single probe goes through
        return True

    def release_probe(self) -> None:
        """Give back a half-open probe slot without recording an outcome.

        A probe request can end in a way that says nothing about engine
        health (shed by admission, model deadlock, bad request,
        cancellation).  Those paths must still free the probe slot --
        otherwise ``allow()`` keeps returning ``False`` forever and the
        breaker wedges open until restart.  No-op when not probing.
        """
        self._probing = False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        probing, self._probing = self._probing, False
        if self._opened_at is not None:
            if probing:  # the half-open probe failed: re-open in full
                self._opened_at = self._clock()
                self._trip()
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()
            self._trip()

    def _trip(self) -> None:
        if self._metrics is not None:
            self._metrics.inc("repro_breaker_open_total")
