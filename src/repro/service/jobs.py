"""Admission control: a bounded job queue with backpressure and deadlines.

A serving layer over a CPU-bound engine must bound its queue or latency
grows without limit under overload.  The service admits at most
``limit`` predictions in flight (queued in the micro-batcher or
evaluating); requests beyond that are *shed* immediately with HTTP 429
and a ``Retry-After`` hint, which keeps time-to-decision constant under
overload instead of letting every client time out.  Cache hits and
singleflight followers do not occupy slots -- only work that will
actually reach the engine is counted.

Deadlines are enforced at the handler: a request that cannot be answered
within its (per-request or server-default) deadline gets HTTP 504.  The
underlying evaluation is *not* cancelled -- it is shielded so its result
still lands in the cache, turning a timed-out request into a warm entry
for the next attempt.
"""

from __future__ import annotations

from .metrics import ServiceMetrics

__all__ = ["JobQueue", "QueueFull"]


class QueueFull(RuntimeError):
    """The job queue is at capacity; shed with 429 + Retry-After."""

    def __init__(self, limit: int, retry_after: float):
        super().__init__(f"job queue full ({limit} in flight)")
        self.limit = limit
        self.retry_after = retry_after


class JobQueue:
    """Counting admission gate, used from the event-loop thread only."""

    def __init__(
        self,
        limit: int,
        metrics: ServiceMetrics,
        retry_after: float = 1.0,
    ):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self.retry_after = retry_after
        self._inflight = 0
        self._peak = 0
        self._metrics = metrics

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def peak(self) -> int:
        return self._peak

    def acquire(self) -> None:
        """Claim a slot or shed the request."""
        if self._inflight >= self.limit:
            self._metrics.inc("repro_jobs_shed_total")
            raise QueueFull(self.limit, self.retry_after)
        self._inflight += 1
        self._peak = max(self._peak, self._inflight)
        self._metrics.inc("repro_jobs_admitted_total")

    def release(self) -> None:
        if self._inflight <= 0:
            raise RuntimeError("release without matching acquire")
        self._inflight -= 1

    def __enter__(self) -> "JobQueue":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
