"""Blocking service client and a closed-loop load generator.

:class:`ServiceClient` is a thin stdlib (``http.client``) wrapper around
the service's JSON endpoints -- what ``repro loadgen``, the end-to-end
tests and the service benchmark drive.  It is *resilient by
configuration*: a :class:`RetryPolicy` adds capped, jittered exponential
backoff for idempotent requests -- every ``/predict`` is idempotent by
the reproducibility contract (content-addressed, deterministic) -- that
honours the server's ``Retry-After`` hint on 429/503 and retries 504s
and transport resets.  Retries are counted in a
:class:`~.metrics.ServiceMetrics` instance
(``repro_client_retries_total{reason=...}``) so a chaos run can report
exactly how much client-side masking happened.

:class:`LoadGenerator` implements the classic closed-loop model: *C*
client threads, each with its own persistent connection, firing the next
request the moment the previous response arrives.  Offered load thus
adapts to service capacity (no coordinated-omission bookkeeping needed)
and throughput at concurrency *C* directly measures the serving stack's
batching/dedup/cache gains.  Latencies are summarised through
:class:`repro.mpibench.histogram.Histogram` -- the same machinery used
for communication-time distributions.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Callable

from ..mpibench.histogram import Histogram
from .metrics import ServiceMetrics
from .records import routing_key_for
from .sharding import DEFAULT_REPLICAS, HashRing

__all__ = [
    "LoadGenerator",
    "LoadResult",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
]


@dataclass
class RetryPolicy:
    """Capped jittered exponential backoff for idempotent requests.

    The delay before attempt *k* (0-based) is ``base * 2**k``, capped at
    ``cap``, then scaled down by up to ``jitter`` (a fraction in [0, 1])
    drawn from a seeded generator -- deterministic for tests, decorrelated
    between clients in production (seed ``None``).  A server-supplied
    ``Retry-After`` overrides the computed delay (still capped) but keeps
    the jitter as an *additive* spread on top: every client shed by the
    same overloaded server gets the same hint, and sleeping it exactly
    would wake the whole herd at once against a just-recovered breaker.
    """

    retries: int = 3  #: retry attempts after the first try
    base: float = 0.05  #: first backoff step, seconds
    cap: float = 2.0  #: upper bound on any single sleep, seconds
    jitter: float = 0.5  #: fraction of the delay randomised away
    statuses: tuple[int, ...] = (429, 503, 504)  #: retryable HTTP codes
    seed: int | None = None  #: jitter stream seed (None: OS entropy)

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int, retry_after: float | None = None) -> float:
        """Seconds to sleep before retry *attempt* (0-based)."""
        if retry_after is not None:
            hinted = max(retry_after, 0.0)
            # Additive spread so clients sleeping on the same hint wake
            # desynchronised; scaled by the larger of the hint and the
            # base step so a tiny (or zero) hint still gets a spread.
            hinted += self.jitter * self._rng.random() * max(hinted, self.base)
            return min(hinted, self.cap)
        delay = min(self.cap, self.base * (2 ** attempt))
        return delay * (1 - self.jitter * self._rng.random())


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, doc: dict | str):
        detail = doc.get("error") if isinstance(doc, dict) else str(doc)
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.doc = doc


class ServiceClient:
    """Blocking JSON client with one persistent keep-alive connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        metrics: ServiceMetrics | None = None,
        trace: bool = False,
        tenant: str | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: sent as ``X-Repro-Tenant`` on every request (None: the
        #: server's shared "public" namespace)
        self.tenant = tenant
        #: no retries unless asked: tests of the raw backpressure paths
        #: (and raw load measurement) must see every 429/504 verbatim
        self.retry = retry if retry is not None else RetryPolicy(retries=0)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: send a client-minted ``X-Repro-Trace`` ID with every
        #: ``/predict`` so the server's trace shares the client's handle
        self.trace_requests = trace
        #: trace ID of the most recent ``/predict`` (client-minted, or
        #: the server-assigned ID echoed back in ``X-Repro-Trace``)
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None
        self._sleep = _time.sleep  # injectable for tests

    # -- plumbing --------------------------------------------------------------
    def _attempt(self, method: str, path: str, payload, headers):
        """One HTTP round trip (with the legacy single reconnect for a
        stale keep-alive connection)."""
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection: reconnect once.
            self.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        ctype = response.getheader("Content-Type", "")
        if ctype.startswith("application/json"):
            doc = json.loads(raw) if raw else {}
        else:
            doc = raw.decode()
        return response.status, dict(response.getheaders()), doc

    @staticmethod
    def _retry_after(headers: dict) -> float | None:
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    return float(value)
                except (TypeError, ValueError):
                    return None
        return None

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        idempotent: bool = True,
    ):
        """One logical request, retried per the client's policy.

        *idempotent* requests (all of ours: ``/predict`` is
        content-addressed and deterministic, the GETs are reads) are
        retried on transport failures and on the policy's retryable
        statuses, sleeping a capped jittered backoff -- or exactly the
        server's ``Retry-After`` -- between attempts.  The final attempt's
        outcome (or transport error) is returned/raised verbatim.
        """
        payload = None if body is None else json.dumps(body)
        headers = {} if payload is None else {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        if self.trace_requests and path == "/predict":
            # Client-minted trace ID (OS entropy, like the server's own):
            # one ID covers the whole logical request across retries, so
            # every server-side attempt traces under the same handle.
            self.last_trace_id = os.urandom(8).hex()
            headers["X-Repro-Trace"] = self.last_trace_id
        policy = self.retry
        attempt = 0
        while True:
            if attempt > 0:
                # Tell the server which retry ordinal this attempt is
                # (logged by --log-json; never interpreted).
                headers["X-Repro-Attempt"] = str(attempt)
            try:
                status, hdrs, doc = self._attempt(method, path, payload, headers)
            except (http.client.HTTPException, OSError):
                if not idempotent or attempt >= policy.retries:
                    raise
                self.close()
                self.metrics.inc(
                    "repro_client_retries_total", reason="transport"
                )
                self._sleep(policy.backoff(attempt))
                attempt += 1
                continue
            if (
                idempotent
                and status in policy.statuses
                and attempt < policy.retries
            ):
                self.metrics.inc(
                    "repro_client_retries_total", reason=str(status)
                )
                self._sleep(
                    policy.backoff(attempt, retry_after=self._retry_after(hdrs))
                )
                attempt += 1
                continue
            if path == "/predict":
                for name, value in hdrs.items():
                    if name.lower() == "x-repro-trace":
                        self.last_trace_id = value
                        break
            return status, hdrs, doc

    def _checked(self, method: str, path: str, body: dict | None = None):
        status, _headers, doc = self._request(method, path, body)
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- endpoints --------------------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._checked("GET", "/metrics")

    def predict(self, **request) -> dict:
        """``POST /predict``; raises :class:`ServiceError` on non-200."""
        return self._checked("POST", "/predict", request)

    def predict_raw(self, request: dict) -> tuple[int, dict, dict]:
        """``POST /predict`` returning (status, headers, doc) -- for
        exercising the backpressure/deadline paths without exceptions.
        Never retried: callers of the raw form want every 429/503/504
        verbatim (the load generator counts them as shed, not masked)."""
        return self._request("POST", "/predict", request, idempotent=False)

    def chaos(self, payload: dict | None = None) -> dict:
        """``/chaos``: snapshot (no payload) or arm faults (payload).
        Only routed when the server runs with ``--chaos``."""
        if payload is None:
            return self._checked("GET", "/chaos")
        return self._checked("POST", "/chaos", payload)

    def distributions(self, **query) -> dict:
        qs = "&".join(f"{k}={v}" for k, v in query.items())
        return self._checked(
            "GET", "/distributions" + (f"?{qs}" if qs else "")
        )

    # -- registry endpoints ------------------------------------------------------
    def registry_list(self) -> dict:
        """The fleet listing (``GET /distributions`` -> ``"registry"``)."""
        return self.distributions().get("registry", {})

    def registry_get(self, ref: str, **query) -> dict:
        """``GET /distributions/{ref}``: meta + aliases (plus a
        distribution description when ``size=`` is given)."""
        qs = "&".join(f"{k}={v}" for k, v in query.items())
        return self._checked(
            "GET", f"/distributions/{ref}" + (f"?{qs}" if qs else "")
        )

    def registry_add(
        self,
        results: dict | None = None,
        topology: dict | None = None,
        alias: str | None = None,
    ) -> dict:
        """``POST /distributions``: upload a measured results document,
        or a ``simnet`` topology spec fitted server-side."""
        body: dict = {}
        if results is not None:
            body["results"] = results
        if topology is not None:
            body["topology"] = topology
        if alias is not None:
            body["alias"] = alias
        return self._checked("POST", "/distributions", body)

    def registry_promote(self, ref: str, alias: str) -> dict:
        """``PUT /distributions/{ref}/alias``: hot-swap *alias* to *ref*."""
        status, _headers, doc = self._request(
            "PUT", f"/distributions/{ref}/alias", {"alias": alias}
        )
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def registry_delete(self, ref: str) -> dict:
        """``DELETE /distributions/{ref}``."""
        status, _headers, doc = self._request(
            "DELETE", f"/distributions/{ref}", idempotent=False
        )
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    # -- workload endpoints ------------------------------------------------------
    def models(self, name: str | None = None) -> dict:
        """``GET /models`` (the catalogue) or ``GET /models/{name}``."""
        return self._checked(
            "GET", "/models" if name is None else f"/models/{name}"
        )

    def program_add(self, trace: str, name: str | None = None) -> dict:
        """``POST /programs``: import a recorded MPI trace (JSON lines
        or the OTF2-like text subset); returns its meta, including the
        fingerprint to pass as ``model_params.program``."""
        body: dict = {"trace": trace}
        if name is not None:
            body["name"] = name
        return self._checked("POST", "/programs", body)

    def programs_list(self) -> dict:
        return self._checked("GET", "/programs")

    def program_get(self, ref: str) -> dict:
        return self._checked("GET", f"/programs/{ref}")

    def program_delete(self, ref: str) -> dict:
        status, _headers, doc = self._request(
            "DELETE", f"/programs/{ref}", idempotent=False
        )
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def trace(self, trace_id: str | None = None, limit: int = 20):
        """``GET /trace``: one trace document by ID, or (with no ID) the
        ``{"traces": [...]}`` listing of recent traces, newest first.
        Raises :class:`ServiceError` when tracing is disabled server-side
        or the ID is unknown."""
        if trace_id is not None:
            return self._checked("GET", f"/trace?id={trace_id}")
        return self._checked("GET", f"/trace?limit={limit}")


@dataclass
class LoadResult:
    """Outcome of one closed-loop load run."""

    concurrency: int
    duration: float  #: measured wall seconds
    latencies: list[float] = field(repr=False, default_factory=list)
    status_counts: dict[int, int] = field(default_factory=dict)
    errors: int = 0  #: transport-level failures (a malformed response is one)
    retries: int = 0  #: client-side retries (only with a retry policy)

    @property
    def requests(self) -> int:
        return sum(self.status_counts.values())

    @property
    def ok(self) -> int:
        return self.status_counts.get(200, 0)

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        if self.duration <= 0:
            return 0.0
        return self.requests / self.duration

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        hist = Histogram.from_samples(
            self.latencies, bins=min(64, len(self.latencies))
        )
        return hist.quantile(q)

    def summary(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "duration_s": round(self.duration, 4),
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "retries": self.retries,
            "throughput_rps": round(self.throughput, 2),
            "p50_ms": round(self.latency_quantile(0.5) * 1e3, 3),
            "p90_ms": round(self.latency_quantile(0.9) * 1e3, 3),
            "p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
        }


class LoadGenerator:
    """Closed-loop load: *concurrency* threads, each firing back-to-back.

    With *endpoints* (a list of ``(host, port)`` shard addresses) each
    request is routed client-side on its
    :func:`~.records.routing_key_for` over the same consistent-hash
    ring the front router builds (endpoint index = shard id, same
    ``replicas``), so direct-to-shard load preserves cluster-wide cache
    affinity exactly as router-side routing would -- the topology for
    SO_REUSEPORT-free benchmarking without the router hop.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        request_factory: Callable[[int], dict] | None = None,
        concurrency: int = 8,
        retry: RetryPolicy | None = None,
        *,
        endpoints: list[tuple[str, int]] | None = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if request_factory is None:
            raise ValueError("request_factory is required")
        if endpoints is None:
            if host is None or port is None:
                raise ValueError("need host+port or endpoints")
            endpoints = [(host, int(port))]
        elif not endpoints:
            raise ValueError("endpoints must be non-empty")
        self.endpoints = [(h, int(p)) for h, p in endpoints]
        self.host, self.port = self.endpoints[0]
        #: endpoint-index ring, mirroring the router's shard-id ring;
        #: ``None`` (single endpoint) keeps routing off the hot path
        self._ring = (
            HashRing(range(len(self.endpoints)), replicas=replicas)
            if len(self.endpoints) > 1
            else None
        )
        self.request_factory = request_factory
        self.concurrency = concurrency
        #: optional client-side retry policy; ``None`` measures the raw
        #: service (every 429/504 lands in ``status_counts`` verbatim)
        self.retry = retry

    def endpoint_for(self, request: dict) -> int:
        """Index of the endpoint owning *request* (0 when unrouted)."""
        if self._ring is None:
            return 0
        key = routing_key_for(request)
        if key is None:
            return 0
        return self._ring.owner(key)

    def run(
        self,
        duration: float | None = None,
        total_requests: int | None = None,
    ) -> LoadResult:
        """Drive the service for *duration* seconds or *total_requests*
        completed requests (whichever is given; both means either stops
        the run)."""
        if duration is None and total_requests is None:
            raise ValueError("need duration and/or total_requests")
        result = LoadResult(concurrency=self.concurrency, duration=0.0)
        lock = threading.Lock()
        counter = {"sent": 0}
        stop_at = None
        start_barrier = threading.Barrier(self.concurrency + 1)

        def worker(index: int):
            retry = None
            if self.retry is not None:
                # Per-thread policy clone: decorrelated jitter streams.
                retry = RetryPolicy(
                    retries=self.retry.retries,
                    base=self.retry.base,
                    cap=self.retry.cap,
                    jitter=self.retry.jitter,
                    statuses=self.retry.statuses,
                    seed=(
                        None
                        if self.retry.seed is None
                        else self.retry.seed + index
                    ),
                )
            # One persistent connection per endpoint per thread, made
            # lazily: a thread whose keys all hash to one shard opens
            # exactly one connection, as in the unsharded case.
            clients: dict[int, ServiceClient] = {}

            def client_for(idx: int) -> ServiceClient:
                client = clients.get(idx)
                if client is None:
                    host, port = self.endpoints[idx]
                    client = clients[idx] = ServiceClient(
                        host, port, retry=retry
                    )
                return client

            start_barrier.wait()
            while True:
                with lock:
                    if stop_at is not None and _time.perf_counter() >= stop_at:
                        break
                    if (
                        total_requests is not None
                        and counter["sent"] >= total_requests
                    ):
                        break
                    counter["sent"] += 1
                    sequence = counter["sent"] - 1
                request = self.request_factory(sequence)
                client = client_for(self.endpoint_for(request))
                t0 = _time.perf_counter()
                try:
                    if retry is not None:
                        status, _, _ = client._request(
                            "POST", "/predict", request
                        )
                    else:
                        status, _, _ = client.predict_raw(request)
                except (OSError, http.client.HTTPException, ValueError):
                    with lock:
                        result.errors += 1
                    continue
                latency = _time.perf_counter() - t0
                with lock:
                    result.latencies.append(latency)
                    result.status_counts[status] = (
                        result.status_counts.get(status, 0) + 1
                    )
            retried = sum(
                client.metrics.total("repro_client_retries_total")
                for client in clients.values()
            )
            with lock:
                result.retries += int(retried)
            for client in clients.values():
                client.close()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"loadgen-{i}", daemon=True
            )
            for i in range(self.concurrency)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        t0 = _time.perf_counter()
        if duration is not None:
            stop_at = t0 + duration
        for thread in threads:
            thread.join()
        result.duration = _time.perf_counter() - t0
        return result
