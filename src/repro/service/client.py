"""Blocking service client and a closed-loop load generator.

:class:`ServiceClient` is a thin stdlib (``http.client``) wrapper around
the service's JSON endpoints -- what ``repro loadgen``, the end-to-end
tests and the service benchmark drive.

:class:`LoadGenerator` implements the classic closed-loop model: *C*
client threads, each with its own persistent connection, firing the next
request the moment the previous response arrives.  Offered load thus
adapts to service capacity (no coordinated-omission bookkeeping needed)
and throughput at concurrency *C* directly measures the serving stack's
batching/dedup/cache gains.  Latencies are summarised through
:class:`repro.mpibench.histogram.Histogram` -- the same machinery used
for communication-time distributions.
"""

from __future__ import annotations

import http.client
import json
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Callable

from ..mpibench.histogram import Histogram

__all__ = ["LoadGenerator", "LoadResult", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, doc: dict | str):
        detail = doc.get("error") if isinstance(doc, dict) else str(doc)
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.doc = doc


class ServiceClient:
    """Blocking JSON client with one persistent keep-alive connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        payload = None if body is None else json.dumps(body)
        headers = {} if payload is None else {"Content-Type": "application/json"}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection: reconnect once.
            self.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        ctype = response.getheader("Content-Type", "")
        if ctype.startswith("application/json"):
            doc = json.loads(raw) if raw else {}
        else:
            doc = raw.decode()
        return response.status, dict(response.getheaders()), doc

    def _checked(self, method: str, path: str, body: dict | None = None):
        status, _headers, doc = self._request(method, path, body)
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- endpoints --------------------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._checked("GET", "/metrics")

    def predict(self, **request) -> dict:
        """``POST /predict``; raises :class:`ServiceError` on non-200."""
        return self._checked("POST", "/predict", request)

    def predict_raw(self, request: dict) -> tuple[int, dict, dict]:
        """``POST /predict`` returning (status, headers, doc) -- for
        exercising the backpressure/deadline paths without exceptions."""
        return self._request("POST", "/predict", request)

    def distributions(self, **query) -> dict:
        qs = "&".join(f"{k}={v}" for k, v in query.items())
        return self._checked(
            "GET", "/distributions" + (f"?{qs}" if qs else "")
        )


@dataclass
class LoadResult:
    """Outcome of one closed-loop load run."""

    concurrency: int
    duration: float  #: measured wall seconds
    latencies: list[float] = field(repr=False, default_factory=list)
    status_counts: dict[int, int] = field(default_factory=dict)
    errors: int = 0  #: transport-level failures

    @property
    def requests(self) -> int:
        return sum(self.status_counts.values())

    @property
    def ok(self) -> int:
        return self.status_counts.get(200, 0)

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        if self.duration <= 0:
            return 0.0
        return self.requests / self.duration

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        hist = Histogram.from_samples(
            self.latencies, bins=min(64, len(self.latencies))
        )
        return hist.quantile(q)

    def summary(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "duration_s": round(self.duration, 4),
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "throughput_rps": round(self.throughput, 2),
            "p50_ms": round(self.latency_quantile(0.5) * 1e3, 3),
            "p90_ms": round(self.latency_quantile(0.9) * 1e3, 3),
            "p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
        }


class LoadGenerator:
    """Closed-loop load: *concurrency* threads, each firing back-to-back."""

    def __init__(
        self,
        host: str,
        port: int,
        request_factory: Callable[[int], dict],
        concurrency: int = 8,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.host = host
        self.port = port
        self.request_factory = request_factory
        self.concurrency = concurrency

    def run(
        self,
        duration: float | None = None,
        total_requests: int | None = None,
    ) -> LoadResult:
        """Drive the service for *duration* seconds or *total_requests*
        completed requests (whichever is given; both means either stops
        the run)."""
        if duration is None and total_requests is None:
            raise ValueError("need duration and/or total_requests")
        result = LoadResult(concurrency=self.concurrency, duration=0.0)
        lock = threading.Lock()
        counter = {"sent": 0}
        stop_at = None
        start_barrier = threading.Barrier(self.concurrency + 1)

        def worker():
            client = ServiceClient(self.host, self.port)
            start_barrier.wait()
            while True:
                with lock:
                    if stop_at is not None and _time.perf_counter() >= stop_at:
                        break
                    if (
                        total_requests is not None
                        and counter["sent"] >= total_requests
                    ):
                        break
                    counter["sent"] += 1
                    sequence = counter["sent"] - 1
                request = self.request_factory(sequence)
                t0 = _time.perf_counter()
                try:
                    status, _, _ = client.predict_raw(request)
                except (OSError, http.client.HTTPException, ValueError):
                    with lock:
                        result.errors += 1
                    continue
                latency = _time.perf_counter() - t0
                with lock:
                    result.latencies.append(latency)
                    result.status_counts[status] = (
                        result.status_counts.get(status, 0) + 1
                    )
            client.close()

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(self.concurrency)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        t0 = _time.perf_counter()
        if duration is not None:
            stop_at = t0 + duration
        for thread in threads:
            thread.join()
        result.duration = _time.perf_counter() - t0
        return result
