"""Structured request logging: one JSON object per line.

``repro serve --log-json`` emits exactly one line per served
``/predict`` with the fields an operator greps for when correlating a
slow or failed request across systems: the trace ID (shared with the
client via ``X-Repro-Trace`` and with ``GET /trace``), where the answer
came from (cache tier / singleflight / engine), which micro-batch
evaluated it, and the client's retry attempt counter.

Plain ``json.dumps`` onto a stream under a lock -- no ``logging``
handlers, no formatting layers; the line *is* the record.
"""

from __future__ import annotations

import json
import sys
import threading
import time as _time

__all__ = ["JsonLogger"]


class JsonLogger:
    """Write one JSON line per event to *stream* (default stdout)."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stdout
        self._lock = threading.Lock()

    def log(self, event: str, **fields) -> None:
        """Emit ``{"ts": ..., "event": event, **fields}`` as one line.

        ``None``-valued fields are dropped (absent beats ``null`` for
        grep-ability); values must be JSON-serialisable.
        """
        doc = {"ts": round(_time.time(), 6), "event": event}
        doc.update((k, v) for k, v in fields.items() if v is not None)
        line = json.dumps(doc, separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")
            try:
                self.stream.flush()
            except (OSError, ValueError):
                pass  # closed/broken stream must never fail a request
