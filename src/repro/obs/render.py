"""ASCII waterfall rendering of exported traces (``repro trace``).

Takes the JSON documents ``GET /trace`` serves (see
:meth:`~repro.obs.tracer.Trace.to_dict`) and draws one bar per span,
offset and scaled against the trace's total duration::

    trace 1f2e3d4c5b6a7988  (12.41 ms)
      request      |##############################################| 12.41ms
      cache        |#                                             |  0.02ms  tier=miss
      batch        | ############################################ | 11.90ms  batch=4
      engine       |  ########################################### | 11.70ms
      engine.sweep |  #############                               |  3.40ms

Pure string munging over plain dicts -- usable against a live server
(via the client) or a saved JSON export alike.
"""

from __future__ import annotations

__all__ = ["render_waterfall"]

#: span attributes surfaced inline after the bar, in display order
_SHOWN_ATTRS = ("tier", "role", "batch_id", "batch_size", "queue_depth",
                "synthetic", "status")


def _bar(start_ms: float, dur_ms: float, total_ms: float, width: int) -> str:
    if total_ms <= 0:
        return " " * width
    lead = int(round(start_ms / total_ms * width))
    lead = min(lead, width - 1)
    fill = int(round(dur_ms / total_ms * width))
    fill = max(1, fill)  # every span is visible, however brief
    fill = min(fill, width - lead)
    return " " * lead + "#" * fill + " " * (width - lead - fill)


def render_waterfall(trace_doc: dict, width: int = 48) -> str:
    """Render one exported trace document as an ASCII waterfall."""
    spans = trace_doc.get("spans", [])
    header = f"trace {trace_doc.get('trace_id', '?')}"
    if not spans:
        return header + "  (no spans)"
    total = max(s["start_ms"] + s["duration_ms"] for s in spans)
    header += f"  ({total:.2f} ms, {len(spans)} spans)"
    name_w = max(len(s["name"]) for s in spans)
    lines = [header]
    for s in spans:
        attrs = s.get("attrs", {})
        shown = "  ".join(
            f"{k}={attrs[k]}" for k in _SHOWN_ATTRS if k in attrs
        )
        lines.append(
            f"  {s['name']:<{name_w}} "
            f"|{_bar(s['start_ms'], s['duration_ms'], total, width)}| "
            f"{s['duration_ms']:8.2f}ms"
            + (f"  {shown}" if shown else "")
        )
    return "\n".join(lines)
