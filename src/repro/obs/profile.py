"""Per-phase host-time accumulators for the prediction engine.

PEVPM attributes a modelled program's *virtual* time to loss categories
(send overhead, contention, rendezvous stalls).  This module applies
the same idea to the engine's own *host* time: one evaluation is
bucketed into

* ``sweep``  -- advancing model programs to their next decision point,
* ``match``  -- completing blocked receives (candidate selection,
  divergence handling),
* ``sample`` -- drawing from the measured timing distributions (the
  Monte Carlo inner kernel; carved out of sweep/match so that "time
  goes to the histogram lookups" is distinguishable from "time goes to
  the interpreter"),

with ``serialize`` (building the response document) added by the
serving layer.  Buckets are **disjoint**: callers timing an enclosing
region subtract the sample time recorded inside it (see
:meth:`PhaseProfiler.exclusive`).

A profiler is plain mutable state with no locks -- each evaluation
(worker process or evaluator thread) owns its own instance, and the
per-run shares ride back on :class:`~repro.pevpm.parallel.RunOutcome`
as a ``dict[str, float]``, which pickles across the process pool.
"""

from __future__ import annotations

__all__ = ["ENGINE_PHASES", "PhaseProfiler", "merge_phases"]

#: engine-side buckets (the serving layer adds "serialize")
ENGINE_PHASES = ("sweep", "match", "sample")


class PhaseProfiler:
    """Disjoint per-phase second counters for one evaluation."""

    __slots__ = ("phases",)

    def __init__(self):
        self.phases: dict[str, float] = {p: 0.0 for p in ENGINE_PHASES}

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def mark(self) -> float:
        """Current ``sample`` total -- pair with :meth:`exclusive`."""
        return self.phases.get("sample", 0.0)

    def exclusive(self, phase: str, elapsed: float, sample_mark: float) -> None:
        """Attribute *elapsed* seconds to *phase*, minus whatever landed
        in ``sample`` since *sample_mark* (keeps the buckets disjoint
        when sampling happens inside a swept/matched region)."""
        inner = self.phases.get("sample", 0.0) - sample_mark
        self.add(phase, max(0.0, elapsed - inner))

    def scaled(self, factor: float) -> dict[str, float]:
        """The phase dict scaled by *factor* (a batched chunk divides
        its shared cost equally over its runs, like ``wall``)."""
        return {k: v * factor for k, v in self.phases.items() if v > 0.0}

    def snapshot(self) -> dict[str, float]:
        return {k: v for k, v in self.phases.items() if v > 0.0}


def merge_phases(outcomes) -> dict[str, float]:
    """Sum the per-run phase dicts of an outcome list (request-level
    attribution for spans/metrics); outcomes without phases contribute
    nothing."""
    total: dict[str, float] = {}
    for outcome in outcomes:
        phases = getattr(outcome, "phases", None)
        if not phases:
            continue
        for k, v in phases.items():
            total[k] = total.get(k, 0.0) + v
    return total
