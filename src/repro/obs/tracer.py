"""Explicit-clock spans and the bounded trace ring buffer.

A :class:`Trace` is one request's worth of :class:`Span` records; a
:class:`Tracer` hands out traces and retires finished ones into a
bounded ring buffer (old traces fall off the back -- the buffer can
never grow without limit under load).  Design constraints, in order:

* **Zero cost when disabled.**  A disabled tracer's
  :meth:`Tracer.start_trace` returns ``None`` and every call site in
  the request funnel is guarded with ``if trace is not None`` (or the
  :func:`span_or_null` helper), so the disabled path adds only a
  ``None`` check per stage.
* **No RNG contact.**  Span IDs come from ``os.urandom`` and span
  times from an injected clock (``time.perf_counter`` by default);
  nothing here reads or advances the engine's seeded streams, which is
  what keeps a traced prediction bit-identical to an untraced one.
* **Explicit clocks.**  The clock is a constructor argument, so tests
  drive traces with a fake clock and assert exact durations.

Spans may be recorded from the event-loop thread and the evaluator
thread of one request concurrently; the per-trace lock makes appends
safe (they are two dict writes, so contention is negligible).
"""

from __future__ import annotations

import os
import threading
import time as _time
from contextlib import contextmanager, nullcontext
from typing import Callable

__all__ = ["Span", "Trace", "Tracer", "span_or_null"]

#: hard cap on an accepted ``X-Repro-Trace`` header value: IDs are
#: opaque tokens, but unbounded hostile headers must not be stored
MAX_TRACE_ID = 64


def _new_id() -> str:
    """A fresh 64-bit hex ID from OS entropy (never the seeded RNGs)."""
    return os.urandom(8).hex()


def clean_trace_id(value) -> str | None:
    """Validate a client-supplied trace ID (header value) or reject it.

    Accepts short printable tokens without whitespace; anything else
    returns ``None`` and the server falls back to a generated ID.
    """
    if not isinstance(value, str):
        return None
    value = value.strip()
    if not value or len(value) > MAX_TRACE_ID:
        return None
    if any(c.isspace() or not c.isprintable() for c in value):
        return None
    return value


class Span:
    """One named interval within a trace.

    Times are raw clock readings (the tracer's clock); exported
    documents convert them to offsets from the trace start so a
    waterfall needs no clock epoch.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        end: float | None = None,
        parent_id: str | None = None,
        attrs: dict | None = None,
    ):
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else max(0.0, self.end - self.start)

    def to_dict(self, epoch: float) -> dict:
        doc = {
            "span_id": self.span_id,
            "name": self.name,
            "start_ms": (self.start - epoch) * 1e3,
            "duration_ms": self.duration * 1e3,
        }
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


class Trace:
    """One request's spans, appendable from multiple threads."""

    __slots__ = ("trace_id", "spans", "started_wall", "_clock", "_epoch", "_lock")

    def __init__(self, trace_id: str, clock: Callable[[], float]):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        #: wall-clock start (for humans correlating traces with logs)
        self.started_wall = _time.time()
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        """Record a span covering the ``with`` body; yields the span so
        the body can add attributes (``span.attrs["tier"] = ...``)."""
        s = Span(
            name,
            self._clock(),
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
        )
        try:
            yield s
        finally:
            s.end = self._clock()
            with self._lock:
                self.spans.append(s)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """Record a span post hoc from explicit clock readings -- how the
        engine's per-phase buckets (measured on the evaluator side) are
        attached once the result comes back."""
        s = Span(
            name,
            start,
            end,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
        )
        with self._lock:
            self.spans.append(s)
        return s

    def annotate(self, name: str, **attrs) -> Span:
        """A zero-duration marker span (an event)."""
        now = self._clock()
        return self.add_span(name, now, now, **attrs)

    def now(self) -> float:
        """The tracer's clock, for callers recording explicit spans."""
        return self._clock()

    def find(self, name: str) -> Span | None:
        """The most recent finished span named *name* (or ``None``)."""
        with self._lock:
            for s in reversed(self.spans):
                if s.name == name:
                    return s
        return None

    def stage_durations(self) -> dict[str, float]:
        """Summed seconds per span name -- the per-stage metrics feed."""
        out: dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                out[s.name] = out.get(s.name, 0.0) + s.duration
        return out

    def to_dict(self) -> dict:
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start, s.name))
            return {
                "trace_id": self.trace_id,
                "started_unix": self.started_wall,
                "spans": [s.to_dict(self._epoch) for s in spans],
            }


def span_or_null(trace: Trace | None, name: str, **attrs):
    """``trace.span(...)`` or a no-op context manager when tracing is
    off -- for call sites where an explicit ``if`` guard would obscure
    the logic.  The null path allocates one shared ``nullcontext``."""
    if trace is None:
        return nullcontext(None)
    return trace.span(name, **attrs)


class Tracer:
    """Hands out traces; retires finished ones into a ring buffer."""

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = _time.perf_counter,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self._lock = threading.Lock()
        #: insertion-ordered trace_id -> finished Trace; bounded below
        self._ring: dict[str, Trace] = {}

    def start_trace(self, trace_id: str | None = None) -> Trace | None:
        """A fresh trace (``None`` when the tracer is disabled).

        *trace_id*, when given (header propagation), is used verbatim;
        otherwise an ID is generated from OS entropy.
        """
        if not self.enabled:
            return None
        return Trace(trace_id or _new_id(), self.clock)

    def finish(self, trace: Trace | None) -> None:
        """Retire *trace* into the ring buffer (oldest falls off)."""
        if trace is None:
            return
        with self._lock:
            # Re-used IDs (a client replaying one header value) keep the
            # latest trace; insertion order stays the eviction order.
            self._ring.pop(trace.trace_id, None)
            self._ring[trace.trace_id] = trace
            while len(self._ring) > self.capacity:
                self._ring.pop(next(iter(self._ring)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            trace = self._ring.get(trace_id)
        return None if trace is None else trace.to_dict()

    def traces(self, limit: int | None = None) -> list[dict]:
        """Finished traces, newest first, as JSON-able documents."""
        with self._lock:
            items = list(self._ring.values())
        items.reverse()
        if limit is not None:
            items = items[: max(0, limit)]
        return [t.to_dict() for t in items]
