"""Observability: end-to-end tracing, per-phase profiling, JSON logging.

The paper's contribution beyond raw numbers is *attribution*: PEVPM
tells you where a modelled program loses time (send overhead,
contention, rendezvous stalls).  This package applies the same
discipline to the serving stack itself -- when a ``/predict`` is slow,
the question "which stage?" must be answerable from the system's own
records, not from guesswork (the built-in-measurement shape Nansamba et
al. argue for with Caliper/Benchpark).

* :mod:`.tracer`  -- explicit-clock spans grouped into per-request
  traces, propagated via the ``X-Repro-Trace`` HTTP header, kept in a
  bounded ring buffer and exported by ``GET /trace``;
* :mod:`.profile` -- per-phase accumulators for the engine's
  sweep/match/sample buckets (PEVPM's loss-attribution categories
  applied to host time), shipped back from worker processes on each
  :class:`~repro.pevpm.parallel.RunOutcome`;
* :mod:`.jsonlog` -- one structured JSON line per served prediction
  (trace ID, cache tier outcome, batch ID, retry count) behind
  ``repro serve --log-json``;
* :mod:`.render`  -- the ASCII waterfall ``repro trace`` prints.

The whole package is stdlib-only and *zero-cost when disabled*: a
service built without a tracer passes ``trace=None`` through the
funnel and every call site is guarded.  Spans observe wall clocks only
and never touch the engine's seeded RNG streams, so tracing cannot
perturb the bit-identical reproducibility contract (test-asserted).
"""

from .jsonlog import JsonLogger
from .profile import ENGINE_PHASES, PhaseProfiler, merge_phases
from .render import render_waterfall
from .tracer import Span, Trace, Tracer, clean_trace_id, span_or_null

__all__ = [
    "ENGINE_PHASES",
    "JsonLogger",
    "PhaseProfiler",
    "Span",
    "Trace",
    "Tracer",
    "clean_trace_id",
    "merge_phases",
    "render_waterfall",
    "span_or_null",
]
