"""Figure/table generation from benchmark results.

Each function reproduces the *data series* behind one of the paper's
figures as a text table (plus optional ASCII plot); the benchmark scripts
under ``benchmarks/`` call these and assert the expected qualitative shape
(see DESIGN.md section 4 for the acceptance criteria).
"""

from __future__ import annotations

import numpy as np

from .._tables import ascii_pdf, format_table, format_time
from .results import BenchmarkResult, DistributionDB

__all__ = [
    "average_times_table",
    "pdf_table",
    "pdf_plots",
    "goodput_table",
    "contention_ratio",
]


def average_times_table(
    db: DistributionDB,
    op: str,
    sizes: list[int],
    configs: list[tuple[int, int]] | None = None,
    include_min: bool = True,
    title: str = "",
) -> str:
    """The Figure 1/2 table: average one-way time per size per n x p curve.

    The ``min`` column is the minimum observed between one pair of
    communicating processes, taken from the smallest configuration -- the
    paper's contention-free reference curve.
    """
    configs = configs or db.configs(op)
    headers = ["size (B)"] + [f"{n}x{p}" for n, p in configs]
    if include_min:
        headers.append("min")
    smallest = min(configs, key=lambda c: c[0] * c[1])
    rows = []
    for size in sizes:
        row: list[str] = [str(size)]
        for n, p in configs:
            hist = db.result(op, n, p).histograms.get(size)
            row.append(format_time(hist.mean) if hist else "-")
        if include_min:
            hist = db.result(op, *smallest).histograms.get(size)
            row.append(format_time(hist.min) if hist else "-")
        rows.append(row)
    return format_table(headers, rows, title=title or f"Average {op} times on {db.cluster}")


def pdf_table(result: BenchmarkResult, size: int, bins: int = 12) -> str:
    """Numeric PDF of one distribution (Figure 3/4 series, tabulated)."""
    hist = result.histograms[size]
    h = hist.rebinned(bins) if hist.samples is not None else hist
    centres, density = h.pdf()
    rows = [
        [format_time(c), f"{d:.4g}", f"{h.counts[i]:.0f}"]
        for i, (c, d) in enumerate(zip(centres, density))
    ]
    return format_table(
        ["time", "density", "count"],
        rows,
        title=f"{result.op} PDF, {result.label}, {size} B (n={hist.n})",
    )


def pdf_plots(
    result: BenchmarkResult,
    sizes: list[int] | None = None,
    width: int = 60,
    height: int = 8,
) -> str:
    """ASCII renderings of the distributions (the Figure 3/4 curves)."""
    sizes = sizes or result.sizes
    blocks = []
    for size in sizes:
        hist = result.histograms.get(size)
        if hist is None:
            continue
        centres, density = hist.pdf()
        label = (
            f"{result.op} {result.label} size={size}B  "
            f"min={format_time(hist.min)} mean={format_time(hist.mean)} "
            f"max={format_time(hist.max)}"
        )
        blocks.append(ascii_pdf(centres, density, width=width, height=height, label=label))
    return "\n\n".join(blocks)


def goodput_table(result: BenchmarkResult, title: str = "") -> str:
    """Payload goodput per message size -- the paper's '81 Mbit/s for
    16 KB messages' style of statement."""
    rows = []
    for size in result.sizes:
        hist = result.histograms[size]
        if size == 0 or hist.mean <= 0:
            rows.append([str(size), "-", format_time(hist.mean)])
            continue
        goodput_mbit = size / hist.mean * 8 / 1e6
        rows.append([str(size), f"{goodput_mbit:.1f}", format_time(hist.mean)])
    return format_table(
        ["size (B)", "goodput (Mbit/s)", "mean time"],
        rows,
        title=title or f"{result.op} goodput, {result.label}",
    )


def contention_ratio(
    db: DistributionDB, op: str, size: int, big: tuple[int, int], small: tuple[int, int]
) -> float:
    """Mean-time ratio between two configurations at one size -- the
    paper's '70% longer for 64x1 than 2x1 at 1 KB' measurement."""
    hb = db.result(op, *big).histograms[size]
    hs = db.result(op, *small).histograms[size]
    return float(hb.mean / hs.mean)


def tail_report(result: BenchmarkResult, rto: float = 0.2) -> str:
    """Outlier quantification for Figure 4: the fraction of samples beyond
    half the RTO (retransmission stalls) per message size."""
    rows = []
    for size in result.sizes:
        hist = result.histograms[size]
        frac = hist.tail_mass(rto / 2)
        rows.append([str(size), f"{frac * 100:.2f}%", format_time(hist.max)])
    return format_table(
        ["size (B)", "RTO-outlier fraction", "max time"],
        rows,
        title=f"{result.op} {result.label} retransmission outliers",
    )


def summary_stats(result: BenchmarkResult) -> dict[int, dict[str, float]]:
    """Machine-readable per-size summary, used by EXPERIMENTS.md.

    ``std`` is the population spread of the recorded samples (ddof=0);
    ``sample_std`` the unbiased-variance estimator (ddof=1) that CIs
    and stopping rules use -- reported separately so neither consumer
    silently gets the other's estimator.
    """
    out = {}
    for size in result.sizes:
        h = result.histograms[size]
        out[size] = {
            "mean": h.mean,
            "min": h.min,
            "max": h.max,
            "std": h.std,
            "sample_std": h.sample_std,
            "p50": h.quantile(0.5),
            "p99": h.quantile(0.99),
            "n": h.n,
        }
    return out
