"""Cross-campaign comparison and data export.

Utilities for the two workflows MPIBench's insight claims imply:

* **comparing machines / configurations** -- e.g. Fast Ethernet Perseus
  vs. a Gigabit cluster, or the same cluster before and after a switch
  upgrade -- via distribution-level and summary-level diffs of two
  :class:`~repro.mpibench.results.DistributionDB` campaigns;
* **exporting figure data** -- plain whitespace-separated ``.dat`` series
  (the gnuplot format of the paper's era) so results plot anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..stats.compare import ks_pvalue, verdict_for
from .results import DistributionDB

__all__ = [
    "ConfigComparison",
    "compare_configs",
    "compare_databases",
    "export_series",
    "prediction_vs_measurement",
]


@dataclass(frozen=True)
class ConfigComparison:
    """Summary diff of one (op, size) between two campaigns/configs."""

    op: str
    size: int
    mean_a: float
    mean_b: float
    p99_a: float
    p99_b: float
    ks: float = 0.0  #: Kolmogorov-Smirnov distance between the distributions
    #: asymptotic two-sample KS p-value at the two campaigns' sample
    #: sizes: how plausibly the observed ``ks`` gap is sampling noise
    ks_pvalue: float = 1.0
    #: "match" | "shifted" | "different" | "" (empty: not judged --
    #: raw samples unavailable on one side, so only the binned KS
    #: distance could be computed)
    verdict: str = ""

    @property
    def mean_ratio(self) -> float:
        """b / a mean-time ratio (>1: b is slower)."""
        if self.mean_a <= 0:
            raise ZeroDivisionError("mean_a must be positive")
        return self.mean_b / self.mean_a

    @property
    def tail_ratio(self) -> float:
        """b / a 99th-percentile ratio -- tail behaviour diff."""
        if self.p99_a <= 0:
            raise ZeroDivisionError("p99_a must be positive")
        return self.p99_b / self.p99_a


def compare_configs(
    db_a: DistributionDB,
    db_b: DistributionDB,
    op: str,
    config_a: tuple[int, int],
    config_b: tuple[int, int] | None = None,
) -> list[ConfigComparison]:
    """Compare one configuration between two campaigns (or two configs of
    one campaign by passing the same DB twice), at every common size."""
    config_b = config_b or config_a
    ra = db_a.result(op, *config_a)
    rb = db_b.result(op, *config_b)
    common = sorted(set(ra.sizes) & set(rb.sizes))
    if not common:
        raise ValueError(
            f"no common sizes between {config_a} ({ra.sizes}) and "
            f"{config_b} ({rb.sizes})"
        )
    out = []
    for size in common:
        ha, hb = ra.histograms[size], rb.histograms[size]
        ks = ha.ks_distance(hb)
        verdict = ""
        if ha.samples is not None and hb.samples is not None:
            # Raw samples on both sides: judge the diff properly (exact
            # KS on the samples, CI overlap on the means) instead of
            # reporting a bare binned distance.
            v = verdict_for(ha.samples, hb.samples)
            ks, pvalue, verdict = v.ks_stat, v.ks_pvalue, v.verdict
        else:
            pvalue = ks_pvalue(ks, ha.n, hb.n)
        out.append(
            ConfigComparison(
                op=op,
                size=size,
                mean_a=ha.mean,
                mean_b=hb.mean,
                p99_a=ha.quantile(0.99),
                p99_b=hb.quantile(0.99),
                ks=ks,
                ks_pvalue=pvalue,
                verdict=verdict,
            )
        )
    return out


def prediction_vs_measurement(
    predicted_times,
    measured_times,
    level: float = 0.95,
    alpha: float = 0.05,
):
    """Judge a PEVPM prediction against a measurement (or simulation).

    The paper validates predictions by comparing means; *MPI
    Benchmarking Revisited* points out a mean alone cannot certify
    agreement.  This folds both views into one
    :class:`~repro.stats.ComparisonVerdict`: ``match`` (KS cannot
    reject shape equality and the mean CIs overlap), ``shifted`` (shapes
    agree but the means separate -- the systematic offset the paper
    attributes to histogram granularity), or ``different``.
    """
    return verdict_for(predicted_times, measured_times, level=level, alpha=alpha)


def compare_databases(
    db_a: DistributionDB, db_b: DistributionDB, op: str = "isend"
) -> dict[tuple[int, int], list[ConfigComparison]]:
    """Full-campaign diff over every configuration both campaigns share."""
    common_cfgs = sorted(set(db_a.configs(op)) & set(db_b.configs(op)))
    if not common_cfgs:
        raise ValueError("the two campaigns share no configurations")
    return {
        cfg: compare_configs(db_a, db_b, op, cfg) for cfg in common_cfgs
    }


def export_series(
    db: DistributionDB,
    op: str,
    path: str | Path,
    statistic: str = "mean",
) -> Path:
    """Write the Figure 1/2 curve family as a gnuplot-friendly ``.dat``.

    One row per size, one column per configuration (header line labels the
    columns ``# size 2x1 8x1 ...``); times in seconds.  *statistic* is
    ``mean``, ``min``, ``max`` or a float in (0, 1) given as a string for
    a quantile (e.g. ``"0.99"``).
    """
    configs = db.configs(op)
    if not configs:
        raise KeyError(f"no results for op {op!r}")
    sizes = sorted(
        {s for cfg in configs for s in db.result(op, *cfg).sizes}
    )

    def value(hist):
        if statistic in ("mean", "min", "max"):
            return getattr(hist, statistic)
        q = float(statistic)
        return hist.quantile(q)

    lines = ["# size " + " ".join(f"{n}x{p}" for n, p in configs)]
    for size in sizes:
        row = [str(size)]
        for cfg in configs:
            hist = db.result(op, *cfg).histograms.get(size)
            row.append("nan" if hist is None else f"{value(hist):.9g}")
        lines.append(" ".join(row))
    out = Path(path)
    out.write_text("\n".join(lines) + "\n")
    return out
