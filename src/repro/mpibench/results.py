"""Benchmark results and the distribution database.

A :class:`BenchmarkResult` holds the histograms from one benchmark run
(one operation on one n x p configuration).  A :class:`DistributionDB`
aggregates results across configurations and is the hand-off artefact from
MPIBench to PEVPM: PEVPM's match phase asks it for the distribution of an
operation at a given message size *and contention level*, exactly as the
paper describes ("These probability distributions are a function of
message size and the total number of messages on the scoreboard").

Lookup semantics:

* configuration: the benchmark config whose total process count is nearest
  to the requested contention level (in log-space, since configs are
  typically powers of two);
* message size: either the nearest measured size, or quantile-space
  interpolation between the two bracketing sizes (``interpolate=True``),
  which samples ``u ~ U(0,1)`` once and blends the two inverse CDFs.

Everything serialises to JSON so a benchmark campaign can be saved and
reloaded without re-simulation.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .histogram import Histogram

__all__ = ["BenchmarkResult", "DistributionDB"]


class _CellSampler:
    """A fully-resolved sampling cell: the compiled inverse-CDF table(s)
    for one (op, size, contention, intra) lookup, plus the precomputed
    size-interpolation blend weights.

    Calling it draws *n* times with a single uniform batch and one or two
    table gathers -- no dict probes, no histogram dispatch.  Built by
    :meth:`DistributionDB.make_sampler`, bit-identical to the historical
    ``sample_times`` arithmetic (the blend uses a precomputed ``1.0 - w``,
    which is the same float the old expression produced per call).
    """

    __slots__ = ("_flo", "_fhi", "_w", "_one_minus_w")

    def __init__(self, flo, fhi=None, w: float = 0.0):
        self._flo = flo
        self._fhi = fhi
        self._w = w
        self._one_minus_w = 1.0 - w

    def __call__(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        if self._fhi is None:
            return self._flo(u)
        return self._one_minus_w * self._flo(u) + self._w * self._fhi(u)


@dataclass
class BenchmarkResult:
    """All histograms from one (operation, nodes x ppn) benchmark run."""

    op: str  #: e.g. "isend", "bcast", "barrier"
    nodes: int
    ppn: int
    cluster: str  #: spec name, e.g. "perseus"
    histograms: dict[int, Histogram]  #: message size -> distribution
    reps: int = 0
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def nprocs(self) -> int:
        return self.nodes * self.ppn

    @property
    def label(self) -> str:
        """The paper's n x p curve label, e.g. ``64x2``."""
        return f"{self.nodes}x{self.ppn}"

    @property
    def sizes(self) -> list[int]:
        return sorted(self.histograms)

    def mean_curve(self) -> list[tuple[int, float]]:
        """(size, mean time) series -- one line of Figure 1/2."""
        return [(s, self.histograms[s].mean) for s in self.sizes]

    def min_curve(self) -> list[tuple[int, float]]:
        """(size, min time) series -- the paper's ``min`` curve."""
        return [(s, self.histograms[s].min) for s in self.sizes]

    def to_dict(self, include_samples: bool = False) -> dict:
        return {
            "op": self.op,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "cluster": self.cluster,
            "reps": self.reps,
            "seed": self.seed,
            "metadata": self.metadata,
            "histograms": {
                str(size): h.to_dict(include_samples=include_samples)
                for size, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchmarkResult":
        return cls(
            op=d["op"],
            nodes=d["nodes"],
            ppn=d["ppn"],
            cluster=d["cluster"],
            reps=d.get("reps", 0),
            seed=d.get("seed", 0),
            metadata=d.get("metadata", {}),
            histograms={
                int(size): Histogram.from_dict(h)
                for size, h in d["histograms"].items()
            },
        )


class DistributionDB:
    """Queryable store of benchmark distributions across configurations."""

    def __init__(self, cluster: str = ""):
        self.cluster = cluster
        #: set by :meth:`freeze`: the DB is registered somewhere that
        #: caches by its fingerprint, so further mutation must fail
        self._frozen = False
        #: op -> {(nodes, ppn) -> BenchmarkResult}
        self._results: dict[str, dict[tuple[int, int], BenchmarkResult]] = {}
        # Lookup caches (PEVPM samples millions of times per study):
        # nearest-config and size-bracketing resolution, the fused
        # (op, size, contention) -> (result, lo, hi) hot-path lookup,
        # and scalar mean/min stats for the Figure 6 ablations.
        self._nearest_cache: dict[tuple, tuple[int, int]] = {}
        self._bracket_cache: dict[tuple, tuple[int, int]] = {}
        self._locate_cache: dict[tuple, tuple[BenchmarkResult, int, int]] = {}
        self._stat_cache: dict[tuple, float] = {}
        # (op, size, contention, intra) -> _CellSampler: the compiled
        # inverse-CDF tables PEVPM's hot path draws through.  Holds
        # closures, so it is dropped on pickle (see __getstate__).
        self._sampler_cache: dict[tuple, _CellSampler] = {}
        self._fingerprint: str | None = None

    # -- population --------------------------------------------------------------
    def add(self, result: BenchmarkResult) -> None:
        if self._frozen:
            raise RuntimeError(
                "DistributionDB is frozen (registered under its content "
                "fingerprint); build a new DB instead of mutating this one"
            )
        if not result.histograms:
            raise ValueError("refusing to add an empty BenchmarkResult")
        if self.cluster and result.cluster != self.cluster:
            raise ValueError(
                f"result from cluster {result.cluster!r} does not belong in "
                f"a DB for {self.cluster!r}"
            )
        if not self.cluster:
            self.cluster = result.cluster
        self._results.setdefault(result.op, {})[(result.nodes, result.ppn)] = result
        self._nearest_cache.clear()
        self._bracket_cache.clear()
        self._locate_cache.clear()
        self._stat_cache.clear()
        self._sampler_cache.clear()
        self._fingerprint = None

    def ops(self) -> list[str]:
        return sorted(self._results)

    def configs(self, op: str) -> list[tuple[int, int]]:
        """(nodes, ppn) configurations measured for *op*."""
        return sorted(self._results.get(op, {}))

    def result(self, op: str, nodes: int, ppn: int) -> BenchmarkResult:
        try:
            return self._results[op][(nodes, ppn)]
        except KeyError:
            raise KeyError(
                f"no benchmark for op={op!r} config {nodes}x{ppn}; "
                f"have {self.configs(op)}"
            ) from None

    # -- lookup ---------------------------------------------------------------------
    def _configs_for(self, op: str, intra: bool) -> list[tuple[int, int]]:
        """Configurations relevant to intra-node (single-node benchmark)
        or inter-node (multi-node) messages, falling back to everything
        when no dedicated measurements exist."""
        configs = self.configs(op)
        if not configs:
            raise KeyError(f"no benchmarks recorded for op {op!r}")
        if intra:
            picked = [c for c in configs if c[0] == 1]
        else:
            picked = [c for c in configs if c[0] > 1]
        return picked or configs

    def nearest_config(self, op: str, nprocs: int, intra: bool = False) -> tuple[int, int]:
        """Config whose total process count is nearest *nprocs* (log-space).

        With ``intra=True``, only single-node (shared-memory) benchmark
        configurations are considered -- intra-node messages have an
        entirely different time scale than wire messages."""
        key = (op, nprocs, intra)
        cached = self._nearest_cache.get(key)
        if cached is not None:
            return cached
        configs = self._configs_for(op, intra)
        target = math.log(max(1, nprocs))
        best = min(configs, key=lambda c: abs(math.log(c[0] * c[1]) - target))
        self._nearest_cache[key] = best
        return best

    def histogram(
        self, op: str, size: int, nodes: int, ppn: int
    ) -> Histogram:
        """Exact-config lookup with nearest measured size."""
        lo, hi = self.bracketing_sizes(op, size, nodes, ppn)
        nearest = lo if abs(size - lo) <= abs(hi - size) else hi
        return self.result(op, nodes, ppn).histograms[nearest]

    def _locate(
        self, op: str, size: int, contention: int, intra: bool
    ) -> tuple[BenchmarkResult, int, int]:
        """Fused hot-path lookup: the benchmark result matching the
        contention level plus the bracketing measured sizes.  One dict
        probe per sampling call instead of three."""
        key = (op, size, contention, intra)
        hit = self._locate_cache.get(key)
        if hit is None:
            nodes, ppn = self.nearest_config(op, max(2, contention), intra=intra)
            lo, hi = self.bracketing_sizes(op, size, nodes, ppn)
            hit = (self.result(op, nodes, ppn), lo, hi)
            self._locate_cache[key] = hit
        return hit

    def bracketing_sizes(
        self, op: str, size: int, nodes: int, ppn: int
    ) -> tuple[int, int]:
        """The two measured sizes bracketing *size* (equal at the ends)."""
        key = (op, size, nodes, ppn)
        cached = self._bracket_cache.get(key)
        if cached is not None:
            return cached
        sizes = self.result(op, nodes, ppn).sizes
        below = [s for s in sizes if s <= size]
        above = [s for s in sizes if s >= size]
        lo = max(below) if below else min(sizes)
        hi = min(above) if above else max(sizes)
        self._bracket_cache[key] = (lo, hi)
        return lo, hi

    def sample_time(
        self,
        op: str,
        size: int,
        contention: int,
        rng: np.random.Generator,
        interpolate: bool = True,
        intra: bool = False,
    ) -> float:
        """Draw one operation time -- PEVPM's match-phase primitive.

        *contention* is the number of messages on the scoreboard (PEVPM's
        contention level); it selects the benchmark configuration whose
        process count is nearest, since a benchmark with P communicating
        processes keeps ~P messages in flight.  *intra* selects the
        shared-memory (single-node) measurements.
        """
        result, lo, hi = self._locate(op, size, contention, intra)
        if not interpolate or lo == hi:
            nearest = lo if abs(size - lo) <= abs(hi - size) else hi
            return float(result.histograms[nearest].sample(rng))
        # Quantile-space interpolation between the bracketing sizes.
        w = (size - lo) / (hi - lo)
        u = float(rng.random())
        qlo = result.histograms[lo].quantile(u)
        qhi = result.histograms[hi].quantile(u)
        return float((1.0 - w) * qlo + w * qhi)

    def make_sampler(
        self, op: str, size: int, contention: int, intra: bool = False
    ) -> _CellSampler:
        """The compiled sampler for one lookup cell.

        Resolves the contention->configuration and size-bracketing
        lookups once and binds the bracketing histograms' inverse-CDF
        tables (:meth:`Histogram.icdf`) with the interpolation weight, so
        every subsequent draw is a uniform batch plus one or two
        gathers.  Cached per (op, size, contention, intra); invalidated
        by :meth:`add`."""
        key = (op, size, contention, intra)
        sampler = self._sampler_cache.get(key)
        if sampler is None:
            result, lo, hi = self._locate(op, size, contention, intra)
            if lo == hi:
                sampler = _CellSampler(result.histograms[lo].icdf())
            else:
                w = (size - lo) / (hi - lo)
                sampler = _CellSampler(
                    result.histograms[lo].icdf(),
                    result.histograms[hi].icdf(),
                    w,
                )
            self._sampler_cache[key] = sampler
        return sampler

    def sample_times(
        self,
        op: str,
        size: int,
        contention: int,
        rng: np.random.Generator,
        n: int,
        intra: bool = False,
    ) -> np.ndarray:
        """Vectorised version of :meth:`sample_time`: *n* independent
        draws at once (quantile-space size interpolation included).
        Delegates to the cached :meth:`make_sampler` cell, consuming the
        RNG stream exactly as the uncached form did."""
        return self.make_sampler(op, size, contention, intra)(rng, n)

    def _stat_time(self, stat: str, op: str, size: int, contention: int, intra: bool) -> float:
        key = (stat, op, size, contention, intra)
        value = self._stat_cache.get(key)
        if value is None:
            result, lo, hi = self._locate(op, size, contention, intra)
            nearest = lo if abs(size - lo) <= abs(hi - size) else hi
            value = getattr(result.histograms[nearest], stat)
            self._stat_cache[key] = value
        return value

    def describe(
        self,
        op: str,
        size: int,
        contention: int,
        intra: bool = False,
        quantiles: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99),
    ) -> dict:
        """JSON-able summary of the distribution a lookup would sample.

        This is the prediction service's ``/distributions`` query path:
        it reports which benchmark configuration the contention level
        resolved to, the measured sizes bracketing the request, and the
        nearest size's histogram statistics and quantiles -- everything a
        client needs to understand (and reproduce) what PEVPM would draw
        from, without shipping the raw histogram.
        """
        result, lo, hi = self._locate(op, size, contention, intra)
        nearest = lo if abs(size - lo) <= abs(hi - size) else hi
        hist = result.histograms[nearest]
        return {
            "op": op,
            "cluster": self.cluster,
            "requested_size": size,
            "contention": contention,
            "intra": bool(intra),
            "config": result.label,
            "nodes": result.nodes,
            "ppn": result.ppn,
            "bracketing_sizes": [lo, hi],
            "nearest_size": nearest,
            "samples": hist.n,
            "bins": hist.nbins,
            "mean": hist.mean,
            "std": hist.std,
            "sample_std": hist.sample_std,
            "min": hist.min,
            "max": hist.max,
            "quantiles": {f"{q:g}": hist.quantile(q) for q in quantiles},
            "db_fingerprint": self.fingerprint(),
        }

    def mean_time(self, op: str, size: int, contention: int, intra: bool = False) -> float:
        """Average-time lookup (the 'avg' ablation of Figure 6)."""
        return self._stat_time("mean", op, size, contention, intra)

    def min_time(self, op: str, size: int, contention: int, intra: bool = False) -> float:
        """Minimum-time lookup (the 'min' ablation of Figure 6)."""
        return self._stat_time("min", op, size, contention, intra)

    # -- identity ---------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "DistributionDB":
        """Make this DB immutable: any further :meth:`add` raises.

        Anything that caches or addresses a DB by its
        :meth:`fingerprint` -- the distribution registry, the served
        request keys -- relies on the content behind that fingerprint
        never changing.  ``add()`` clears the fingerprint cache, so a
        mutated DB would silently serve different times under a key
        minted for the old content; freezing turns that hazard into an
        immediate error.  Idempotent; returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    def fingerprint(self) -> str:
        """Stable content hash of the distributions this DB serves.

        Summarises every histogram by its shape and moments rather than
        hashing raw samples, so the digest is cheap (microseconds, cached
        until :meth:`add` invalidates it) yet changes whenever a lookup
        could return different times.  Used to key the PEVPM on-disk
        prediction cache.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(self.cluster.encode())
            for op in self.ops():
                for (nodes, ppn) in self.configs(op):
                    result = self._results[op][(nodes, ppn)]
                    h.update(f"{op}:{nodes}x{ppn}:{result.reps}:{result.seed}".encode())
                    for size in result.sizes:
                        hist = result.histograms[size]
                        h.update(
                            (
                                f"{size}:{hist.n}:{hist.nbins}:{hist.mean!r}:"
                                f"{hist.std!r}:{hist.min!r}:{hist.max!r}"
                            ).encode()
                        )
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # -- pickling ---------------------------------------------------------------------
    # The DB ships to prediction-pool workers by pickle; the sampler
    # cache holds compiled closures (unpicklable, cheap to rebuild), so
    # it travels empty and each worker recompiles its cells on first use.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_sampler_cache"] = {}
        return state

    # -- persistence -------------------------------------------------------------------
    def to_doc(self, include_samples: bool = True) -> dict:
        """The whole DB as one JSON-able document (what :meth:`save`
        writes and the registry's content-addressed store keeps)."""
        return {
            "cluster": self.cluster,
            "results": [
                r.to_dict(include_samples=include_samples)
                for per_op in self._results.values()
                for r in per_op.values()
            ],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "DistributionDB":
        """Rebuild a DB from a :meth:`to_doc` document.

        Raises ``ValueError``/``KeyError``/``TypeError`` on a malformed
        document -- the registry's upload path maps those to HTTP 400.
        """
        if not isinstance(doc, dict):
            raise ValueError("distribution document must be a JSON object")
        results = doc.get("results")
        if not isinstance(results, list) or not results:
            raise ValueError(
                "distribution document needs a non-empty 'results' list"
            )
        db = cls(cluster=doc.get("cluster", ""))
        for rd in results:
            db.add(BenchmarkResult.from_dict(rd))
        return db

    def save(self, path: str | Path, include_samples: bool = True) -> None:
        """Write the whole DB as JSON."""
        Path(path).write_text(
            json.dumps(self.to_doc(include_samples=include_samples))
        )

    @classmethod
    def load(cls, path: str | Path) -> "DistributionDB":
        return cls.from_doc(json.loads(Path(path).read_text()))

    def __len__(self) -> int:
        return sum(len(v) for v in self._results.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DistributionDB cluster={self.cluster!r} results={len(self)}>"
