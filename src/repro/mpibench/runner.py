"""Benchmark orchestration: run MPIBench campaigns on a simulated cluster.

:class:`MPIBench` is the user-facing tool: point it at a cluster spec,
describe a configuration sweep, and it launches one dedicated simulated
MPI job per (operation, nodes x ppn) configuration -- "MPIBench was run in
a dedicated fashion" -- pools the per-rank samples and returns
:class:`~repro.mpibench.results.BenchmarkResult` objects (or a whole
:class:`~repro.mpibench.results.DistributionDB` for a sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simnet.topology import ClusterSpec
from ..smpi.runtime import run_program
from ..stats import achieved_rse
from . import drivers
from .histogram import Histogram
from .results import BenchmarkResult, DistributionDB

__all__ = ["BenchSettings", "MPIBench", "DEFAULT_SMALL_SIZES", "DEFAULT_LARGE_SIZES"]

#: message sizes of the paper's Figure 1 (small) sweep
DEFAULT_SMALL_SIZES = [0, 64, 128, 256, 512, 1024]
#: message sizes of the paper's Figure 2 (large) sweep
DEFAULT_LARGE_SIZES = [1024, 4096, 16384, 32768, 65536, 131072, 262144]


@dataclass
class BenchSettings:
    """Knobs common to every benchmark run."""

    reps: int = 100  #: timed repetitions per message size
    warmup: int = 10  #: untimed repetitions per message size
    bins: int = 60  #: histogram bin count (the paper's granularity knob)
    sync_rounds: int = 8  #: ping-pongs per rank during clock sync
    drift_gap: float = 0.25  #: idle gap between the two sync passes (s)
    keep_samples: bool = True  #: retain raw samples inside histograms
    #: auto-reps: after the initial *reps* repetitions, keep doubling
    #: until every (op, size) sample set's mean has a 95% CI half-width
    #: within this fraction of |mean| -- the benchmark-side twin of the
    #: prediction engine's stopping rule.  ``None`` (default) keeps the
    #: exact historical single-pass behaviour.
    target_rse: float | None = None
    max_reps: int = 1600  #: auto-reps spend cap (total reps per size)

    def validate(self) -> None:
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if self.target_rse is not None and not self.target_rse > 0:
            raise ValueError("target_rse must be positive")
        if self.max_reps < self.reps:
            raise ValueError("max_reps must be >= reps")


class MPIBench:
    """The benchmark tool.

    >>> bench = MPIBench(perseus(64), seed=1)
    >>> result = bench.run_isend(nodes=8, ppn=1, sizes=[0, 1024])
    >>> result.histograms[1024].mean  # doctest: +SKIP
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int = 0,
        settings: BenchSettings | None = None,
    ):
        self.spec = spec
        self.seed = seed
        self.settings = settings or BenchSettings()
        self.settings.validate()

    # -- single-configuration runs ---------------------------------------------------
    def _round_seed(self, round_ordinal: int) -> int:
        """Seed of one auto-reps refinement round.

        Round 0 is ``self.seed`` exactly, so an auto-reps campaign's
        first pass is byte-identical to a plain single-pass run of the
        same settings; later rounds derive independent seeds from the
        root via the ``SeedSequence`` spawn-key scheme (the same
        convention the prediction engine's ``chunk_seed`` uses), so the
        pooled sample set is a pure function of (seed, round count).
        """
        if round_ordinal == 0:
            return self.seed
        child = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(round_ordinal,)
        )
        return int(child.generate_state(1)[0])

    def _collect(self, driver_args, driver, nodes: int, ppn: int, seed: int):
        """One simulated benchmark job: (per-rank returns, elapsed)."""
        result = run_program(
            self.spec,
            driver,
            nprocs=nodes * ppn,
            ppn=ppn,
            seed=seed,
            args=driver_args,
        )
        return result.returns, result.elapsed

    @staticmethod
    def _accumulate(pooled: dict, returns) -> None:
        """Fold one job's per-rank ``{op: {size: samples}}`` returns into
        the cross-round raw-sample pool."""
        for rank_out in returns:
            for op, per_size in rank_out.items():
                sizes = pooled.setdefault(op, {})
                for size, values in per_size.items():
                    sizes.setdefault(size, []).extend(values)

    def _converged(self, pooled: dict, target: float) -> bool:
        """Whether every (op, size) sample set meets the RSE target."""
        return all(
            achieved_rse(values) <= target
            for per_size in pooled.values()
            for values in per_size.values()
            if values
        )

    def _run(
        self,
        driver_args,
        driver,
        nodes: int,
        ppn: int,
        reps_at: int | None = None,
    ) -> dict[str, BenchmarkResult]:
        """Run one benchmark configuration, with optional auto-reps.

        *reps_at* is the index of the repetition count inside
        *driver_args* (drivers differ); ``None`` disables auto-reps for
        this driver even when the settings ask for it.  Auto-reps pools
        **raw samples** across rounds before any histogram is built, so
        granularity is identical to a single-pass run of the same total;
        each round re-runs every message size (keeping per-size sample
        counts uniform) with the round total doubling until every
        (op, size) meets ``target_rse`` or ``max_reps`` is reached.
        """
        if nodes > self.spec.n_nodes:
            raise ValueError(
                f"{nodes} nodes requested; cluster {self.spec.name!r} has "
                f"{self.spec.n_nodes}"
            )
        s = self.settings
        adaptive = s.target_rse is not None and reps_at is not None
        pooled: dict[str, dict[int, list[float]]] = {}
        returns, elapsed = self._collect(
            driver_args, driver, nodes, ppn, self._round_seed(0)
        )
        self._accumulate(pooled, returns)
        total = s.reps
        rounds = 1
        converged = True
        if adaptive:
            converged = self._converged(pooled, s.target_rse)
            while not converged and total < s.max_reps:
                add = min(total, s.max_reps - total)  # doubling schedule
                args = list(driver_args)
                args[reps_at] = add
                returns, extra = self._collect(
                    tuple(args), driver, nodes, ppn, self._round_seed(rounds)
                )
                self._accumulate(pooled, returns)
                elapsed += extra
                total += add
                rounds += 1
                converged = self._converged(pooled, s.target_rse)
        out: dict[str, BenchmarkResult] = {}
        for op in sorted(pooled):
            metadata = {
                "elapsed_simulated_s": elapsed,
                "warmup": s.warmup,
                "bins": s.bins,
            }
            if adaptive:
                metadata["auto_reps"] = {
                    "target_rse": s.target_rse,
                    "max_reps": s.max_reps,
                    "reps": total,
                    "rounds": rounds,
                    "converged": converged,
                }
            histograms = {
                size: Histogram.from_samples(
                    values, bins=s.bins, keep_samples=s.keep_samples,
                )
                for size, values in pooled[op].items()
                if values
            }
            out[op] = BenchmarkResult(
                op=op,
                nodes=nodes,
                ppn=ppn,
                cluster=self.spec.name,
                histograms=histograms,
                reps=total,
                seed=self.seed,
                metadata=metadata,
            )
        return out

    def run_isend_all(
        self, nodes: int, ppn: int, sizes: list[int], pattern: str = "pairs"
    ) -> dict[str, BenchmarkResult]:
        """Benchmark MPI_Isend on a nodes x ppn config; returns both the
        one-way ("isend") and sender-occupancy ("isend_local") results.

        *pattern* selects the traffic shape: "pairs" (rank i with i + P/2,
        sustained cross-cluster flows) or "ring" (both nearest neighbours,
        the stencil pattern; ops are suffixed ``:ring``)."""
        s = self.settings
        args = (list(sizes), s.reps, s.warmup, s.sync_rounds, s.drift_gap)
        if pattern == "pairs":
            return self._run(args, drivers.isend_driver, nodes, ppn, reps_at=1)
        if pattern == "ring":
            return self._run(
                args, drivers.ring_isend_driver, nodes, ppn, reps_at=1
            )
        raise ValueError(f"unknown pattern {pattern!r}")

    def run_isend(self, nodes: int, ppn: int, sizes: list[int]) -> BenchmarkResult:
        """Benchmark MPI_Isend/recv one-way times on a nodes x ppn config."""
        return self.run_isend_all(nodes, ppn, sizes)["isend"]

    def run_pingpong(self, nodes: int, ppn: int, sizes: list[int]) -> BenchmarkResult:
        """Benchmark conventional ping-pong RTT/2 times (for contrast with
        the one-way distributions -- the paper's criticism of other
        benchmarks)."""
        s = self.settings
        args = (list(sizes), s.reps, s.warmup)
        return self._run(
            args, drivers.pingpong_driver, nodes, ppn, reps_at=1
        )["pingpong_half"]

    def run_bcast(
        self, nodes: int, ppn: int, sizes: list[int], root: int = 0
    ) -> BenchmarkResult:
        """Benchmark MPI_Bcast completion times at every rank."""
        s = self.settings
        args = (list(sizes), s.reps, root, s.warmup, s.sync_rounds, s.drift_gap)
        return self._run(
            args, drivers.bcast_driver, nodes, ppn, reps_at=1
        )["bcast"]

    def run_barrier(self, nodes: int, ppn: int) -> BenchmarkResult:
        """Benchmark MPI_Barrier times."""
        s = self.settings
        args = (s.reps, s.warmup, s.sync_rounds, s.drift_gap)
        return self._run(
            args, drivers.barrier_driver, nodes, ppn, reps_at=0
        )["barrier"]

    # -- sweeps ------------------------------------------------------------------------
    def sweep_isend(
        self,
        configs: list[tuple[int, int]],
        sizes: list[int],
        db: DistributionDB | None = None,
        pattern: str = "pairs",
    ) -> DistributionDB:
        """Run the isend benchmark across several nodes x ppn configs,
        returning (or extending) a :class:`DistributionDB` -- the artefact
        PEVPM consumes."""
        db = db if db is not None else DistributionDB(cluster=self.spec.name)
        for nodes, ppn in configs:
            for result in self.run_isend_all(nodes, ppn, sizes, pattern=pattern).values():
                db.add(result)
        return db
