"""Benchmark orchestration: run MPIBench campaigns on a simulated cluster.

:class:`MPIBench` is the user-facing tool: point it at a cluster spec,
describe a configuration sweep, and it launches one dedicated simulated
MPI job per (operation, nodes x ppn) configuration -- "MPIBench was run in
a dedicated fashion" -- pools the per-rank samples and returns
:class:`~repro.mpibench.results.BenchmarkResult` objects (or a whole
:class:`~repro.mpibench.results.DistributionDB` for a sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simnet.topology import ClusterSpec
from ..smpi.runtime import run_program
from . import drivers
from .histogram import Histogram
from .results import BenchmarkResult, DistributionDB

__all__ = ["BenchSettings", "MPIBench", "DEFAULT_SMALL_SIZES", "DEFAULT_LARGE_SIZES"]

#: message sizes of the paper's Figure 1 (small) sweep
DEFAULT_SMALL_SIZES = [0, 64, 128, 256, 512, 1024]
#: message sizes of the paper's Figure 2 (large) sweep
DEFAULT_LARGE_SIZES = [1024, 4096, 16384, 32768, 65536, 131072, 262144]


@dataclass
class BenchSettings:
    """Knobs common to every benchmark run."""

    reps: int = 100  #: timed repetitions per message size
    warmup: int = 10  #: untimed repetitions per message size
    bins: int = 60  #: histogram bin count (the paper's granularity knob)
    sync_rounds: int = 8  #: ping-pongs per rank during clock sync
    drift_gap: float = 0.25  #: idle gap between the two sync passes (s)
    keep_samples: bool = True  #: retain raw samples inside histograms

    def validate(self) -> None:
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.bins < 1:
            raise ValueError("bins must be >= 1")


class MPIBench:
    """The benchmark tool.

    >>> bench = MPIBench(perseus(64), seed=1)
    >>> result = bench.run_isend(nodes=8, ppn=1, sizes=[0, 1024])
    >>> result.histograms[1024].mean  # doctest: +SKIP
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int = 0,
        settings: BenchSettings | None = None,
    ):
        self.spec = spec
        self.seed = seed
        self.settings = settings or BenchSettings()
        self.settings.validate()

    # -- single-configuration runs ---------------------------------------------------
    def _pool(self, per_rank: list[dict[int, list[float]]]) -> dict[int, Histogram]:
        """Pool per-rank sample lists into one histogram per size."""
        pooled: dict[int, list[float]] = {}
        for rank_samples in per_rank:
            for size, values in rank_samples.items():
                pooled.setdefault(size, []).extend(values)
        return {
            size: Histogram.from_samples(
                values, bins=self.settings.bins,
                keep_samples=self.settings.keep_samples,
            )
            for size, values in pooled.items()
            if values
        }

    def _run(self, driver_args, driver, nodes: int, ppn: int) -> dict[str, BenchmarkResult]:
        if nodes > self.spec.n_nodes:
            raise ValueError(
                f"{nodes} nodes requested; cluster {self.spec.name!r} has "
                f"{self.spec.n_nodes}"
            )
        nprocs = nodes * ppn
        result = run_program(
            self.spec,
            driver,
            nprocs=nprocs,
            ppn=ppn,
            seed=self.seed,
            args=driver_args,
        )
        # Drivers return {op: {size: samples}} per rank.
        ops = sorted({op for rank_out in result.returns for op in rank_out})
        out: dict[str, BenchmarkResult] = {}
        for op in ops:
            histograms = self._pool([rank_out.get(op, {}) for rank_out in result.returns])
            out[op] = BenchmarkResult(
                op=op,
                nodes=nodes,
                ppn=ppn,
                cluster=self.spec.name,
                histograms=histograms,
                reps=self.settings.reps,
                seed=self.seed,
                metadata={
                    "elapsed_simulated_s": result.elapsed,
                    "warmup": self.settings.warmup,
                    "bins": self.settings.bins,
                },
            )
        return out

    def run_isend_all(
        self, nodes: int, ppn: int, sizes: list[int], pattern: str = "pairs"
    ) -> dict[str, BenchmarkResult]:
        """Benchmark MPI_Isend on a nodes x ppn config; returns both the
        one-way ("isend") and sender-occupancy ("isend_local") results.

        *pattern* selects the traffic shape: "pairs" (rank i with i + P/2,
        sustained cross-cluster flows) or "ring" (both nearest neighbours,
        the stencil pattern; ops are suffixed ``:ring``)."""
        s = self.settings
        args = (list(sizes), s.reps, s.warmup, s.sync_rounds, s.drift_gap)
        if pattern == "pairs":
            return self._run(args, drivers.isend_driver, nodes, ppn)
        if pattern == "ring":
            return self._run(args, drivers.ring_isend_driver, nodes, ppn)
        raise ValueError(f"unknown pattern {pattern!r}")

    def run_isend(self, nodes: int, ppn: int, sizes: list[int]) -> BenchmarkResult:
        """Benchmark MPI_Isend/recv one-way times on a nodes x ppn config."""
        return self.run_isend_all(nodes, ppn, sizes)["isend"]

    def run_pingpong(self, nodes: int, ppn: int, sizes: list[int]) -> BenchmarkResult:
        """Benchmark conventional ping-pong RTT/2 times (for contrast with
        the one-way distributions -- the paper's criticism of other
        benchmarks)."""
        s = self.settings
        args = (list(sizes), s.reps, s.warmup)
        return self._run(args, drivers.pingpong_driver, nodes, ppn)["pingpong_half"]

    def run_bcast(
        self, nodes: int, ppn: int, sizes: list[int], root: int = 0
    ) -> BenchmarkResult:
        """Benchmark MPI_Bcast completion times at every rank."""
        s = self.settings
        args = (list(sizes), s.reps, root, s.warmup, s.sync_rounds, s.drift_gap)
        return self._run(args, drivers.bcast_driver, nodes, ppn)["bcast"]

    def run_barrier(self, nodes: int, ppn: int) -> BenchmarkResult:
        """Benchmark MPI_Barrier times."""
        s = self.settings
        args = (s.reps, s.warmup, s.sync_rounds, s.drift_gap)
        return self._run(args, drivers.barrier_driver, nodes, ppn)["barrier"]

    # -- sweeps ------------------------------------------------------------------------
    def sweep_isend(
        self,
        configs: list[tuple[int, int]],
        sizes: list[int],
        db: DistributionDB | None = None,
        pattern: str = "pairs",
    ) -> DistributionDB:
        """Run the isend benchmark across several nodes x ppn configs,
        returning (or extending) a :class:`DistributionDB` -- the artefact
        PEVPM consumes."""
        db = db if db is not None else DistributionDB(cluster=self.spec.name)
        for nodes, ppn in configs:
            for result in self.run_isend_all(nodes, ppn, sizes, pattern=pattern).values():
                db.add(result)
        return db
