"""MPIBench: communication benchmarking with a globally synchronised clock.

The reproduction of the paper's benchmark tool (Sections 2-3).  Run it
against a simulated cluster with :class:`~repro.mpibench.runner.MPIBench`;
results are per-size :class:`~repro.mpibench.histogram.Histogram` s pooled
into a :class:`~repro.mpibench.results.DistributionDB`, which is what the
PEVPM performance model samples from.
"""

from .clocksync import SYNC_TAG, ClockCorrection, sync_clocks
from .compare import (
    ConfigComparison,
    compare_configs,
    compare_databases,
    export_series,
    prediction_vs_measurement,
)
from .distfit import ParametricFit, fit_histogram, fit_samples
from .drivers import (
    barrier_driver,
    bcast_driver,
    isend_driver,
    pairwise_partner,
    pingpong_driver,
)
from .histogram import Histogram
from .results import BenchmarkResult, DistributionDB
from .runner import DEFAULT_LARGE_SIZES, DEFAULT_SMALL_SIZES, BenchSettings, MPIBench

__all__ = [
    "BenchSettings",
    "BenchmarkResult",
    "ClockCorrection",
    "ConfigComparison",
    "DEFAULT_LARGE_SIZES",
    "DEFAULT_SMALL_SIZES",
    "DistributionDB",
    "Histogram",
    "MPIBench",
    "ParametricFit",
    "SYNC_TAG",
    "barrier_driver",
    "bcast_driver",
    "compare_configs",
    "compare_databases",
    "export_series",
    "fit_histogram",
    "fit_samples",
    "isend_driver",
    "pairwise_partner",
    "pingpong_driver",
    "prediction_vs_measurement",
    "sync_clocks",
]
