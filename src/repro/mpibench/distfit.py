"""Parametrised fits to measured timing distributions.

Section 2 of the paper: "It is also possible to use parametrised functions
to model the PDFs, based on fits to the histograms using standard
functions."  Communication-time distributions have a hard left edge (the
contention-free minimum) and a right skew, so the natural families are the
*shifted* (three-parameter) gamma and lognormal.  This module fits both by
maximum likelihood (via :mod:`scipy.stats`), scores them with the
Kolmogorov-Smirnov statistic, and wraps the winner in a sampler that can
stand in for a histogram as a PEVPM timing source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .histogram import Histogram

__all__ = ["ParametricFit", "fit_histogram", "fit_samples"]


_FAMILIES = {
    "gamma": stats.gamma,
    "lognorm": stats.lognorm,
}


@dataclass(frozen=True)
class ParametricFit:
    """A fitted standard distribution, usable as a sampling source.

    *family* is ``"gamma"`` or ``"lognorm"``; *params* the scipy shape
    parameters ``(shape, loc, scale)``; *ks* the Kolmogorov-Smirnov
    distance between fit and data (smaller is better).
    """

    family: str
    params: tuple
    ks: float
    n: int

    @property
    def frozen(self):
        """The frozen scipy distribution object."""
        return _FAMILIES[self.family](*self.params)

    @property
    def mean(self) -> float:
        return float(self.frozen.mean())

    @property
    def std(self) -> float:
        return float(self.frozen.std())

    @property
    def support_min(self) -> float:
        """The fitted location (left edge) -- the contention-free bound."""
        return float(self.params[-2])

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw from the fitted distribution."""
        out = self.frozen.rvs(size=1 if size is None else size, random_state=rng)
        return float(out[0]) if size is None else out

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self.frozen.pdf(x)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "params": list(self.params),
            "ks": self.ks,
            "n": self.n,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ParametricFit":
        return cls(
            family=d["family"], params=tuple(d["params"]), ks=d["ks"], n=d["n"]
        )


def fit_samples(samples: np.ndarray, families: tuple[str, ...] = ("gamma", "lognorm")) -> ParametricFit:
    """Fit each candidate family to raw samples; return the best by KS.

    The location parameter is constrained to lie below the sample minimum
    (a communication time cannot undercut the contention-free bound).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 8:
        raise ValueError("need at least 8 samples for a meaningful fit")
    if np.any(~np.isfinite(arr)) or np.any(arr < 0):
        raise ValueError("samples must be finite and non-negative")
    spread = float(arr.max() - arr.min())
    if spread == 0.0:
        # Degenerate data: a point mass; represent as a vanishingly narrow
        # gamma at the observed value.
        loc = float(arr.min())
        return ParametricFit(
            family="gamma", params=(1.0, loc, max(loc, 1.0) * 1e-12),
            ks=0.0, n=arr.size,
        )

    best: ParametricFit | None = None
    for name in families:
        dist = _FAMILIES[name]
        # Anchor the left edge slightly below the observed minimum: the
        # distributions "rise from a bounded minimum time", and fixing the
        # location makes the remaining two-parameter MLE stable (free-loc
        # fits of shifted gamma/lognormal are notoriously ill-conditioned).
        loc = float(arr.min()) - 0.01 * spread
        try:
            params = dist.fit(arr, floc=loc)
        except Exception:  # scipy fit can fail on pathological data
            continue
        if not np.all(np.isfinite(params)):
            continue
        ks = float(stats.kstest(arr, dist.name, args=params).statistic)
        fit = ParametricFit(family=name, params=tuple(map(float, params)), ks=ks, n=arr.size)
        if best is None or fit.ks < best.ks:
            best = fit
    if best is None:
        raise RuntimeError("no distribution family produced a valid fit")
    return best


def fit_histogram(hist: Histogram, families: tuple[str, ...] = ("gamma", "lognorm")) -> ParametricFit:
    """Fit a histogram's underlying samples (requires retained samples)."""
    if hist.samples is None:
        raise ValueError("fit_histogram requires a histogram with raw samples")
    return fit_samples(hist.samples, families=families)
