"""Probability distributions of communication times.

MPIBench's defining feature (Section 2 of the paper) is that it produces
*distributions* of individual operation times, "in the form of histograms",
rather than the single averages other benchmarks report.  This module
implements that representation:

* :class:`Histogram` -- fixed-bin counts over a [min, max] support, built
  from raw samples, with pdf/cdf/quantile queries, merging, and inverse-CDF
  sampling (what PEVPM draws from during its match phases);
* summary statistics (mean/std/min/max/quantiles) computed from the raw
  samples where available so they are exact, with the binned form used for
  persistence and sampling -- deliberately so, because the paper attributes
  PEVPM's residual prediction error to "the granularity (i.e. histogram
  bin size) of the benchmark results", an effect we reproduce and expose
  via the ``bins`` parameter.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["Histogram"]


class Histogram:
    """An empirical distribution with equal-width bins.

    Construct with :meth:`from_samples`; direct construction takes
    pre-computed ``edges`` (length ``nbins+1``) and ``counts`` (length
    ``nbins``).
    """

    __slots__ = ("edges", "counts", "n", "_mean", "_std", "_min", "_max", "_samples", "_sorted", "_cum", "_icdf")

    def __init__(
        self,
        edges: np.ndarray,
        counts: np.ndarray,
        *,
        mean: float | None = None,
        std: float | None = None,
        vmin: float | None = None,
        vmax: float | None = None,
        samples: np.ndarray | None = None,
    ):
        edges = np.asarray(edges, dtype=float)
        counts = np.asarray(counts, dtype=float)
        if edges.ndim != 1 or counts.ndim != 1 or len(edges) != len(counts) + 1:
            raise ValueError("edges must be 1-D with len(counts)+1 entries")
        if len(counts) == 0:
            raise ValueError("histogram needs at least one bin")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        total = float(counts.sum())
        if total <= 0:
            raise ValueError("histogram must contain at least one sample")
        if samples is not None and len(samples) == 0:
            # An empty retained-sample array (e.g. a document persisted
            # with "samples": []) carries no information; treat it as
            # absent so every quantile/sampling path uses the binned
            # form instead of indexing into an empty sorted array.
            samples = None
        self.edges = edges
        self.counts = counts
        self.n = int(round(total))
        self._samples = samples
        self._sorted = None  # lazily cached sorted samples (fast quantiles)
        self._icdf = None  # lazily compiled inverse-CDF table (see icdf())
        # Cumulative bin counts, precomputed at construction (and so on
        # DB load): every sampling/quantile path needs them, and PEVPM's
        # first draw from each histogram used to pay the cumsum.
        self._cum = np.cumsum(counts)
        # Exact moments when raw samples are retained; binned estimates
        # otherwise.
        if samples is not None and len(samples):
            self._mean = float(np.mean(samples))
            self._std = float(np.std(samples))
            self._min = float(np.min(samples))
            self._max = float(np.max(samples))
        else:
            centres = 0.5 * (edges[:-1] + edges[1:])
            w = counts / total
            self._mean = mean if mean is not None else float(np.dot(w, centres))
            if std is not None:
                self._std = std
            else:
                var = float(np.dot(w, (centres - self._mean) ** 2))
                self._std = math.sqrt(max(0.0, var))
            self._min = vmin if vmin is not None else float(edges[0])
            self._max = vmax if vmax is not None else float(edges[-1])

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Iterable[float],
        bins: int = 100,
        keep_samples: bool = True,
    ) -> "Histogram":
        """Bin raw timing samples into an equal-width histogram.

        *bins* is the paper's granularity knob: fewer bins -> coarser
        distribution -> larger PEVPM sampling error.  With
        ``keep_samples=True`` the raw data rides along, making summary
        statistics exact and allowing re-binning.
        """
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot build a histogram from zero samples")
        if np.any(~np.isfinite(arr)):
            raise ValueError("samples must be finite")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        lo, hi = float(arr.min()), float(arr.max())
        if lo == hi or not np.all(np.diff(np.linspace(lo, hi, bins + 1)) > 0):
            # Degenerate: all samples identical, or the span too narrow to
            # split into *bins* distinct edges; widen a hair so the single
            # bin has positive width.
            eps = max(abs(lo) * 1e-12, abs(hi) * 1e-12, 1e-15)
            edges = np.array([lo - eps, hi + eps])
            counts = np.array([float(arr.size)])
        else:
            counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
            counts = counts.astype(float)
        return cls(edges, counts, samples=arr if keep_samples else None)

    def rebinned(self, bins: int) -> "Histogram":
        """Re-bin (requires retained samples)."""
        if self._samples is None:
            raise ValueError("cannot re-bin a histogram without raw samples")
        return Histogram.from_samples(self._samples, bins=bins)

    # -- statistics ----------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        """**Population** standard deviation (ddof=0): the spread of the
        recorded sample set itself -- exact from raw samples when
        retained, the binned estimate otherwise.  For inference about
        the underlying distribution use :attr:`sample_std`; the two were
        previously conflated (``summary_stats`` and the parametric
        fitter both read this attribute, each assuming a different
        estimator), so both are now explicit."""
        return self._std

    @property
    def sample_std(self) -> float:
        """**Sample** standard deviation (ddof=1): the unbiased-variance
        estimator of the underlying spread, the form every CI and
        stopping rule is defined against.  Exact from raw samples when
        retained; otherwise the binned population estimate scaled by
        ``sqrt(n/(n-1))``.  0.0 when a single sample makes it
        inestimable."""
        if self.n <= 1:
            return 0.0
        if self._samples is not None and len(self._samples) > 1:
            return float(np.std(self._samples, ddof=1))
        return self._std * math.sqrt(self.n / (self.n - 1))

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    @property
    def samples(self) -> np.ndarray | None:
        """The raw samples, when retained."""
        return self._samples

    @property
    def nbins(self) -> int:
        return len(self.counts)

    @property
    def degenerate(self) -> bool:
        """True when the recorded support is a single point (every
        sample identical).  ``from_samples`` widens the lone bin's edges
        by an epsilon so it has positive width; queries must not leak
        that widening back out as jitter on the constant."""
        return self._min == self._max

    def _total(self) -> float:
        """Total mass, guarded: a histogram whose counts were zeroed
        after construction (in-place mutation, a hand-rolled
        ``__setstate__`` payload) used to surface as a cryptic
        divide-by-zero ``RuntimeWarning`` and NaN curves downstream;
        fail loudly at the query instead."""
        total = float(self._cum[-1]) if len(self._cum) else 0.0
        if total <= 0:
            raise ValueError(
                "histogram has zero total mass -- its counts were emptied "
                "after construction; pdf/cdf/ks_distance are undefined"
            )
        return total

    def pdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(bin centres, probability density) -- the curves of Figures 3-4.

        Raises :class:`ValueError` on a zero-mass histogram instead of
        dividing by zero.
        """
        total = self._total()
        widths = np.diff(self.edges)
        centres = 0.5 * (self.edges[:-1] + self.edges[1:])
        density = self.counts / (total * widths)
        return centres, density

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(edges[1:], cumulative probability).  Raises on zero mass."""
        return self.edges[1:], self._cum / self._total()

    def quantile(self, q: float) -> float:
        """Inverse CDF with linear interpolation inside bins (or, when raw
        samples are retained, over the sorted samples -- exact and fast via
        a cached sort)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.degenerate:
            return self._min
        if self._samples is not None:
            srt = self._sorted
            if srt is None:
                srt = self._sorted = np.sort(self._samples)
            pos = q * (len(srt) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(srt) - 1)
            frac = pos - lo
            return float(srt[lo] * (1.0 - frac) + srt[hi] * frac)
        cum = self._cum
        total = cum[-1]
        target = q * total
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, len(self.counts) - 1)
        prev = cum[idx - 1] if idx > 0 else 0.0
        inbin = self.counts[idx]
        frac = 0.0 if inbin == 0 else (target - prev) / inbin
        lo, hi = self.edges[idx], self.edges[idx + 1]
        return float(lo + frac * (hi - lo))

    def ks_distance(self, other: "Histogram") -> float:
        """Kolmogorov-Smirnov distance between two distributions: the
        largest CDF gap over the union of their supports.  Used by the
        campaign-comparison tooling to say not just how much slower a
        configuration is but how differently it *behaves*.  Raises on a
        zero-mass histogram (either side)."""
        self._total()
        other._total()
        lo = min(self.min, other.min)
        hi = max(self.max, other.max)
        if hi <= lo:
            return 0.0
        xs = np.linspace(lo, hi, 512)

        def cdf_at(hist, points):
            cum = hist._cum
            total = cum[-1]
            idx = np.searchsorted(hist.edges, points, side="right") - 1
            out = np.empty_like(points)
            below = idx < 0
            above = idx >= len(hist.counts)
            mid = ~(below | above)
            out[below] = 0.0
            out[above] = 1.0
            i = idx[mid]
            prev = np.where(i > 0, cum[np.maximum(i - 1, 0)], 0.0)
            width = hist.edges[i + 1] - hist.edges[i]
            frac = (points[mid] - hist.edges[i]) / width
            out[mid] = (prev + frac * hist.counts[i]) / total
            return out

        return float(np.max(np.abs(cdf_at(self, xs) - cdf_at(other, xs))))

    def quantiles(self, qs: np.ndarray) -> np.ndarray:
        """Vectorised inverse CDF (see :meth:`quantile`) for an array of
        probabilities -- the fast path for batched PEVPM sampling.
        Delegates to the compiled :meth:`icdf` table, so repeated calls
        pay one gather, not per-call table setup."""
        return self.icdf()(np.asarray(qs, dtype=float))

    def icdf(self):
        """The compiled inverse-CDF: a callable mapping an array of
        probabilities in ``[0, 1]`` to quantile values, bit-identical to
        :meth:`quantiles`.

        This is the lookup-table form PEVPM's sampling hot path uses
        (see ``DistributionDB.make_sampler``): every per-call constant --
        the sorted-sample table and its scale, or the cumulative-count
        table -- is bound once, so a draw is a single multiply +
        gather(+lerp) instead of a table rebuild.  Compiled lazily and
        cached; never pickled (workers recompile on first use).
        """
        f = self._icdf
        if f is not None:
            return f
        if self.degenerate:
            const = self._min

            def f(qs):
                return np.full(np.shape(qs), const)
        elif self._samples is not None:
            srt = self._sorted
            if srt is None:
                srt = self._sorted = np.sort(self._samples)
            scale = len(srt) - 1
            nmax = len(srt) - 1

            def f(qs):
                pos = qs * scale
                lo = pos.astype(int)
                hi = np.minimum(lo + 1, nmax)
                frac = pos - lo
                return srt[lo] * (1.0 - frac) + srt[hi] * frac
        else:
            cum = self._cum
            total = cum[-1]
            counts = self.counts
            edges_lo = self.edges[:-1]
            edges_hi = self.edges[1:]
            last = len(counts) - 1

            def f(qs):
                target = qs * total
                idx = np.minimum(
                    np.searchsorted(cum, target, side="left"), last
                )
                prev = np.where(idx > 0, cum[np.maximum(idx - 1, 0)], 0.0)
                inbin = counts[idx]
                frac = np.where(
                    inbin > 0,
                    (target - prev) / np.where(inbin > 0, inbin, 1.0),
                    0.0,
                )
                lo = edges_lo[idx]
                hi = edges_hi[idx]
                return lo + frac * (hi - lo)
        self._icdf = f
        return f

    # -- pickling ---------------------------------------------------------------
    # Histograms ride to pool workers inside pickled timing models; the
    # compiled inverse-CDF is a closure (unpicklable) and cheap to
    # rebuild, so it is dropped from the pickled state.
    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_icdf"
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._icdf = None

    def tail_mass(self, threshold: float) -> float:
        """Fraction of samples above *threshold* -- used to quantify the
        RTO outlier clusters of Figure 4."""
        if self._samples is not None:
            return float(np.mean(self._samples > threshold))
        idx = np.searchsorted(self.edges, threshold, side="left")
        if idx <= 0:
            return 1.0
        if idx > len(self.counts):
            return 0.0
        # Whole bins above, plus a partial bin containing the threshold.
        above = self.counts[idx:].sum()
        binlo, binhi = self.edges[idx - 1], self.edges[idx]
        frac = (binhi - threshold) / (binhi - binlo)
        above += self.counts[idx - 1] * np.clip(frac, 0.0, 1.0)
        return float(above / self.counts.sum())

    # -- sampling --------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw from the *binned* distribution (inverse CDF, uniform within
        the bin).

        This is intentionally the binned -- not the raw-sample -- form:
        PEVPM's inputs are histograms, and the binning granularity is part
        of the method's error budget (Section 6).
        """
        # One shared inverse-CDF implementation; the scalar form is the
        # n=1 vector draw (identical stream consumption: Generator.random()
        # and Generator.random(1) advance the bit stream the same way).
        n = 1 if size is None else size
        if self.degenerate:
            # Every recorded sample was the same value: return it
            # exactly instead of jitter inside the epsilon-widened bin.
            # Both uniform draws are still consumed so the caller's RNG
            # stream stays aligned with the non-degenerate path.
            rng.random(n)
            rng.random(n)
            const = self._min
            return const if size is None else np.full(n, const)
        u = rng.random(n) * self._cum[-1]
        idx = np.minimum(
            np.searchsorted(self._cum, u, side="right"), len(self.counts) - 1
        )
        lo = self.edges[idx]
        hi = self.edges[idx + 1]
        values = lo + rng.random(n) * (hi - lo)
        return float(values[0]) if size is None else values

    # -- combination -------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Pool two histograms (e.g. per-rank sample sets) into one.

        Requires retained samples on both (exact pooling); re-bins to the
        larger bin count of the two.
        """
        if self._samples is None or other._samples is None:
            raise ValueError("merge requires retained samples on both histograms")
        pooled = np.concatenate([self._samples, other._samples])
        return Histogram.from_samples(pooled, bins=max(self.nbins, other.nbins))

    # -- persistence --------------------------------------------------------------------
    def to_dict(self, include_samples: bool = False) -> dict:
        d = {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "mean": self._mean,
            "std": self._std,
            "min": self._min,
            "max": self._max,
        }
        if include_samples and self._samples is not None:
            d["samples"] = self._samples.tolist()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        samples = d.get("samples")
        return cls(
            np.asarray(d["edges"]),
            np.asarray(d["counts"]),
            mean=d.get("mean"),
            std=d.get("std"),
            vmin=d.get("min"),
            vmax=d.get("max"),
            samples=None if samples is None else np.asarray(samples, dtype=float),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram n={self.n} bins={self.nbins} "
            f"mean={self.mean:.3g} min={self.min:.3g} max={self.max:.3g}>"
        )
