"""Measurement kernels: the MPI programs MPIBench runs.

Each driver is a rank program (generator) that exercises one MPI operation
repeatedly and timestamps *individual* operations with the synchronised
global clock (:mod:`repro.mpibench.clocksync`).  The one-way time of a
message is computed at the **receiver**: the sender embeds its corrected
send timestamp in the payload, and the receiver subtracts it from its own
corrected receive-completion timestamp.  This is exactly what a ping-pong
average cannot give you, and is the paper's core instrument.

Point-to-point pairing follows MPIBench: with P processes, rank i pairs
with rank ``i + P/2``.  Under the runtime's block placement this makes all
pairs inter-node, and for larger P the flows span switch boundaries --
which is how the paper drives its backplane into saturation (Figure 4).
Each repetition runs the exchange in *both* directions concurrently, so
every NIC carries simultaneous send and receive traffic, as on the real
benchmark.
"""

from __future__ import annotations

from .clocksync import ClockCorrection, sync_clocks

__all__ = [
    "P2P_TAG",
    "pairwise_partner",
    "isend_driver",
    "ring_isend_driver",
    "pingpong_driver",
    "bcast_driver",
    "barrier_driver",
]

P2P_TAG = 37


def pairwise_partner(rank: int, nprocs: int) -> int:
    """MPIBench pairing: rank i exchanges with rank i + P/2 (mod P)."""
    if nprocs % 2:
        raise ValueError("point-to-point benchmark needs an even process count")
    half = nprocs // 2
    return rank + half if rank < half else rank - half


def isend_driver(
    comm,
    sizes: list[int],
    reps: int,
    warmup: int = 10,
    sync_rounds: int = 8,
    drift_gap: float = 0.25,
):
    """Benchmark ``MPI_Isend`` (and the matching receive).

    Every rank exchanges messages with its partner; each repetition is one
    individually-timed bidirectional exchange.  Two quantities are
    measured per message:

    * ``"isend"`` -- one-way time: sender's pre-send global timestamp
      (carried in the payload) to receive completion at the other end;
      needs the synchronised clock;
    * ``"isend_local"`` -- how long the *sender* was occupied by
      isend+wait (a purely local duration; this is what a performance
      model must charge the sending process).

    Returns ``{"isend": {size: [...]}, "isend_local": {size: [...]}}``.
    """
    if reps < 1 or warmup < 0:
        raise ValueError("need reps >= 1 and warmup >= 0")
    corr: ClockCorrection = yield from sync_clocks(
        comm, rounds=sync_rounds, drift_gap=drift_gap
    )
    partner = pairwise_partner(comm.rank, comm.size)
    oneway: dict[int, list[float]] = {size: [] for size in sizes}
    local: dict[int, list[float]] = {size: [] for size in sizes}

    for size in sizes:
        yield from comm.barrier()
        for rep in range(warmup + reps):
            rreq = yield from comm.irecv(source=partner, tag=P2P_TAG)
            t0_local = comm.clock()
            t_send = corr.to_global(t0_local)
            sreq = yield from comm.isend(size, dest=partner, tag=P2P_TAG, payload=t_send)
            yield from comm.wait(sreq)
            t1_local = comm.clock()
            peer_send_time, _st = yield from comm.wait(rreq)
            t_recv = corr.to_global(comm.clock())
            if rep >= warmup:
                oneway[size].append(t_recv - peer_send_time)
                local[size].append(t1_local - t0_local)
    return {"isend": oneway, "isend_local": local}


def ring_isend_driver(
    comm,
    sizes: list[int],
    reps: int,
    warmup: int = 10,
    sync_rounds: int = 8,
    drift_gap: float = 0.25,
):
    """Benchmark ``MPI_Isend`` under a *neighbour* (ring) traffic pattern.

    The default :func:`isend_driver` pairs rank i with rank i + P/2 --
    sustained cross-cluster flows, the worst case for the switch stack.
    Many applications (stencils, ring pipelines) instead exchange with
    nearest neighbours, whose messages rarely cross switches.  Because
    PEVPM samples are only as representative as the benchmark pattern
    behind them, MPIBench offers this second pattern: each repetition,
    every rank exchanges one message with *both* ring neighbours
    concurrently (the Jacobi communication phase, exactly).

    Returns ``{"isend:ring": {...}, "isend_local:ring": {...}}``.
    """
    if reps < 1 or warmup < 0:
        raise ValueError("need reps >= 1 and warmup >= 0")
    if comm.size < 3:
        raise ValueError("ring pattern needs at least 3 ranks")
    corr: ClockCorrection = yield from sync_clocks(
        comm, rounds=sync_rounds, drift_gap=drift_gap
    )
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    oneway: dict[int, list[float]] = {size: [] for size in sizes}
    local: dict[int, list[float]] = {size: [] for size in sizes}

    for size in sizes:
        yield from comm.barrier()
        for rep in range(warmup + reps):
            rl = yield from comm.irecv(source=left, tag=P2P_TAG)
            rr = yield from comm.irecv(source=right, tag=P2P_TAG)
            t0_local = comm.clock()
            t_send = corr.to_global(t0_local)
            sl = yield from comm.isend(size, dest=left, tag=P2P_TAG, payload=t_send)
            sr = yield from comm.isend(size, dest=right, tag=P2P_TAG, payload=t_send)
            yield from comm.wait(sl)
            yield from comm.wait(sr)
            t1_local = comm.clock()
            for req in (rl, rr):
                peer_send_time, _st = yield from comm.wait(req)
                t_recv = corr.to_global(comm.clock())
                if rep >= warmup:
                    oneway[size].append(t_recv - peer_send_time)
            if rep >= warmup:
                # Two sends shared the call window; charge half each.
                local[size].append((t1_local - t0_local) / 2.0)
                local[size].append((t1_local - t0_local) / 2.0)
    return {"isend:ring": oneway, "isend_local:ring": local}


def pingpong_driver(
    comm,
    sizes: list[int],
    reps: int,
    warmup: int = 10,
):
    """The conventional benchmark the paper criticises: round-trip / 2.

    Each pair runs a classic ping-pong; the *lower* rank of each pair
    times the round trip on its local clock (no synchronisation needed --
    which is exactly why every other benchmark works this way) and halves
    it.  Returns ``{"pingpong_half": {size: [rtt/2 samples]}}``.

    Comparing these against the ``isend`` one-way distributions shows what
    RTT/2 hides: under asymmetric load the two directions differ, and the
    average conceals the distribution entirely.
    """
    if reps < 1 or warmup < 0:
        raise ValueError("need reps >= 1 and warmup >= 0")
    partner = pairwise_partner(comm.rank, comm.size)
    initiator = comm.rank < partner
    samples: dict[int, list[float]] = {size: [] for size in sizes}
    for size in sizes:
        yield from comm.barrier()
        for rep in range(warmup + reps):
            if initiator:
                t0 = comm.clock()
                yield from comm.send(size, dest=partner, tag=P2P_TAG)
                yield from comm.recv(source=partner, tag=P2P_TAG)
                t1 = comm.clock()
                if rep >= warmup:
                    samples[size].append((t1 - t0) / 2.0)
            else:
                yield from comm.recv(source=partner, tag=P2P_TAG)
                yield from comm.send(size, dest=partner, tag=P2P_TAG)
    return {"pingpong_half": samples}


def bcast_driver(
    comm,
    sizes: list[int],
    reps: int,
    root: int = 0,
    warmup: int = 5,
    sync_rounds: int = 8,
    drift_gap: float = 0.25,
):
    """Benchmark ``MPI_Bcast`` completion at *every* process.

    The root embeds its corrected start timestamp in the broadcast payload;
    each rank's sample is its own completion time minus that start.  This
    is the "measure all processes, not just one" capability the paper
    contrasts with other benchmarks.  Returns ``{"bcast": {size: [times]}}``.
    """
    if reps < 1 or warmup < 0:
        raise ValueError("need reps >= 1 and warmup >= 0")
    corr: ClockCorrection = yield from sync_clocks(
        comm, rounds=sync_rounds, drift_gap=drift_gap
    )
    samples: dict[int, list[float]] = {size: [] for size in sizes}
    for size in sizes:
        for rep in range(warmup + reps):
            yield from comm.barrier()
            t0 = corr.to_global(comm.clock()) if comm.rank == root else None
            t0 = yield from comm.bcast(size, root=root, payload=t0)
            t_done = corr.to_global(comm.clock())
            if rep >= warmup:
                samples[size].append(t_done - t0)
    return {"bcast": samples}


def barrier_driver(
    comm,
    reps: int,
    warmup: int = 5,
    sync_rounds: int = 8,
    drift_gap: float = 0.25,
):
    """Benchmark ``MPI_Barrier``: per-rank time from the *last* entry to
    this rank's exit, using the global clock to find the last entry.

    Returns ``{"barrier": {0: [times]}}`` (keyed by size 0 for
    uniformity with the other drivers).
    """
    if reps < 1 or warmup < 0:
        raise ValueError("need reps >= 1 and warmup >= 0")
    corr: ClockCorrection = yield from sync_clocks(
        comm, rounds=sync_rounds, drift_gap=drift_gap
    )
    samples: list[float] = []
    for rep in range(warmup + reps):
        # Align, then measure a barrier proper.
        yield from comm.barrier()
        t_enter = corr.to_global(comm.clock())
        # Everyone learns the latest entry time via an allreduce(max) of
        # entry stamps piggybacked on 8-byte messages.
        latest = yield from comm.allreduce(8, payload=t_enter, op=max)
        yield from comm.barrier()
        t_exit = corr.to_global(comm.clock())
        if rep >= warmup:
            samples.append(t_exit - latest)
    return {"barrier": {0: samples}}
