"""Global clock synchronisation for one-way message timing.

MPIBench's headline capability -- timing *individual* one-way operations
across processes -- requires comparing a send timestamp taken on one node
with a receive timestamp taken on another.  Raw node clocks disagree by
milliseconds (offset) and drift apart by tens of microseconds per second,
so MPIBench first builds a *globally synchronised clock*.

The algorithm reproduced here is the classic ping-pong offset estimator
(as used by MPIBench and by NTP's symmetric mode):

1. rank 0 is the time reference;
2. for every other rank r, rank 0 runs K ping-pong exchanges.  In each,
   rank 0 records local send time ``t0`` and local reply-receipt time
   ``t2``; rank r timestamps its local receive time ``t1``.  Assuming the
   two directions are symmetric, ``offset_r = t1 - (t0 + t2)/2``;
   the exchange with the *smallest round-trip time* is kept, since queueing
   inflates RTT and breaks the symmetry assumption;
3. the whole procedure runs twice with a gap in between; the two offset
   estimates give a per-rank *drift* rate, so the correction stays valid
   over a long benchmark run.

The result is a :class:`ClockCorrection` per rank mapping local clock
readings onto rank 0's timebase.  Tests validate it against the
simulator's ground-truth clock, which a real cluster does not have.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smpi.comm import Comm

__all__ = ["ClockCorrection", "sync_clocks", "SYNC_TAG"]

SYNC_TAG = 911  #: user-space tag reserved by the benchmark harness


@dataclass
class ClockCorrection:
    """Affine correction from one rank's local clock to global time.

    ``global = (local - offset) / (1 + drift)`` where *offset* is the local
    clock's lead over rank 0 at local time ``ref_local`` and *drift* the
    relative frequency error.  For rank 0 both are zero by construction.
    """

    offset: float = 0.0
    drift: float = 0.0
    ref_local: float = 0.0

    def to_global(self, local: float) -> float:
        """Map a local clock reading to the synchronised timebase."""
        return (local - self.offset - self.drift * (local - self.ref_local))

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ValueError("drift must exceed -1")


def _measure_offset(comm: Comm, rounds: int):
    """One offset-measurement pass.  Returns this rank's best offset
    estimate relative to rank 0 (0.0 at rank 0)."""
    if comm.rank == 0:
        offsets = {0: 0.0}
        for peer in range(1, comm.size):
            best_rtt = float("inf")
            best_offset = 0.0
            for _ in range(rounds):
                t0 = comm.clock()
                yield from comm.send(8, dest=peer, tag=SYNC_TAG, payload=t0)
                (t1, _echo), _st = yield from comm.recv(source=peer, tag=SYNC_TAG)
                t2 = comm.clock()
                rtt = t2 - t0
                if rtt < best_rtt:
                    best_rtt = rtt
                    best_offset = t1 - 0.5 * (t0 + t2)
            offsets[peer] = best_offset
        # Tell each rank its own offset.
        for peer in range(1, comm.size):
            yield from comm.send(8, dest=peer, tag=SYNC_TAG, payload=offsets[peer])
        return 0.0
    else:
        for _ in range(rounds):
            (t0), _st = yield from comm.recv(source=0, tag=SYNC_TAG)
            t1 = comm.clock()
            yield from comm.send(8, dest=0, tag=SYNC_TAG, payload=(t1, t0))
        my_offset, _st = yield from comm.recv(source=0, tag=SYNC_TAG)
        return my_offset


def sync_clocks(comm: Comm, rounds: int = 8, drift_gap: float = 0.5):
    """Generator (``yield from``): run the full two-pass synchronisation.

    Returns this rank's :class:`ClockCorrection`.  *rounds* ping-pongs per
    rank per pass; *drift_gap* seconds of idle time between the passes
    (longer gap -> better drift resolution).
    """
    if comm.size == 1:
        return ClockCorrection()
        yield  # pragma: no cover
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    off_a = yield from _measure_offset(comm, rounds)
    local_a = comm.clock()
    if drift_gap > 0:
        yield from comm.compute(drift_gap)
    yield from comm.barrier()
    off_b = yield from _measure_offset(comm, rounds)
    local_b = comm.clock()
    if comm.rank == 0 or local_b == local_a:
        return ClockCorrection()
    drift = (off_b - off_a) / (local_b - local_a)
    return ClockCorrection(offset=off_b, drift=drift, ref_local=local_b)
