"""Amdahl's law and related simple speedup bounds.

Section 4 groups Amdahl's law with the "simple abstract models" that
"allow the performance of parallel programs under different conditions to
be quickly and easily estimated" but "are too simplistic to provide much
useful information for most real parallel applications".  We implement it
as the baseline that the Figure 6 comparison implicitly sits on top of:
the speedup ceiling any communication-blind model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["amdahl_speedup", "amdahl_limit", "serial_fraction_from_speedup", "GustafsonModel"]


def amdahl_speedup(serial_fraction: float, nprocs: int) -> float:
    """Amdahl's law: ``S(P) = 1 / (f + (1 - f)/P)``.

    *serial_fraction* f is the non-parallelisable share of the work.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / nprocs)


def amdahl_limit(serial_fraction: float) -> float:
    """The asymptotic speedup ceiling ``1 / f`` (infinite for f = 0)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    return float("inf") if serial_fraction == 0.0 else 1.0 / serial_fraction


def serial_fraction_from_speedup(speedup: float, nprocs: int) -> float:
    """Invert Amdahl's law: the serial fraction implied by an observed
    speedup at *nprocs* processors (the Karp-Flatt metric)."""
    if nprocs < 2:
        raise ValueError("nprocs must be >= 2 to infer a serial fraction")
    if not 0.0 < speedup <= nprocs:
        raise ValueError(f"speedup must be in (0, {nprocs}]")
    return (1.0 / speedup - 1.0 / nprocs) / (1.0 - 1.0 / nprocs)


@dataclass(frozen=True)
class GustafsonModel:
    """Gustafson's scaled-speedup law, the usual companion baseline:
    ``S(P) = P - f * (P - 1)`` for a workload grown with P."""

    serial_fraction: float

    def __post_init__(self):
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")

    def speedup(self, nprocs: int) -> float:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        return nprocs - self.serial_fraction * (nprocs - 1)
