"""Isoefficiency analysis (Grama, Gupta & Kumar).

The third of Section 4's "simple abstract models": the isoefficiency
function asks how fast the problem size must grow with the machine size to
hold parallel efficiency constant.  We provide the generic machinery --
efficiency curves from measured/predicted run times, and an empirical
isoefficiency estimate from a grid of (problem size, nprocs, time)
observations -- so the example applications can be analysed the classic
way alongside PEVPM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["efficiency", "efficiency_curve", "EmpiricalIsoefficiency"]


def efficiency(serial_time: float, parallel_time: float, nprocs: int) -> float:
    """Parallel efficiency ``E = T1 / (P * TP)``."""
    if serial_time <= 0 or parallel_time <= 0:
        raise ValueError("times must be positive")
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    return serial_time / (nprocs * parallel_time)


def efficiency_curve(
    serial_time: float, parallel_times: dict[int, float]
) -> dict[int, float]:
    """Efficiency at each machine size from a {nprocs: time} map."""
    return {
        p: efficiency(serial_time, t, p) for p, t in sorted(parallel_times.items())
    }


@dataclass
class EmpiricalIsoefficiency:
    """Estimate the isoefficiency function from observations.

    Feed it (work, nprocs, time) points -- *work* in whatever natural unit
    the application has (grid points, tasks) with ``serial_time(work)``
    giving the one-processor time -- then ask for the work needed to hold a
    target efficiency at each machine size.  The answer is found by
    log-space interpolation of the measured efficiency-vs-work curve at
    each nprocs.
    """

    observations: list[tuple[float, int, float]]  #: (work, nprocs, time)
    serial_times: dict[float, float]  #: work -> one-processor time

    def _eff(self, work: float, nprocs: int, time: float) -> float:
        try:
            t1 = self.serial_times[work]
        except KeyError:
            raise KeyError(f"no serial time recorded for work={work}") from None
        return efficiency(t1, time, nprocs)

    def efficiency_table(self) -> dict[int, list[tuple[float, float]]]:
        """{nprocs: [(work, efficiency)]}, work ascending."""
        table: dict[int, list[tuple[float, float]]] = {}
        for work, nprocs, time in self.observations:
            table.setdefault(nprocs, []).append(
                (work, self._eff(work, nprocs, time))
            )
        for rows in table.values():
            rows.sort()
        return table

    def work_for_efficiency(self, nprocs: int, target: float) -> float | None:
        """Smallest work achieving *target* efficiency at *nprocs*.

        Interpolates between observed work levels (efficiency is assumed
        monotone in work, as it is for the regular codes studied here);
        ``None`` if the target is unreachable within the observed range.
        """
        if not 0.0 < target <= 1.0:
            raise ValueError("target efficiency must be in (0, 1]")
        rows = self.efficiency_table().get(nprocs)
        if not rows:
            raise KeyError(f"no observations at nprocs={nprocs}")
        works = np.array([w for w, _e in rows])
        effs = np.array([e for _w, e in rows])
        if effs.max() < target:
            return None
        if effs[0] >= target:
            return float(works[0])
        # Find the first crossing and interpolate in log-work space.
        idx = int(np.argmax(effs >= target))
        w0, w1 = works[idx - 1], works[idx]
        e0, e1 = effs[idx - 1], effs[idx]
        if e1 == e0:
            return float(w1)
        frac = (target - e0) / (e1 - e0)
        return float(np.exp(np.log(w0) + frac * (np.log(w1) - np.log(w0))))

    def isoefficiency_curve(self, target: float) -> dict[int, float | None]:
        """Work required at each observed machine size for the target
        efficiency -- the empirical isoefficiency function."""
        return {
            p: self.work_for_efficiency(p, target)
            for p in sorted({n for _w, n, _t in self.observations})
        }
