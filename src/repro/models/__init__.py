"""Baseline performance models from the paper's Section 4.

The "simple abstract models" PEVPM is contrasted against: Hockney's
``T = l + b/W`` point-to-point model, Amdahl's law, and the isoefficiency
function.  Each is implemented far enough to be *used* in the benchmark
comparisons, not merely name-checked.
"""

from .amdahl import (
    GustafsonModel,
    amdahl_limit,
    amdahl_speedup,
    serial_fraction_from_speedup,
)
from .hockney import HockneyFit, fit_hockney, fit_hockney_curve
from .isoefficiency import EmpiricalIsoefficiency, efficiency, efficiency_curve

__all__ = [
    "EmpiricalIsoefficiency",
    "GustafsonModel",
    "HockneyFit",
    "amdahl_limit",
    "amdahl_speedup",
    "efficiency",
    "efficiency_curve",
    "fit_hockney",
    "fit_hockney_curve",
    "serial_fraction_from_speedup",
]
