"""Hockney's point-to-point communication model: ``T(b) = l + b / W``.

Section 3 of the paper: "message-passing time T can indeed be closely
modelled by the common approximation T = l + b/W where l is the link
latency in seconds, b is the size of the message in bytes and W is the
effective bandwidth" -- *in the absence of contention*.  This module fits
that model to MPIBench data (by least squares on the minimum-time curve),
exposes Hockney's classic ``r_inf`` / ``n_half`` parameters, and reports
the fit residuals -- which blow up exactly where the paper says the model
breaks (the 16 KB protocol knee, and any contended configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpibench.results import BenchmarkResult

__all__ = ["HockneyFit", "fit_hockney", "fit_hockney_curve"]


@dataclass(frozen=True)
class HockneyFit:
    """A fitted latency/bandwidth model."""

    latency: float  #: l, seconds
    bandwidth: float  #: W, bytes/second
    rms_residual: float  #: RMS of (model - data) over the fitted points (s)
    max_residual: float  #: worst absolute residual (s)
    n_points: int

    def time(self, nbytes: int) -> float:
        """Predicted transfer time for *nbytes*."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth

    @property
    def r_inf(self) -> float:
        """Hockney's asymptotic bandwidth (bytes/s)."""
        return self.bandwidth

    @property
    def n_half(self) -> float:
        """Hockney's half-performance message size: the size achieving half
        the asymptotic bandwidth (= l * W)."""
        return self.latency * self.bandwidth

    def relative_error(self, nbytes: int, observed: float) -> float:
        """(model - observed) / observed for one data point."""
        if observed <= 0:
            raise ValueError("observed time must be positive")
        return (self.time(nbytes) - observed) / observed


def fit_hockney_curve(sizes: list[int], times: list[float]) -> HockneyFit:
    """Least-squares fit of ``l + b/W`` to a (size, time) curve."""
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two (size, time) points")
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if np.any(y <= 0):
        raise ValueError("times must be positive")
    # y = l + x * invW  -- linear in (l, invW).
    A = np.vstack([np.ones_like(x), x]).T
    (l, inv_w), *_ = np.linalg.lstsq(A, y, rcond=None)
    if inv_w <= 0:
        # Degenerate (flat or decreasing) curve: treat as latency-only.
        inv_w = 1e-18
    resid = A @ np.array([l, inv_w]) - y
    return HockneyFit(
        latency=float(max(0.0, l)),
        bandwidth=float(1.0 / inv_w),
        rms_residual=float(np.sqrt(np.mean(resid**2))),
        max_residual=float(np.max(np.abs(resid))),
        n_points=len(sizes),
    )


def fit_hockney(
    result: BenchmarkResult,
    use: str = "min",
    max_size: int | None = None,
) -> HockneyFit:
    """Fit the model to a benchmark result's min (default) or mean curve.

    *max_size* restricts the fit to sizes at or below it -- fitting only
    the eager regime (below the 16 KB knee) is the honest use of the
    model, as the paper's discussion of Figure 2 implies.
    """
    if use not in ("min", "mean"):
        raise ValueError("use must be 'min' or 'mean'")
    curve = result.min_curve() if use == "min" else result.mean_curve()
    if max_size is not None:
        curve = [(s, t) for s, t in curve if s <= max_size]
    sizes = [s for s, _t in curve]
    times = [t for _s, t in curve]
    return fit_hockney_curve(sizes, times)
